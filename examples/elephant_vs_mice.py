#!/usr/bin/env python
"""Elephants vs. mice: how flow mix changes what steering buys you.

The paper's motivation says an elephant flow "is just equivalent to a
bunch of mice flows" once split.  This example makes that concrete by
comparing three workloads on the same 10-kernel-core receiver:

* one elephant (a single 64 KB-message TCP flow),
* ten mice (ten concurrent flows sharing the cores),
* a mixed population (one elephant + nine mice under RSS hashing),

under vanilla/RSS placement, FALCON, and MFLOW.

Run:  python examples/elephant_vs_mice.py
"""

from repro.workloads.multiflow import MULTIFLOW_SYSTEMS, build_multiflow_scenario
from repro.workloads.scenario import make_flow


def run_mix(system: str, n_elephants: int, n_mice: int) -> tuple:
    """Aggregate Gbps and per-class rates for a flow mix."""
    n_flows = n_elephants + n_mice
    sc = build_multiflow_scenario(system, max(n_flows, 1), 64 * 1024)
    # rebuild the sender population: elephants at 64 KB, mice at 4 KB
    sc._senders.clear()
    sc._client_count = 0
    for i in range(n_elephants):
        sc.add_tcp_sender(64 * 1024, flow=make_flow("tcp", i))
    for i in range(n_mice):
        sc.add_tcp_sender(4 * 1024, flow=make_flow("tcp", 100 + i))
    res = sc.run()
    return res.throughput_gbps


def main() -> None:
    print("flow-mix comparison on 10 kernel cores (aggregate Gbps)\n")
    mixes = [
        ("1 elephant", 1, 0),
        ("10 mice", 0, 10),
        ("1 elephant + 9 mice", 1, 9),
    ]
    print(f"{'workload':>22} " + "".join(f"{s:>10}" for s in MULTIFLOW_SYSTEMS))
    for label, ne, nm in mixes:
        row = [run_mix(s, ne, nm) for s in MULTIFLOW_SYSTEMS]
        print(f"{label:>22} " + "".join(f"{v:10.1f}" for v in row))
    print()
    print("reading: only MFLOW accelerates the lone elephant (packet-level")
    print("parallelism); with many mice, inter-flow parallelism suffices and")
    print("the schemes converge — the paper's Fig. 10 trend.")


if __name__ == "__main__":
    main()
