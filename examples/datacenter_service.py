#!/usr/bin/env python
"""A containerized key-value service under increasing client pressure.

Models the paper's data-caching scenario end to end: a Memcached
container behind a Docker VxLAN overlay serving closed-loop clients,
comparing vanilla overlay, FALCON and MFLOW as client machines scale
from 1 to 10.  Shows the paper's qualitative result: the more the
kernel path is stressed, the more MFLOW's packet-level parallelism
pays, especially at the tail.

Run:  python examples/datacenter_service.py
"""

from repro.workloads.memcached import SYSTEMS, run_memcached


def main() -> None:
    print("memcached behind a VxLAN overlay: request latency vs client pressure\n")
    header = f"{'clients':>7}  {'system':>8}  {'krps':>7}  {'avg us':>7}  {'p99 us':>7}"
    print(header)
    print("-" * len(header))
    for n_clients in (1, 4, 10):
        baseline = None
        for system in SYSTEMS:
            res = run_memcached(system, n_clients)
            if system == "vanilla":
                baseline = res
            tag = ""
            if baseline is not None and system != "vanilla":
                delta = (1 - res.latency.p99_us / baseline.latency.p99_us) * 100
                tag = f"  (p99 {delta:.0f}% lower than vanilla)"
            print(
                f"{n_clients:>7}  {system:>8}  {res.requests_per_sec / 1e3:7.1f}  "
                f"{res.latency.mean_us:7.1f}  {res.latency.p99_us:7.1f}{tag}"
            )
        print()
    print("paper Fig. 13: MFLOW's benefit grows with client count; at ten clients")
    print("it halves both average and tail latency relative to the vanilla overlay.")


if __name__ == "__main__":
    main()
