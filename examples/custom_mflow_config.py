#!/usr/bin/env python
"""Design-space exploration: where to split, where to merge, how many cores.

MFLOW's central knobs are the split point (IRQ splitting before skb
allocation vs flow splitting before the heavyweight VxLAN device), the
merge point (early, right after the heavy device, vs late, just before
the stateful layer), the micro-flow batch size, and the number of
splitting cores.  This example sweeps those choices on a single UDP
elephant flow and prints the resulting goodput — reproducing the
paper's §III discussion of why it defaults to batch 256, two splitting
cores and late merging.

Run:  python examples/custom_mflow_config.py
"""

from repro.core.config import MflowConfig
from repro.core.mflow import MflowPolicy
from repro.overlay.topology import DatapathKind
from repro.workloads.scenario import Scenario


def run_config(label: str, config: MflowConfig, n_cores: int = 10) -> None:
    sc = Scenario(
        DatapathKind.OVERLAY,
        "udp",
        lambda cpus: MflowPolicy(cpus, config, app_core=0),
        n_receiver_cores=n_cores,
    )
    for _ in range(3):  # three sockperf clients, as in the paper
        sc.add_udp_sender(64 * 1024)
    res = sc.run()
    print(
        f"{label:>42}: {res.throughput_gbps:6.2f} Gbps  "
        f"(reorder events: {res.counters.get('mflow_ooo_microflows', 0)})"
    )


def main() -> None:
    print("UDP elephant flow (3 clients), VxLAN overlay — MFLOW design sweep\n")

    print("-- split point (2 splitting cores, batch 256, merge before copy) --")
    run_config(
        "flow splitting before VxLAN (paper UDP)",
        MflowConfig.device_scaling(split_cores=[2, 3]),
    )
    run_config(
        "IRQ splitting before skb_alloc",
        MflowConfig(
            split_before="skb_alloc",
            merge_before="udp_deliver",
            branches=MflowConfig.device_scaling(split_cores=[2, 3]).branches,
        ),
    )

    print("\n-- number of splitting cores (diminishing returns, paper end of III-A) --")
    for n in (1, 2, 3, 4):
        run_config(
            f"{n} splitting core(s)",
            MflowConfig.device_scaling(split_cores=list(range(2, 2 + n))),
        )

    print("\n-- merge point (early after VxLAN vs late before copy, paper III-B) --")
    run_config(
        "late merge in udp_recvmsg (paper default)",
        MflowConfig.device_scaling(split_cores=[2, 3], merge_before="udp_deliver"),
    )
    run_config(
        "early merge right after VxLAN",
        MflowConfig.device_scaling(split_cores=[2, 3], merge_before="bridge"),
    )

    print("\n-- micro-flow batch size --")
    for batch in (16, 64, 256, 1024):
        run_config(
            f"batch {batch}",
            MflowConfig.device_scaling(split_cores=[2, 3], batch_size=batch),
        )


if __name__ == "__main__":
    main()
