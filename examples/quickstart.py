#!/usr/bin/env python
"""Quickstart: measure one elephant TCP flow under every steering scheme.

Builds the paper's testbed — a receiver host behind a 100 GbE link,
running a Docker-style VxLAN overlay — and pushes a single 64 KB-message
TCP flow through it under each packet-steering policy, printing the
Fig. 8a-style comparison.

Run:  python examples/quickstart.py
"""

from repro.workloads.sockperf import SYSTEMS, run_single_flow


def main() -> None:
    print("single elephant TCP flow, 64 KB messages, VxLAN overlay receive path")
    print(f"{'system':>10}  {'Gbps':>7}  {'p50 us':>8}  {'p99 us':>8}  bottleneck core")
    for system in SYSTEMS:
        res = run_single_flow(system, "tcp", 64 * 1024)
        hottest = max(range(len(res.cpu_utilization)), key=res.cpu_utilization.__getitem__)
        print(
            f"{system:>10}  {res.throughput_gbps:7.2f}  "
            f"{res.latency.p50_us:8.1f}  {res.latency.p99_us:8.1f}  "
            f"core {hottest} at {res.cpu_utilization[hottest] * 100:.0f}%"
        )
    print()
    print("expected shape (paper Fig. 8a): native >> vanilla; RPS a small gain;")
    print("FALCON a large gain; MFLOW above everything including native.")


if __name__ == "__main__":
    main()
