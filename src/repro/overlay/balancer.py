"""Consistent-hash load balancing at the host's overlay ingress.

Container overlays front their service replicas with an L3/L4 balancer
that must keep per-flow affinity while backends come and go — the
P4ContainerFlow recipe: a hash ring with virtual nodes, per-flow sticky
routing, and deterministic ring updates so a cutover re-points exactly
the flows whose backend moved and nothing else.

:class:`ConsistentHashBalancerStage` sits between the outer UDP demux
and VxLAN decapsulation (packets are still encapsulated — the balancer
is host-side ingress, ahead of any container processing).  In steady
state it is a cheap hash + forward.  During a migration it becomes the
blackout absorber: packets whose backend is draining or frozen are held
in a bounded FIFO buffer (or dropped once the buffer fills) and replayed
after the restore, preserving arrival order so TCP sees no artificial
reordering across the cutover.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, Dict, List, Set, Tuple

from repro.netstack.costs import CostModel
from repro.netstack.packet import FlowKey, Skb
from repro.netstack.stages import Stage, StageContext
from repro.steering.base import stable_flow_hash


def _fnv1a(data: bytes) -> int:
    """Process-stable 64-bit FNV-1a (Python's ``hash`` is salted)."""
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class HashRing:
    """A consistent-hash ring with virtual nodes and deterministic updates.

    Every backend contributes ``vnodes`` points placed by a stable hash
    of ``"<backend>#<replica>"``; lookups walk clockwise to the next
    point.  Adding or removing a backend rebuilds the ring from the
    sorted backend set, so the ring's state is a pure function of its
    membership — two simulations that perform the same membership
    changes agree on every subsequent lookup.
    """

    def __init__(self, vnodes: int = 32):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._backends: Set[str] = set()
        self._points: List[int] = []
        self._owners: List[str] = []

    def _rebuild(self) -> None:
        ring: List[Tuple[int, str]] = []
        for backend in sorted(self._backends):
            for replica in range(self.vnodes):
                ring.append((_fnv1a(f"{backend}#{replica}".encode()), backend))
        ring.sort()
        self._points = [p for p, _ in ring]
        self._owners = [b for _, b in ring]

    def add(self, backend: str) -> None:
        if backend in self._backends:
            raise ValueError(f"backend {backend!r} already on the ring")
        self._backends.add(backend)
        self._rebuild()

    def remove(self, backend: str) -> None:
        if backend not in self._backends:
            raise KeyError(f"backend {backend!r} not on the ring")
        self._backends.remove(backend)
        self._rebuild()

    def backends(self) -> List[str]:
        return sorted(self._backends)

    def node_for(self, key: int) -> str:
        """The backend owning ``key`` (clockwise successor on the ring)."""
        if not self._points:
            raise KeyError("hash ring is empty")
        idx = bisect.bisect_right(self._points, key & 0xFFFFFFFFFFFFFFFF)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def __len__(self) -> int:
        return len(self._backends)


class ConsistentHashBalancerStage(Stage):
    """Sticky per-flow balancing + blackout buffering at overlay ingress."""

    name = "lb"
    droppable = True

    def __init__(self, ring: HashRing, buffer_packets: int = 4096):
        self.ring = ring
        self.buffer_packets = buffer_packets
        #: per-flow sticky routing: once a flow is pinned to a backend it
        #: stays there until a ring update explicitly re-points it
        self._sticky: Dict[FlowKey, str] = {}
        #: backends currently draining or frozen (buffer instead of forward)
        self._draining: Set[str] = set()
        #: blackout buffers, FIFO per draining backend
        self._buffers: Dict[str, Deque[Skb]] = {}
        self.packets_forwarded = 0
        self.packets_buffered = 0
        self.packets_dropped = 0
        self.flows_rerouted = 0
        #: per-flow forwards since the last ``mark_restore()`` — the
        #: controller's liveness signal for post-cutover traffic
        self.post_restore_forwarded: Dict[FlowKey, int] = {}
        self._count_post_restore = False

    # ------------------------------------------------------------- stage API
    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.lb_hash_ns

    def backend_for(self, flow: FlowKey) -> str:
        backend = self._sticky.get(flow)
        if backend is None:
            backend = self.ring.node_for(stable_flow_hash(flow))
            self._sticky[flow] = backend
        return backend

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        backend = self.backend_for(skb.flow)
        if backend in self._draining:
            buf = self._buffers.setdefault(backend, deque())
            if self.buffer_packets <= 0 or len(buf) >= self.buffer_packets:
                self.packets_dropped += 1
                ctx.telemetry.count("lb_blackout_dropped", skb.segs)
                ctx.pipeline.recycle_skb(skb)
                return []
            buf.append(skb)
            self.packets_buffered += 1
            ctx.telemetry.count("lb_blackout_buffered", skb.segs)
            return []
        self.packets_forwarded += 1
        if self._count_post_restore:
            self.post_restore_forwarded[skb.flow] = (
                self.post_restore_forwarded.get(skb.flow, 0) + 1
            )
        return [skb]

    # ------------------------------------------------------- cutover control
    def begin_drain(self, backend: str) -> None:
        """Stop admitting packets toward ``backend``; buffer them instead."""
        self._draining.add(backend)

    def repoint(self, old: str, new: str) -> int:
        """Deterministic ring update: replace ``old`` with ``new``.

        Sticky flows pinned to ``old`` are re-resolved against the updated
        ring; flows pinned elsewhere are untouched (the consistent-hash
        guarantee).  Returns the number of flows re-pointed.
        """
        self.ring.remove(old)
        if new not in self.ring.backends():
            self.ring.add(new)
        moved = 0
        for flow, backend in sorted(
            self._sticky.items(), key=lambda kv: stable_flow_hash(kv[0])
        ):
            if backend == old:
                self._sticky[flow] = self.ring.node_for(stable_flow_hash(flow))
                moved += 1
        self.flows_rerouted += moved
        return moved

    def release(self, backend: str) -> List[Skb]:
        """End ``backend``'s drain and hand back its blackout buffer (FIFO)."""
        self._draining.discard(backend)
        buf = self._buffers.pop(backend, None)
        return list(buf) if buf else []

    def mark_restore(self) -> None:
        """Start counting per-flow forwards (post-cutover liveness probe)."""
        self._count_post_restore = True
        self.post_restore_forwarded = {}

    def buffered_count(self) -> int:
        return sum(len(b) for b in self._buffers.values())
