"""The overlay's software network devices, as pipeline stages.

Each device charges its calibrated per-skb cost and (for VxLAN)
transforms the packet from its encapsulated to its decapsulated form.
Together with the second protocol-stack traversal these are what make
the overlay receive path so much longer than native (paper Fig. 2: one
IRQ plus three softirqs — pNIC, VxLAN, veth).
"""

from __future__ import annotations

from typing import List

from repro.netstack.costs import CostModel
from repro.netstack.packet import Skb
from repro.netstack.stages import PassthroughStage, Stage, StageContext


class OuterUdpDemuxStage(PassthroughStage):
    """Outer UDP receive: demultiplex to the VxLAN tunnel port (4789)."""

    def __init__(self) -> None:
        super().__init__("udp_outer", "udp_rcv_outer_ns")


class VxlanDecapStage(Stage):
    """VxLAN decapsulation — the heavyweight overlay device.

    Strips the outer headers: downstream stages see the inner (decapped)
    packet.  MFLOW's *device scaling* configuration targets exactly this
    stage (split before it, so multiple cores decapsulate in parallel).
    """

    name = "vxlan"
    droppable = True

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.vxlan_decap_ns

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        for pkt in skb.packets:
            pkt.encap = False
        ctx.telemetry.count("vxlan_decapped", skb.segs)
        return [skb]


class BridgeStage(PassthroughStage):
    """Linux bridge forwarding between the VxLAN device and the veth."""

    def __init__(self) -> None:
        super().__init__("bridge", "bridge_fwd_ns")


class VethXmitStage(PassthroughStage):
    """Host-side veth transmit into the container's namespace."""

    def __init__(self) -> None:
        super().__init__("veth_xmit", "veth_xmit_ns")


class VethRxStage(PassthroughStage):
    """Container-side veth receive (netif_rx + backlog softirq entry).

    This is the boundary where RPS steers in the paper's RPS baseline:
    everything before it stays on the IRQ core, everything after can move.
    """

    def __init__(self) -> None:
        super().__init__("veth_rx", "veth_rx_ns")
