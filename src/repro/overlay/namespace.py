"""Container network namespaces (bookkeeping model).

The simulator does not need kernel namespaces to reproduce the paper's
behaviour — the datapath length does that — but application experiments
(web serving, memcached) address services by container, so this module
provides the naming/addressing layer: a namespace owns a private IP and
a veth endpoint, and an :class:`OverlayNetwork` allocates addresses and
resolves container names to flow endpoints, like Docker's overlay
network driver does.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import SimulationError


class ContainerNamespace:
    """One container's network identity on an overlay network.

    Namespaces carry a lifecycle state machine for live migration:
    ``running`` → ``frozen`` (checkpoint taken, no packet may enter) →
    either ``running`` again (restore) or ``retired`` (the source side
    after a successful cutover).  Transitions that make no physical
    sense — freezing a frozen container, restoring a running one,
    resurrecting a retired one — raise :class:`SimulationError` rather
    than silently corrupting the cutover script.
    """

    def __init__(self, name: str, private_ip: int, host: Optional[object] = None):
        self.name = name
        self.private_ip = private_ip
        self.host = host
        self.state = "running"
        self._next_port = 40000

    def ephemeral_port(self) -> int:
        """Allocate a client-side port (monotonic, per-namespace)."""
        port = self._next_port
        self._next_port += 1
        return port

    # ------------------------------------------------------------- lifecycle
    def freeze(self) -> None:
        """CRIU-style dump start: the container stops executing."""
        if self.state != "running":
            raise SimulationError(
                f"cannot freeze container {self.name!r}: state is {self.state!r}"
            )
        self.state = "frozen"

    def restore(self) -> None:
        """Resume from a checkpoint (on this or another host)."""
        if self.state != "frozen":
            raise SimulationError(
                f"cannot restore container {self.name!r}: state is {self.state!r}"
            )
        self.state = "running"

    def retire(self) -> None:
        """Tear the namespace down for good (post-cutover source side)."""
        if self.state == "retired":
            raise SimulationError(f"container {self.name!r} is already retired")
        self.state = "retired"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ContainerNamespace {self.name} ip={self.private_ip} {self.state}>"


class OverlayNetwork:
    """A named overlay network allocating private IPs to containers."""

    def __init__(self, name: str = "overlay0", subnet_base: int = 10 << 24):
        self.name = name
        self._subnet_base = subnet_base
        self._next_ip = 2  # .0 network, .1 gateway
        self.containers: Dict[str, ContainerNamespace] = {}

    def attach(
        self,
        container_name: str,
        host: Optional[object] = None,
        state: str = "running",
    ) -> ContainerNamespace:
        """Create a namespace for ``container_name`` with a fresh private IP.

        ``state="frozen"`` pre-creates a dormant namespace — a migration
        destination that has an address from day one but only starts
        executing when the checkpoint is restored into it.
        """
        if container_name in self.containers:
            raise ValueError(f"container {container_name!r} already attached")
        if state not in ("running", "frozen"):
            raise ValueError(f"cannot attach a container in state {state!r}")
        ns = ContainerNamespace(container_name, self._subnet_base + self._next_ip, host)
        ns.state = state
        self._next_ip += 1
        self.containers[container_name] = ns
        return ns

    def lookup(self, container_name: str) -> ContainerNamespace:
        try:
            return self.containers[container_name]
        except KeyError:
            raise KeyError(
                f"container {container_name!r} not on network {self.name!r}"
            ) from None
