"""Container network namespaces (bookkeeping model).

The simulator does not need kernel namespaces to reproduce the paper's
behaviour — the datapath length does that — but application experiments
(web serving, memcached) address services by container, so this module
provides the naming/addressing layer: a namespace owns a private IP and
a veth endpoint, and an :class:`OverlayNetwork` allocates addresses and
resolves container names to flow endpoints, like Docker's overlay
network driver does.
"""

from __future__ import annotations

from typing import Dict, Optional


class ContainerNamespace:
    """One container's network identity on an overlay network."""

    def __init__(self, name: str, private_ip: int, host: Optional[object] = None):
        self.name = name
        self.private_ip = private_ip
        self.host = host
        self._next_port = 40000

    def ephemeral_port(self) -> int:
        """Allocate a client-side port (monotonic, per-namespace)."""
        port = self._next_port
        self._next_port += 1
        return port

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ContainerNamespace {self.name} ip={self.private_ip}>"


class OverlayNetwork:
    """A named overlay network allocating private IPs to containers."""

    def __init__(self, name: str = "overlay0", subnet_base: int = 10 << 24):
        self.name = name
        self._subnet_base = subnet_base
        self._next_ip = 2  # .0 network, .1 gateway
        self.containers: Dict[str, ContainerNamespace] = {}

    def attach(self, container_name: str, host: Optional[object] = None) -> ContainerNamespace:
        """Create a namespace for ``container_name`` with a fresh private IP."""
        if container_name in self.containers:
            raise ValueError(f"container {container_name!r} already attached")
        ns = ContainerNamespace(container_name, self._subnet_base + self._next_ip, host)
        self._next_ip += 1
        self.containers[container_name] = ns
        return ns

    def lookup(self, container_name: str) -> ContainerNamespace:
        try:
            return self.containers[container_name]
        except KeyError:
            raise KeyError(
                f"container {container_name!r} not on network {self.name!r}"
            ) from None
