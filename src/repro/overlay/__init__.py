"""Container overlay network construction.

Provides the software network devices of a Docker/VxLAN overlay (VxLAN
tunnel endpoint, learning bridge, veth pair) and datapath builders that
assemble them into the receive pipelines of Figures 1 and 2.
"""

from repro.overlay.balancer import ConsistentHashBalancerStage, HashRing
from repro.overlay.devices import (
    BridgeStage,
    OuterUdpDemuxStage,
    VethRxStage,
    VethXmitStage,
    VxlanDecapStage,
)
from repro.overlay.namespace import ContainerNamespace, OverlayNetwork
from repro.overlay.topology import build_datapath_stages, DatapathKind

__all__ = [
    "VxlanDecapStage",
    "BridgeStage",
    "VethXmitStage",
    "VethRxStage",
    "OuterUdpDemuxStage",
    "ConsistentHashBalancerStage",
    "HashRing",
    "ContainerNamespace",
    "OverlayNetwork",
    "build_datapath_stages",
    "DatapathKind",
]
