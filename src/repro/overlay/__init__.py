"""Container overlay network construction.

Provides the software network devices of a Docker/VxLAN overlay (VxLAN
tunnel endpoint, learning bridge, veth pair) and datapath builders that
assemble them into the receive pipelines of Figures 1 and 2.
"""

from repro.overlay.devices import (
    BridgeStage,
    OuterUdpDemuxStage,
    VethRxStage,
    VethXmitStage,
    VxlanDecapStage,
)
from repro.overlay.namespace import ContainerNamespace
from repro.overlay.topology import build_datapath_stages, DatapathKind

__all__ = [
    "VxlanDecapStage",
    "BridgeStage",
    "VethXmitStage",
    "VethRxStage",
    "OuterUdpDemuxStage",
    "ContainerNamespace",
    "build_datapath_stages",
    "DatapathKind",
]
