"""Receive-datapath construction: native vs container overlay.

``build_datapath_stages`` returns the ordered stage list for one host's
receive pipeline.  The native path is the paper's Fig. 1; the overlay
path is Fig. 2 — the same stack entered twice with the three software
devices in between:

native:  skb_alloc → gro → ip_rcv → {tcp_rcv → tcp_deliver | udp_rcv → udp_deliver}
overlay: skb_alloc → gro → ip_outer → udp_outer → vxlan → bridge
         → veth_xmit → veth_rx → ip_inner → {tcp | udp} …

(The NIC's driver-poll stage lives in :class:`repro.netstack.nic.Nic`
and feeds the head of this list; steering policies and MFLOW's
split/merge nodes are applied on top by :mod:`repro.steering`.)
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.netstack.protocol.tcp import TcpDeliverStage, TcpReceiverStage
from repro.netstack.protocol.udp import UdpDeliverStage, UdpReceiverStage
from repro.netstack.stages import GroStage, IpRcvStage, SkbAllocStage, Stage
from repro.overlay.devices import (
    BridgeStage,
    OuterUdpDemuxStage,
    VethRxStage,
    VethXmitStage,
    VxlanDecapStage,
)


class DatapathKind(enum.Enum):
    """Which receive path a host runs."""

    NATIVE = "native"
    OVERLAY = "overlay"


def build_datapath_stages(
    kind: DatapathKind,
    proto: str,
    tcp_receiver: Optional[TcpReceiverStage] = None,
    udp_deliver: Optional[UdpDeliverStage] = None,
    tcp_deliver: Optional[TcpDeliverStage] = None,
    balancer: Optional[Stage] = None,
) -> List[Stage]:
    """Build the ordered receive stages for one host.

    ``tcp_receiver`` may be passed in so the caller keeps a handle for
    wiring ACK callbacks; likewise ``udp_deliver`` for inspecting
    reassembly state and ``tcp_deliver`` for message callbacks.  Fresh
    instances are created when omitted.

    ``balancer`` (a :class:`repro.overlay.balancer
    .ConsistentHashBalancerStage`) is spliced between the outer UDP
    demux and VxLAN decap — host-side service ingress, ahead of any
    per-container processing.  It is only built for migration runs; the
    default datapath is unchanged, stage for stage.
    """
    if proto not in ("tcp", "udp"):
        raise ValueError(f"proto must be 'tcp' or 'udp', got {proto!r}")
    if balancer is not None and kind is not DatapathKind.OVERLAY:
        raise ValueError("an ingress balancer requires the overlay datapath")

    stages: List[Stage] = [SkbAllocStage(), GroStage()]
    if kind is DatapathKind.NATIVE:
        stages.append(IpRcvStage("ip_rcv", "ip_rcv_ns"))
    elif kind is DatapathKind.OVERLAY:
        stages.extend(
            [
                IpRcvStage("ip_outer", "ip_rcv_ns"),
                OuterUdpDemuxStage(),
            ]
        )
        if balancer is not None:
            stages.append(balancer)
        stages.extend(
            [
                VxlanDecapStage(),
                BridgeStage(),
                VethXmitStage(),
                VethRxStage(),
                IpRcvStage("ip_inner", "ip_rcv_inner_ns"),
            ]
        )
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown datapath kind {kind!r}")

    if proto == "tcp":
        stages.append(tcp_receiver if tcp_receiver is not None else TcpReceiverStage())
        stages.append(tcp_deliver if tcp_deliver is not None else TcpDeliverStage())
    else:
        stages.append(UdpReceiverStage())
        stages.append(udp_deliver if udp_deliver is not None else UdpDeliverStage())
    return stages
