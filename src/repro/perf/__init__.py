"""Performance observatory for the reproduction harness itself.

Three layers, all measuring the *simulator as a program* rather than the
simulated network (that side is :mod:`repro.obs`):

* :mod:`repro.perf.selfprof` — wall-clock self-profiling of the
  discrete-event hot path (heap traffic, per-component callback costs,
  events/sec), behind a ``selfprof`` toggle that mirrors ``obs=None``;
* :mod:`repro.perf.bench` — a statistical benchmark harness: a curated
  scenario matrix run N times with bootstrap confidence intervals,
  emitted as schema-versioned ``BENCH_<sha>.json`` baselines and
  compared across commits for regression gating;
* :mod:`repro.perf.fidelity` — a paper-fidelity scoreboard replaying
  the figure experiments on reduced windows and scoring each reproduced
  headline number against the paper within explicit tolerance bands.
"""

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    BenchScenario,
    CompareReport,
    ScenarioBench,
    bench_filename,
    bench_payload,
    payload_scenario_rows,
    compare_payloads,
    default_matrix,
    format_results,
    git_sha,
    load_payload,
    run_bench,
    write_payload,
)
from repro.perf.fidelity import (
    FidelityCheck,
    FidelityInputs,
    Scoreboard,
    classify,
    collect_inputs,
    run_fidelity,
    score,
)
from repro.perf.selfprof import SelfProfiler
from repro.perf.stats import SampleStats, bootstrap_ci, intervals_overlap

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchScenario",
    "CompareReport",
    "FidelityCheck",
    "FidelityInputs",
    "SampleStats",
    "ScenarioBench",
    "Scoreboard",
    "SelfProfiler",
    "bench_filename",
    "bench_payload",
    "bootstrap_ci",
    "classify",
    "collect_inputs",
    "compare_payloads",
    "default_matrix",
    "format_results",
    "git_sha",
    "intervals_overlap",
    "load_payload",
    "payload_scenario_rows",
    "run_bench",
    "run_fidelity",
    "score",
    "write_payload",
]
