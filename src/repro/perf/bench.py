"""Statistical benchmark harness with persisted baselines.

``repro bench`` runs a curated scenario matrix (small/large flow counts
across the steering systems, plus faults-on and observability-on
variants) N repetitions each and summarizes wall time and simulated
events per second with bootstrap 95% confidence intervals
(:mod:`repro.perf.stats`).  The result is a schema-versioned
``BENCH_<git-sha>.json`` — the unit of the repo's performance
trajectory: every PR emits one, and ``repro bench --compare`` gates CI
by flagging scenarios whose confidence intervals have drifted past a
tolerance, so a silent simulator slowdown fails loudly instead of
compounding.

The simulated *measurements* of each scenario are deterministic in the
seed; repetitions therefore re-measure identical work, and the spread
the CIs capture is pure harness noise (allocator, GC, scheduler) — the
thing a perf gate must tolerate but a perf regression must exceed.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.perf.stats import SampleStats

#: bump when the BENCH payload layout changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: default repetitions (full / --quick)
DEFAULT_REPS = 5
QUICK_REPS = 3

#: measurement windows in ns (full / --quick)
FULL_WINDOWS = {"warmup_ns": 1_000_000.0, "measure_ns": 4_000_000.0}
QUICK_WINDOWS = {"warmup_ns": 500_000.0, "measure_ns": 1_500_000.0}


@dataclass(frozen=True)
class BenchScenario:
    """One named cell of the bench matrix."""

    name: str
    kind: str                    # "sockperf" | "multiflow"
    params: tuple                # sorted (key, value) pairs — hashable & JSON-safe

    @classmethod
    def make(cls, name: str, kind: str, **params: Any) -> "BenchScenario":
        return cls(name=name, kind=kind, params=tuple(sorted(params.items())))

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def run_once(self, seed: int, warmup_ns: float, measure_ns: float):
        """Execute the scenario once; returns the ScenarioResult."""
        params = self.params_dict()
        if self.kind == "sockperf":
            from repro.workloads.sockperf import run_single_flow

            return run_single_flow(
                params["system"],
                params.get("proto", "tcp"),
                int(params.get("size", 65536)),
                seed=seed,
                warmup_ns=warmup_ns,
                measure_ns=measure_ns,
                batch_size=int(params.get("batch_size", 256)),
                faults=params.get("faults"),
                obs=params.get("obs"),
                hist=params.get("hist", True),
            )
        if self.kind == "multiflow":
            from repro.workloads.multiflow import run_multiflow

            return run_multiflow(
                params["system"],
                int(params["n_flows"]),
                int(params.get("size", 4096)),
                seed=seed,
                warmup_ns=warmup_ns,
                measure_ns=measure_ns,
                faults=params.get("faults"),
                obs=params.get("obs"),
                hist=params.get("hist", True),
            )
        raise ValueError(f"unknown bench scenario kind {self.kind!r}")


def default_matrix() -> List[BenchScenario]:
    """The curated matrix: steering systems at small and large flow
    counts, plus the faults-on and observability-on tax meters."""
    single = [
        BenchScenario.make(f"single_tcp64k_{system}", "sockperf",
                           system=system, proto="tcp", size=65536)
        for system in ("vanilla", "rss", "rps", "mflow")
    ]
    multi = [
        BenchScenario.make(f"multi_tcp4k_x8_{system}", "multiflow",
                           system=system, n_flows=8, size=4096)
        for system in ("vanilla", "mflow")
    ]
    variants = [
        BenchScenario.make("single_tcp64k_mflow_faults", "sockperf",
                           system="mflow", proto="tcp", size=65536, faults="loss5"),
        BenchScenario.make("single_tcp64k_mflow_obs", "sockperf",
                           system="mflow", proto="tcp", size=65536, obs=True),
        # histograms are on by default everywhere else in the matrix, so
        # this hist-off twin of single_tcp64k_mflow meters their tax
        BenchScenario.make("single_tcp64k_mflow_nohist", "sockperf",
                           system="mflow", proto="tcp", size=65536, hist=False),
    ]
    return single + multi + variants


# ------------------------------------------------------------------ execution
@dataclass
class ScenarioBench:
    """Repetition summary for one scenario."""

    scenario: BenchScenario
    wall_s: SampleStats
    events_per_sec: SampleStats
    events_executed: int
    throughput_gbps: float
    #: exact stage-histogram payload (repro.obs.hist) from the last rep;
    #: deterministic in the seed, so any rep yields the same counts
    hist: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "kind": self.scenario.kind,
            "params": self.scenario.params_dict(),
            "wall_s": self.wall_s.to_dict(),
            "events_per_sec": self.events_per_sec.to_dict(),
            "events_executed": self.events_executed,
            "throughput_gbps": self.throughput_gbps,
        }
        # additive: hist-off cells serialize exactly as schema v1 always did
        if self.hist is not None:
            out["hist"] = self.hist
        return out


ProgressFn = Callable[[str, int, int], None]


def run_bench(
    scenarios: Sequence[BenchScenario],
    reps: int = DEFAULT_REPS,
    warmup_ns: float = FULL_WINDOWS["warmup_ns"],
    measure_ns: float = FULL_WINDOWS["measure_ns"],
    seed: int = 0,
    ci_seed: int = 0,
    warmup_reps: int = 1,
    progress: Optional[ProgressFn] = None,
) -> List[ScenarioBench]:
    """Run every scenario ``reps`` timed times (after ``warmup_reps``
    untimed ones absorbing first-touch import/allocator costs) and
    summarize with bootstrap CIs."""
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    out: List[ScenarioBench] = []
    for scenario in scenarios:
        walls: List[float] = []
        rates: List[float] = []
        events = 0
        gbps = 0.0
        hist: Optional[Dict[str, Any]] = None
        for _ in range(warmup_reps):
            scenario.run_once(seed, warmup_ns, measure_ns)
        for rep in range(reps):
            if progress is not None:
                progress(scenario.name, rep, reps)
            started = time.perf_counter()
            res = scenario.run_once(seed, warmup_ns, measure_ns)
            wall = time.perf_counter() - started
            walls.append(wall)
            rates.append(res.events_executed / wall if wall > 0 else 0.0)
            events = res.events_executed
            gbps = res.throughput_gbps
            hist = getattr(res, "hist", None)
        out.append(
            ScenarioBench(
                scenario=scenario,
                wall_s=SampleStats.from_samples(walls, seed=ci_seed),
                events_per_sec=SampleStats.from_samples(rates, seed=ci_seed),
                events_executed=events,
                throughput_gbps=gbps,
                hist=hist,
            )
        )
    return out


# -------------------------------------------------------------------- payload
def git_sha(repo_dir: Optional[Path] = None) -> str:
    """Short HEAD sha, or ``nogit`` outside a repository."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip() or "nogit"
    except Exception:
        return "nogit"


def bench_filename(sha: str) -> str:
    return f"BENCH_{sha}.json"


def bench_payload(
    results: Sequence[ScenarioBench],
    reps: int,
    warmup_ns: float,
    measure_ns: float,
    seed: int,
    sha: Optional[str] = None,
) -> Dict[str, Any]:
    """The schema-versioned JSON document ``repro bench`` emits."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "git_sha": sha if sha is not None else git_sha(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "reps": reps,
        "warmup_ns": warmup_ns,
        "measure_ns": measure_ns,
        "seed": seed,
        "scenarios": {r.scenario.name: r.to_dict() for r in results},
    }


def write_payload(payload: Dict[str, Any], path: Path) -> Path:
    from repro.resilience.atomic import atomic_write_json

    return atomic_write_json(path, payload, trailing_newline=True)


def load_payload(path: Path) -> Dict[str, Any]:
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema version {version!r} unsupported "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    if payload.get("kind") != "repro-bench":
        raise ValueError(f"{path}: not a repro-bench payload")
    return payload


def payload_scenario_rows(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-scenario headline numbers from a BENCH payload, sorted by name.

    The normalized view consumers render (`repro report`, ad-hoc
    dashboards): missing stats come back as ``None`` rather than raising,
    so partially-filled payloads still display.
    """
    rows: List[Dict[str, Any]] = []
    for name, scenario in sorted(payload.get("scenarios", {}).items()):
        if not isinstance(scenario, dict):
            continue
        wall = (scenario.get("wall_s") or {}).get("mean")
        rate = (scenario.get("events_per_sec") or {}).get("mean")
        rows.append(
            {
                "name": name,
                "wall_ms": wall * 1e3 if wall else None,
                "events_per_sec": rate if rate else None,
                "throughput_gbps": scenario.get("throughput_gbps"),
            }
        )
    return rows


# -------------------------------------------------------------------- compare
@dataclass
class MetricDelta:
    """One scenario metric compared against the baseline."""

    scenario: str
    metric: str              # "wall_s" | "events_per_sec"
    baseline: SampleStats
    current: SampleStats
    delta_pct: float         # + means degraded (slower / fewer events per sec)
    status: str              # "ok" | "regression" | "improvement"


@dataclass
class CompareReport:
    """Outcome of ``repro bench --compare``."""

    baseline_sha: str
    current_sha: str
    max_slowdown: float
    deltas: List[MetricDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)   # scenarios only in baseline
    added: List[str] = field(default_factory=list)     # scenarios only in current

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def report(self) -> str:
        lines = [
            f"bench compare: {self.current_sha} vs baseline {self.baseline_sha} "
            f"(tolerance {self.max_slowdown * 100:.0f}% beyond CI overlap)"
        ]
        for d in self.deltas:
            mark = {"ok": " ", "regression": "!", "improvement": "+"}[d.status]
            lines.append(
                f" {mark} {d.scenario:<28} {d.metric:<14} "
                f"{d.baseline.mean:10.4g} -> {d.current.mean:10.4g} "
                f"({d.delta_pct:+6.1f}%)  {d.status}"
            )
        if self.missing:
            lines.append(f" ? missing from current run: {', '.join(self.missing)}")
        if self.added:
            lines.append(f" + new scenarios (no baseline): {', '.join(self.added)}")
        lines.append(
            f"{len(self.regressions)} regression(s) across "
            f"{len({d.scenario for d in self.deltas})} scenario(s)"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "baseline_sha": self.baseline_sha,
            "current_sha": self.current_sha,
            "max_slowdown": self.max_slowdown,
            "ok": self.ok,
            "missing": list(self.missing),
            "added": list(self.added),
            "deltas": [
                {
                    "scenario": d.scenario,
                    "metric": d.metric,
                    "baseline_mean": d.baseline.mean,
                    "current_mean": d.current.mean,
                    "delta_pct": d.delta_pct,
                    "status": d.status,
                }
                for d in self.deltas
            ],
        }


def _classify(
    baseline: SampleStats, current: SampleStats,
    degraded_pct: float, max_slowdown: float,
) -> str:
    """CI-overlap test: a drift only counts once the intervals are
    disjoint *and* the mean moved past the tolerance — overlapping CIs
    mean the difference is within measured noise by construction."""
    if baseline.overlaps(current):
        return "ok"
    if degraded_pct > max_slowdown * 100.0:
        return "regression"
    if degraded_pct < -max_slowdown * 100.0:
        return "improvement"
    return "ok"


def compare_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_slowdown: float = 0.10,
) -> CompareReport:
    """Flag scenarios whose wall time or events/sec regressed."""
    report = CompareReport(
        baseline_sha=str(baseline.get("git_sha", "?")),
        current_sha=str(current.get("git_sha", "?")),
        max_slowdown=max_slowdown,
    )
    cur_scenarios = current.get("scenarios", {})
    base_scenarios = baseline.get("scenarios", {})
    report.missing = sorted(set(base_scenarios) - set(cur_scenarios))
    report.added = sorted(set(cur_scenarios) - set(base_scenarios))
    for name in sorted(set(cur_scenarios) & set(base_scenarios)):
        cur, base = cur_scenarios[name], base_scenarios[name]
        # wall time: up is worse
        b = SampleStats.from_dict(base["wall_s"])
        c = SampleStats.from_dict(cur["wall_s"])
        degraded = (c.mean / b.mean - 1.0) * 100.0 if b.mean > 0 else 0.0
        report.deltas.append(
            MetricDelta(name, "wall_s", b, c, degraded,
                        _classify(b, c, degraded, max_slowdown))
        )
        # events/sec: down is worse
        b = SampleStats.from_dict(base["events_per_sec"])
        c = SampleStats.from_dict(cur["events_per_sec"])
        degraded = (b.mean / c.mean - 1.0) * 100.0 if c.mean > 0 else 0.0
        report.deltas.append(
            MetricDelta(name, "events_per_sec", b, c, degraded,
                        _classify(b, c, degraded, max_slowdown))
        )
    return report


def format_results(results: Sequence[ScenarioBench]) -> str:
    """Human-readable table of one bench run."""
    lines = [
        f"{'scenario':<28} {'wall mean':>10} {'95% CI':>23} "
        f"{'events/s':>10} {'throughput':>11}",
        "-" * 88,
    ]
    for r in results:
        w = r.wall_s
        lines.append(
            f"{r.scenario.name:<28} {w.mean * 1e3:8.1f}ms "
            f"[{w.ci_lo * 1e3:8.1f}, {w.ci_hi * 1e3:8.1f}]ms "
            f"{r.events_per_sec.mean / 1e3:7.0f}k {r.throughput_gbps:9.2f} G"
        )
    return "\n".join(lines)
