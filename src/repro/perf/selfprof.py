"""Wall-clock self-profiling of the discrete-event hot path.

The simulated network already has a flight recorder (:mod:`repro.obs`);
this profiles the *simulator as a Python program*: where real CPU time
goes while the event loop runs.  A :class:`SelfProfiler` attaches to a
:class:`~repro.sim.engine.Simulator` (``sim.profiler = prof``) and the
engine then runs an instrumented copy of its loop that

* times every callback with :func:`time.perf_counter` and attributes the
  cost to the owning component (``Nic._do_poll``, ``Core._run_next``, …),
* counts heap traffic (pushes, pops, cancelled-event skips, compactions)
  and tracks the peak heap size,
* derives executed-events-per-wall-second, the harness's headline
  throughput number.

With no profiler attached (the default) the engine takes its original
loop: the object graph, event schedule, and simulated measurements are
bit-identical to a build without this module — the same discipline as
``obs=None`` and inert fault plans.  Even with a profiler attached the
*simulated* results never change (only wall-clock is observed); the
toggle exists so the uninstrumented loop also pays zero overhead.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


def callback_owner(fn: Callable[..., Any]) -> str:
    """Stable cost-center name for a scheduled callback.

    Bound methods resolve to ``ClassName.method`` of the *concrete*
    receiver (so a subclass policy shows up under its own name);
    plain functions fall back to their qualname.
    """
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{fn.__name__}"
    return getattr(fn, "__qualname__", repr(fn))


class SelfProfiler:
    """Accumulates engine-loop costs; JSON-safe summary via :meth:`summary`."""

    __slots__ = (
        "heap_pushes",
        "heap_pops",
        "cancelled_skips",
        "compactions",
        "peak_heap",
        "level_pushes",
        "wheel_cascades",
        "wheel_jumps",
        "events_executed",
        "run_wall_s",
        "callback_wall_s",
        "centers",
        "queue_stats",
    )

    def __init__(self) -> None:
        self.heap_pushes = 0
        self.heap_pops = 0
        self.cancelled_skips = 0
        self.compactions = 0
        self.peak_heap = 0
        #: pushes per wheel level: [active heap, L0 slot, L1 slot, overflow]
        self.level_pushes = [0, 0, 0, 0]
        #: L1->L0 slot cascades (wheel window advanced one interval)
        self.wheel_cascades = 0
        #: whole-window jumps driven by the overflow heap's horizon
        self.wheel_jumps = 0
        self.events_executed = 0
        #: total wall time inside Simulator.run() (includes loop overhead)
        self.run_wall_s = 0.0
        #: wall time inside callbacks only (run_wall_s minus this = engine cost)
        self.callback_wall_s = 0.0
        #: cost center -> [calls, wall seconds]
        self.centers: Dict[str, List[float]] = {}
        #: optional end-of-run queue snapshots (filled by the scenario)
        self.queue_stats: List[Dict[str, Any]] = []

    # ------------------------------------------------------------ heap hooks
    def note_push(self, heap_len: int, level: int = 0) -> None:
        self.heap_pushes += 1
        self.level_pushes[level] += 1
        if heap_len > self.peak_heap:
            self.peak_heap = heap_len

    def note_cascade(self, jumped: bool) -> None:
        """One wheel-window advance: an L1 slot cascade, or (``jumped``)
        a whole-window jump to the overflow heap's horizon."""
        if jumped:
            self.wheel_jumps += 1
        else:
            self.wheel_cascades += 1

    def note_compaction(self) -> None:
        self.compactions += 1

    def note_callback(self, fn: Callable[..., Any], elapsed_s: float) -> None:
        """Attribute one executed event's wall time to its cost center."""
        self.events_executed += 1
        self.callback_wall_s += elapsed_s
        cell = self.centers.get(callback_owner(fn))
        if cell is None:
            self.centers[callback_owner(fn)] = [1, elapsed_s]
        else:
            cell[0] += 1
            cell[1] += elapsed_s

    # -------------------------------------------------------------- reporting
    @property
    def events_per_sec(self) -> float:
        return self.events_executed / self.run_wall_s if self.run_wall_s > 0 else 0.0

    @property
    def engine_overhead_s(self) -> float:
        """Loop time not inside any callback: heap ops, clock, dispatch."""
        return max(0.0, self.run_wall_s - self.callback_wall_s)

    def top_centers(self, k: int = 10) -> List[Dict[str, Any]]:
        """The k most expensive cost centers, by total wall seconds."""
        ranked = sorted(self.centers.items(), key=lambda kv: -kv[1][1])[:k]
        return [
            {
                "name": name,
                "calls": int(calls),
                "wall_s": wall_s,
                "mean_us": (wall_s / calls) * 1e6 if calls else 0.0,
                "share": wall_s / self.callback_wall_s if self.callback_wall_s else 0.0,
            }
            for name, (calls, wall_s) in ranked
        ]

    def summary(self, top_k: int = 10) -> Dict[str, Any]:
        """JSON-safe payload embedded in :class:`ScenarioResult.selfprof`."""
        return {
            "events_executed": self.events_executed,
            "run_wall_s": self.run_wall_s,
            "events_per_sec": self.events_per_sec,
            "callback_wall_s": self.callback_wall_s,
            "engine_overhead_s": self.engine_overhead_s,
            "heap": {
                "pushes": self.heap_pushes,
                "pops": self.heap_pops,
                "cancelled_skips": self.cancelled_skips,
                "compactions": self.compactions,
                "peak_size": self.peak_heap,
                "level_pushes": {
                    "active": self.level_pushes[0],
                    "l0": self.level_pushes[1],
                    "l1": self.level_pushes[2],
                    "overflow": self.level_pushes[3],
                },
                "cascades": self.wheel_cascades,
                "window_jumps": self.wheel_jumps,
            },
            "cost_centers": self.top_centers(top_k),
            "n_cost_centers": len(self.centers),
            "queues": list(self.queue_stats),
        }

    def report(self, top_k: int = 10) -> str:
        """Human-readable profile, the body of ``repro prof``."""
        lines = [
            f"events executed : {self.events_executed}",
            f"wall time       : {self.run_wall_s * 1e3:.1f} ms "
            f"({self.events_per_sec / 1e3:.0f}k events/s)",
            f"engine overhead : {self.engine_overhead_s * 1e3:.1f} ms "
            f"(heap ops, dispatch; rest is callbacks)",
            f"heap            : {self.heap_pushes} pushes, {self.heap_pops} pops, "
            f"{self.cancelled_skips} cancelled skips, {self.compactions} compactions, "
            f"peak {self.peak_heap}",
            f"wheel           : pushes active/l0/l1/far "
            f"{self.level_pushes[0]}/{self.level_pushes[1]}/"
            f"{self.level_pushes[2]}/{self.level_pushes[3]}, "
            f"{self.wheel_cascades} cascades, {self.wheel_jumps} window jumps",
            "",
            f"top {min(top_k, len(self.centers))} cost centers "
            f"(of {len(self.centers)}):",
        ]
        for c in self.top_centers(top_k):
            lines.append(
                f"  {c['share'] * 100:5.1f}%  {c['wall_s'] * 1e3:8.2f} ms  "
                f"{c['calls']:>9} calls  {c['mean_us']:7.2f} us/call  {c['name']}"
            )
        if self.queue_stats:
            busiest = sorted(self.queue_stats, key=lambda q: -q.get("puts", 0))[:5]
            lines.append("")
            lines.append("busiest queues (puts/gets/drops):")
            for q in busiest:
                lines.append(
                    f"  {q['name']:<24} {q['puts']:>9} / {q['gets']:>9} / {q['drops']}"
                )
        return "\n".join(lines)


def resolve_selfprof(selfprof: Any) -> Optional[SelfProfiler]:
    """Normalize a ``selfprof=`` toggle to a profiler or ``None``.

    Mirrors :func:`repro.obs.config.resolve_obs`: ``None``/``False`` are
    inert, ``True`` builds a fresh profiler, and an existing
    :class:`SelfProfiler` is passed through (letting callers aggregate
    several runs into one profile).
    """
    if selfprof is None or selfprof is False:
        return None
    if selfprof is True:
        return SelfProfiler()
    if isinstance(selfprof, SelfProfiler):
        return selfprof
    raise TypeError(
        f"cannot resolve selfprof from {type(selfprof).__name__}: {selfprof!r}"
    )
