"""Paper-fidelity scoreboard.

``repro fidelity`` replays the figure experiments on reduced measurement
windows and scores each reproduced *headline number* against the paper's
reported value inside an explicit tolerance band.  The point is to make
drift in correctness as visible per PR as drift in speed: a refactor
that keeps the tests green but quietly halves MFLOW's speedup now fails
a named check with the paper value printed next to the observed one.

Checks score **ratios** (speedups, orderings, decay factors) rather than
absolute Gbps: absolutes are calibrated through a single anchor
(DESIGN.md §1) and shift with windows, while the paper's claims — who
wins, by what factor, where crossovers fall — are scale-free and stable
down to the reduced windows used here.  Bands are deliberately generous:
they encode "the claim still reproduces", not "the number is frozen";
EXPERIMENTS.md records the exact full-window values.

Split into a pure scoring core (:func:`score` on a
:class:`FidelityInputs`) and a simulation step (:func:`collect_inputs`),
so the band logic is unit-testable on synthetic inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

FIDELITY_SCHEMA_VERSION = 1

#: reduced replay windows in ns (full / --quick)
FULL_WINDOWS = {"warmup_ns": 2_000_000.0, "measure_ns": 8_000_000.0}
QUICK_WINDOWS = {"warmup_ns": 1_000_000.0, "measure_ns": 3_000_000.0}


# --------------------------------------------------------------------- inputs
@dataclass
class FidelityInputs:
    """Raw reproduced numbers the checks are computed from."""

    #: single-flow 64 KB throughput by system (Fig. 8a)
    tcp_gbps: Dict[str, float] = field(default_factory=dict)
    udp_gbps: Dict[str, float] = field(default_factory=dict)
    #: single-flow 64 KB p99 latency by system at saturation (Fig. 9 shape)
    tcp_p99_us: Dict[str, float] = field(default_factory=dict)
    #: MFLOW merge-point buffer-queue switches at batch 1 vs 256 (Fig. 7)
    ooo_microflows_batch1: int = 0
    ooo_microflows_batch256: int = 0
    #: kernel-pool utilization std-dev (%) under multi-flow load (Fig. 12)
    util_std: Dict[str, float] = field(default_factory=dict)
    #: memcached p99 by system at 10 clients (Fig. 13)
    memcached_p99_us: Dict[str, float] = field(default_factory=dict)


def collect_inputs(quick: bool = True, seed: int = 0) -> FidelityInputs:
    """Replay the figure experiments on reduced windows."""
    from repro.workloads.memcached import run_memcached
    from repro.workloads.multiflow import run_multiflow, utilization_stddev
    from repro.workloads.sockperf import run_single_flow

    win = QUICK_WINDOWS if quick else FULL_WINDOWS
    inputs = FidelityInputs()
    for system in ("native", "vanilla", "falcon", "mflow"):
        res = run_single_flow(system, "tcp", 65536, seed=seed, **win)
        inputs.tcp_gbps[system] = res.throughput_gbps
        inputs.tcp_p99_us[system] = res.latency.p99_us
    for system in ("native", "vanilla", "mflow"):
        inputs.udp_gbps[system] = run_single_flow(
            system, "udp", 65536, seed=seed, **win
        ).throughput_gbps
    batch1 = run_single_flow("mflow", "tcp", 65536, seed=seed, batch_size=1, **win)
    inputs.ooo_microflows_batch1 = batch1.counters.get("mflow_ooo_microflows", 0)
    batch256 = run_single_flow("mflow", "tcp", 65536, seed=seed, batch_size=256, **win)
    inputs.ooo_microflows_batch256 = batch256.counters.get("mflow_ooo_microflows", 0)
    for system in ("falcon", "mflow"):
        inputs.util_std[system] = utilization_stddev(
            run_multiflow(system, 5, 4096, seed=seed, **win)
        )
    for system in ("vanilla", "mflow"):
        inputs.memcached_p99_us[system] = run_memcached(
            system, 10, seed=seed, **win
        ).latency.p99_us
    return inputs


# --------------------------------------------------------------------- checks
def classify(observed: float, band_lo: float, band_hi: float) -> str:
    """``pass`` inside the closed band, ``fail`` outside (NaN always fails)."""
    if observed != observed:  # NaN
        return "fail"
    return "pass" if band_lo <= observed <= band_hi else "fail"


@dataclass
class FidelityCheck:
    """One scored headline number."""

    name: str
    figure: str
    description: str
    paper: float               # the paper-reported value of the same ratio
    band_lo: float
    band_hi: float
    observed: Optional[float] = None
    status: str = "pending"

    def score(self, observed: float) -> "FidelityCheck":
        self.observed = observed
        self.status = classify(observed, self.band_lo, self.band_hi)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "figure": self.figure,
            "description": self.description,
            "paper": self.paper,
            "band": [self.band_lo, self.band_hi],
            "observed": self.observed,
            "status": self.status,
        }


@dataclass
class Scoreboard:
    """All checks of one fidelity run."""

    checks: List[FidelityCheck] = field(default_factory=list)
    quick: bool = True
    seed: int = 0

    @property
    def all_pass(self) -> bool:
        return all(c.status == "pass" for c in self.checks)

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.checks if c.status != "pass")

    def exit_code(self) -> int:
        return 0 if self.all_pass else 1

    def report(self) -> str:
        lines = [
            f"{'check':<26} {'fig':<6} {'paper':>7} {'observed':>9} "
            f"{'band':>16} {'status':>7}",
            "-" * 76,
        ]
        for c in self.checks:
            obs = f"{c.observed:.2f}" if c.observed is not None else "-"
            lines.append(
                f"{c.name:<26} {c.figure:<6} {c.paper:>7.2f} {obs:>9} "
                f"[{c.band_lo:6.2f},{c.band_hi:6.2f}] {c.status:>7}"
            )
        verdict = "ALL PASS" if self.all_pass else f"{self.n_failed} FAILED"
        lines.append("-" * 76)
        lines.append(
            f"{len(self.checks) - self.n_failed}/{len(self.checks)} "
            f"headline numbers in band — {verdict}"
        )
        return "\n".join(lines)

    def markdown(self) -> str:
        lines = [
            "# Paper-fidelity scoreboard",
            "",
            f"Windows: {'quick' if self.quick else 'full'} · seed {self.seed} · "
            f"{len(self.checks) - self.n_failed}/{len(self.checks)} checks in band",
            "",
            "| check | figure | claim | paper | observed | band | status |",
            "|---|---|---|---|---|---|---|",
        ]
        for c in self.checks:
            obs = f"{c.observed:.2f}" if c.observed is not None else "–"
            mark = "✓" if c.status == "pass" else "✗"
            lines.append(
                f"| `{c.name}` | {c.figure} | {c.description} | {c.paper:.2f} | "
                f"{obs} | [{c.band_lo:.2f}, {c.band_hi:.2f}] | {mark} {c.status} |"
            )
        return "\n".join(lines) + "\n"

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": FIDELITY_SCHEMA_VERSION,
            "kind": "repro-fidelity",
            "quick": self.quick,
            "seed": self.seed,
            "all_pass": self.all_pass,
            "checks": [c.to_dict() for c in self.checks],
        }

    def write_json(self, path: Path) -> Path:
        from repro.resilience.atomic import atomic_write_json

        return atomic_write_json(path, self.to_json_dict(), trailing_newline=True)

    def write_markdown(self, path: Path) -> Path:
        from repro.resilience.atomic import atomic_write_text

        return atomic_write_text(path, self.markdown())


def _ratio(num: float, den: float) -> float:
    return num / den if den > 0 else float("nan")


def score(inputs: FidelityInputs, quick: bool = True, seed: int = 0) -> Scoreboard:
    """Score every headline check against its tolerance band (pure).

    Band rationale: centered on the seed repo's full-window measurements
    (EXPERIMENTS.md) with room for reduced-window drift; each band still
    excludes "the claim no longer holds" (e.g. a speedup band never
    crosses below ~1.0).
    """
    board = Scoreboard(quick=quick, seed=seed)
    t, u = inputs.tcp_gbps, inputs.udp_gbps
    board.checks = [
        FidelityCheck(
            "mflow_vanilla_tcp", "fig8a",
            "MFLOW/vanilla TCP 64 KB speedup (paper +81%)",
            paper=1.81, band_lo=1.40, band_hi=2.80,
        ).score(_ratio(t.get("mflow", 0.0), t.get("vanilla", 0.0))),
        FidelityCheck(
            "mflow_vanilla_udp", "fig8a",
            "MFLOW/vanilla UDP 64 KB speedup (paper +139%)",
            paper=2.39, band_lo=1.50, band_hi=3.20,
        ).score(_ratio(u.get("mflow", 0.0), u.get("vanilla", 0.0))),
        FidelityCheck(
            "mflow_native_tcp", "fig8a",
            "MFLOW beats native for TCP (paper 29.8 vs 26.6 Gbps)",
            paper=1.12, band_lo=1.00, band_hi=1.35,
        ).score(_ratio(t.get("mflow", 0.0), t.get("native", 0.0))),
        FidelityCheck(
            "mflow_falcon_tcp", "fig8a",
            "MFLOW/FALCON TCP 64 KB speedup (paper +22%)",
            paper=1.22, band_lo=1.05, band_hi=1.90,
        ).score(_ratio(t.get("mflow", 0.0), t.get("falcon", 0.0))),
        FidelityCheck(
            "udp_mflow_below_native", "fig8a",
            "UDP MFLOW stays below native — clients bottleneck first",
            paper=0.93, band_lo=0.55, band_hi=1.02,
        ).score(_ratio(u.get("mflow", 0.0), u.get("native", 0.0))),
        FidelityCheck(
            "latency_vanilla_mflow", "fig9",
            "vanilla/MFLOW p99 at saturation — MFLOW drains its window",
            paper=10.15, band_lo=2.00, band_hi=30.00,
        ).score(
            _ratio(inputs.tcp_p99_us.get("vanilla", 0.0),
                   inputs.tcp_p99_us.get("mflow", 0.0))
        ),
        FidelityCheck(
            "ooo_batch_decay", "fig7",
            "merge-queue switches, batch 1 vs 256 (paper 5409→92)",
            paper=58.79, band_lo=8.00, band_hi=400.00,
        ).score(
            _ratio(float(inputs.ooo_microflows_batch1),
                   float(max(1, inputs.ooo_microflows_batch256)))
        ),
        FidelityCheck(
            "multiflow_balance", "fig12",
            "FALCON/MFLOW kernel-pool utilization std (paper 20.5 vs 11.6)",
            paper=1.77, band_lo=1.02, band_hi=2.50,
        ).score(
            _ratio(inputs.util_std.get("falcon", 0.0),
                   inputs.util_std.get("mflow", 0.0))
        ),
        FidelityCheck(
            "memcached_p99_cut", "fig13",
            "MFLOW p99 reduction at 10 clients (paper −47%)",
            paper=0.47, band_lo=0.25, band_hi=0.75,
        ).score(
            1.0 - _ratio(inputs.memcached_p99_us.get("mflow", 0.0),
                         inputs.memcached_p99_us.get("vanilla", 0.0))
        ),
    ]
    return board


def run_fidelity(quick: bool = True, seed: int = 0) -> Scoreboard:
    """Collect + score: the ``repro fidelity`` entry point."""
    return score(collect_inputs(quick=quick, seed=seed), quick=quick, seed=seed)
