"""Small-sample statistics for wall-clock measurements.

Benchmark repetitions are few (3–20) and wall-time distributions are
skewed (GC pauses, scheduler noise), so normal-theory intervals are the
wrong tool; the bootstrap makes no distributional assumption and is the
standard for timing data.  Everything here is deterministic: resampling
uses a dedicated :class:`random.Random` seeded explicitly, so the same
samples always produce the same interval.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

#: resample count — enough for stable 2.5/97.5 percentiles at our n
DEFAULT_RESAMPLES = 2000


def mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("mean of empty sample")
    return sum(xs) / len(xs)


def stddev(xs: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for singleton samples."""
    if len(xs) < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


def percentile(sorted_xs: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not sorted_xs:
        raise ValueError("percentile of empty sample")
    if len(sorted_xs) == 1:
        return sorted_xs[0]
    pos = q * (len(sorted_xs) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_xs) - 1)
    frac = pos - lo
    return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Deterministic for a given ``(samples, confidence, n_resamples,
    seed)``.  A singleton sample has no spread information and returns a
    degenerate ``(x, x)`` interval.
    """
    if not samples:
        raise ValueError("bootstrap_ci of empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(samples)
    if n == 1:
        return (samples[0], samples[0])
    rng = random.Random(seed)
    means = sorted(
        sum(samples[rng.randrange(n)] for _ in range(n)) / n
        for _ in range(n_resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    return (percentile(means, alpha), percentile(means, 1.0 - alpha))


def intervals_overlap(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """Whether two closed intervals share at least one point."""
    return a[0] <= b[1] and b[0] <= a[1]


@dataclass(frozen=True)
class SampleStats:
    """Mean + spread + bootstrap CI of one measured quantity."""

    n: int
    mean: float
    std: float
    min: float
    max: float
    ci_lo: float
    ci_hi: float
    confidence: float = 0.95

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        confidence: float = 0.95,
        seed: int = 0,
        n_resamples: int = DEFAULT_RESAMPLES,
    ) -> "SampleStats":
        lo, hi = bootstrap_ci(
            samples, confidence=confidence, n_resamples=n_resamples, seed=seed
        )
        return cls(
            n=len(samples),
            mean=mean(samples),
            std=stddev(samples),
            min=min(samples),
            max=max(samples),
            ci_lo=lo,
            ci_hi=hi,
            confidence=confidence,
        )

    @property
    def ci(self) -> Tuple[float, float]:
        return (self.ci_lo, self.ci_hi)

    def overlaps(self, other: "SampleStats") -> bool:
        return intervals_overlap(self.ci, other.ci)

    def to_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "ci_lo": self.ci_lo,
            "ci_hi": self.ci_hi,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SampleStats":
        return cls(
            n=int(data["n"]),
            mean=float(data["mean"]),
            std=float(data["std"]),
            min=float(data["min"]),
            max=float(data["max"]),
            ci_lo=float(data["ci_lo"]),
            ci_hi=float(data["ci_hi"]),
            confidence=float(data.get("confidence", 0.95)),
        )
