"""Batch-based flow reassembling (paper §III-B, Fig. 6c).

Per flow, the reassembler keeps one FIFO buffer queue per branch and a
*merging counter*.  Micro-flow ``k`` lives on branch ``k % n`` and each
branch receives its micro-flows in increasing order (the branch path is
FIFO end to end), so the merge rule is exactly the paper's: consume from
the expected branch's queue while its head carries the counter's ID;
when the head shows a *later* ID, micro-flow ``k`` is finished — advance
the counter (paying the queue-switch cost) and move to the next branch.

Two liveness escapes handle micro-flows that never fully arrive (UDP
drops): a parked-skb threshold and a progress timeout, both of which
advance the counter and count a ``mflow_merge_skips``.

The module also provides :class:`PerPacketReorderStage`, the strawman
the paper argues against (reordering with a per-packet out-of-order
queue, like TCP's ofo handling) — used by the ablation benchmark to
quantify how much the batch-based design saves.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.netstack.costs import CostModel
from repro.core.splitting import GLOBAL_KEY
from repro.netstack.packet import FlowKey, Skb
from repro.netstack.stages import Stage, StageContext


class _FlowMergeState:
    __slots__ = (
        "queues",
        "counter",
        "max_wire_seq",
        "max_microflow",
        "inverted",
        "parked",
        "last_progress_ns",
        "proto",
        "key",
        "drained_current",
        "skips",
    )

    def __init__(self, n_branches: int, now: float = 0.0):
        self.queues: List[Deque[Skb]] = [deque() for _ in range(n_branches)]
        self.counter = 0
        self.max_wire_seq = -1
        self.max_microflow = -1
        self.inverted: set = set()
        self.parked = 0
        # progress clock starts at the flow's first arrival, not sim time
        # zero — a flow whose first packet shows up late must not trip the
        # merge progress timeout immediately
        self.last_progress_ns = now
        self.proto = ""
        self.key = None
        self.drained_current = 0
        self.skips = 0  # this flow's share of merge_skips (health signal)


class ReassemblyStage(Stage):
    """MFLOW's batch-based merge point."""

    name = "mflow_merge"
    droppable = False

    def __init__(
        self,
        n_branches: int,
        stall_skbs: int = 2048,
        timeout_ns: float = 200_000.0,
        per_flow: bool = True,
        splitter=None,
    ):
        if n_branches < 1:
            raise ValueError(f"need at least one branch, got {n_branches}")
        self.n_branches = n_branches
        self.stall_skbs = stall_skbs
        self.timeout_ns = timeout_ns
        self.per_flow = per_flow
        #: the matching MicroflowSplitStage: lets the merge know each
        #: micro-flow's exact size, so the counter advances the moment a
        #: micro-flow has fully arrived (no boundary stalls in the
        #: lossless case)
        self.splitter = splitter
        self._flows: Dict[FlowKey, _FlowMergeState] = {}
        self.ooo_arrivals = 0      # skbs arriving behind an already-seen packet
        self.ooo_packets = 0       # same, in wire packets
        self.ooo_microflows = 0    # micro-flows whose packets interleave with a
                                   # later micro-flow (batch-level reorder events)
        self.merge_skips = 0       # counter advances forced by loss/stall
        self._timer_armed: Dict[FlowKey, bool] = {}

    # ------------------------------------------------------------- stage API
    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.mflow_merge_per_skb_ns

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        st = self._state(skb.flow if self.per_flow else GLOBAL_KEY, ctx.sim.now)
        # Fig. 7 metric: does this skb arrive at the merge point after a
        # packet that followed it on the wire already did?
        if skb.head.wire_seq < st.max_wire_seq:
            self.ooo_arrivals += 1
            self.ooo_packets += skb.segs
            ctx.telemetry.count("mflow_ooo_arrivals")
            ctx.telemetry.count("mflow_ooo_packets", skb.segs)
        last = skb.packets[-1].wire_seq
        if last > st.max_wire_seq:
            st.max_wire_seq = last
        # Batch-level reorder events (the Fig. 7 headline metric): a
        # micro-flow counts once if any of its skbs arrives after a later
        # micro-flow has already been seen — each such event is one
        # buffer-queue switch the batch-based reassembler must absorb.
        mf = skb.microflow_id if skb.microflow_id is not None else 0
        if mf > st.max_microflow:
            st.max_microflow = mf
        elif mf < st.max_microflow and mf not in st.inverted:
            st.inverted.add(mf)
            self.ooo_microflows += 1
            ctx.telemetry.count("mflow_ooo_microflows")
        branch = skb.branch if skb.branch is not None else 0
        st.queues[branch].append(skb)
        st.parked += 1
        out = self._drain(st, ctx)
        self._arm_timer(skb.flow if self.per_flow else GLOBAL_KEY, st, ctx)
        return out

    # ------------------------------------------------------------- internals
    def _state(self, flow: FlowKey, now: float = 0.0) -> _FlowMergeState:
        st = self._flows.get(flow)
        if st is None:
            st = self._flows[flow] = _FlowMergeState(self.n_branches, now=now)
            st.proto = flow.proto
            st.key = flow
        return st

    def iter_flows(self):
        """(flow, merge-state) pairs — read-only health introspection."""
        return self._flows.items()

    def retire_flow(self, flow: FlowKey, pipeline=None) -> None:
        """Drop per-flow merge state (no-op in aggregate mode).

        When a ``pipeline`` is given, skbs still parked in the flow's
        branch queues are returned to the skb pool — retiring a flow (or
        the container namespace it lives in) mid-run must not strand
        pooled skbs.
        """
        if not self.per_flow:
            return
        st = self._flows.pop(flow, None)
        self._timer_armed.pop(flow, None)
        if st is not None and pipeline is not None:
            for q in st.queues:
                while q:
                    pipeline.recycle_skb(q.popleft())
            st.parked = 0

    def detach_flow(self, flow: FlowKey) -> Optional[_FlowMergeState]:
        """Remove and return ``flow``'s live merge state (parked skbs ride
        inside) — the migration freeze path.  The armed progress timer
        finds the state gone and disarms itself."""
        self._timer_armed.pop(flow, None)
        return self._flows.pop(flow, None)

    def attach_flow(self, flow: FlowKey, state: _FlowMergeState) -> None:
        """Reinstall a detached merge state (the migration restore path)."""
        self._flows[flow] = state

    def _advance(self, st: _FlowMergeState) -> None:
        st.inverted.discard(st.counter)
        if self.splitter is not None:
            self.splitter.forget_microflow(st.key, st.counter)
        st.counter += 1
        st.drained_current = 0

    def _current_complete(self, st: _FlowMergeState) -> bool:
        """True when micro-flow ``st.counter`` has been fully merged."""
        if self.splitter is None:
            return False
        if not self.splitter.microflow_closed(st.key, st.counter):
            return False
        return st.drained_current >= self.splitter.microflow_size(st.key, st.counter)

    def _drain(self, st: _FlowMergeState, ctx: StageContext) -> List[Skb]:
        out: List[Skb] = []
        switches = 0
        obs = ctx.pipeline.obs
        while True:
            q = st.queues[st.counter % self.n_branches]
            if q:
                head_id = q[0].microflow_id or 0
                if head_id == st.counter:
                    skb = q.popleft()
                    st.parked -= 1
                    st.drained_current += skb.segs
                    out.append(skb)
                    continue
                if head_id > st.counter:
                    self._advance(st)  # micro-flow fully consumed (or lost)
                    switches += 1
                    continue
                # head_id < counter can only happen on merge skips: the
                # stragglers are late — release them immediately (they are
                # already out of order; stalling further helps nothing).
                out.append(q.popleft())
                st.parked -= 1
                ctx.telemetry.count("mflow_late_stragglers")
                continue
            # Expected queue empty.  Exact completion: the splitter told us
            # this micro-flow's final size — if every segment has been
            # merged, advance immediately (no boundary stall at all in the
            # lossless case).
            if self._current_complete(st):
                self._advance(st)
                switches += 1
                continue
            # Loss fast path (UDP only — a late TCP tail must never enter
            # the stateful layer out of order): if the *next* micro-flow is
            # already waiting on another branch, the expected one has lost
            # packets; advance rather than hold everything back.
            if st.parked > 0 and st.proto == "udp":
                nxt = st.queues[(st.counter + 1) % self.n_branches]
                if nxt and (nxt[0].microflow_id or 0) == st.counter + 1:
                    if obs is not None:
                        obs.instant(
                            "mflow_merge_skip", core=ctx.core.id,
                            reason="loss_fastpath", counter=st.counter,
                            parked=st.parked,
                        )
                    self._advance(st)
                    switches += 1
                    self.merge_skips += 1
                    st.skips += 1
                    ctx.telemetry.count("mflow_merge_skips")
                    continue
            # otherwise wait, unless clearly stalled by loss
            if st.parked >= self.stall_skbs:
                if obs is not None:
                    obs.instant(
                        "mflow_merge_skip", core=ctx.core.id, reason="stall",
                        counter=st.counter, parked=st.parked,
                    )
                self._advance(st)
                switches += 1
                self.merge_skips += 1
                st.skips += 1
                ctx.telemetry.count("mflow_merge_skips")
                continue
            break
        if switches:
            ctx.core.submit_call(
                "mflow_merge_switch",
                ctx.costs.mflow_merge_switch_ns * switches,
                _noop,
            )
        if out:
            st.last_progress_ns = ctx.sim.now
        return out

    def _arm_timer(self, flow: FlowKey, st: _FlowMergeState, ctx: StageContext) -> None:
        """Progress timeout: if parked skbs sit with no merge progress for
        ``timeout_ns``, assume the expected micro-flow was lost and advance."""
        if self._timer_armed.get(flow) or st.parked == 0:
            return
        self._timer_armed[flow] = True
        # the timer callback is a bound method (not a closure) so a live
        # event heap stays picklable for checkpoints
        ctx.sim.sched_in(
            self.timeout_ns,
            self._progress_check, flow, ctx.pipeline, ctx.node, ctx.core,
        )

    def _progress_check(self, flow: FlowKey, pipeline, node, core) -> None:
        sim = pipeline.sim
        state = self._flows.get(flow)
        if state is None or state.parked == 0:
            self._timer_armed[flow] = False
            return
        idle = sim.now - state.last_progress_ns
        if idle >= self.timeout_ns:
            if pipeline.obs is not None:
                pipeline.obs.instant(
                    "mflow_merge_skip", core=core.id, reason="timeout",
                    counter=state.counter, parked=state.parked,
                )
            self._advance(state)
            self.merge_skips += 1
            state.skips += 1
            state.last_progress_ns = sim.now
            fake_ctx = StageContext(pipeline, node, core)
            for skb in self._drain(state, fake_ctx):
                pipeline.inject(node.next, skb, core)
        sim.sched_in(self.timeout_ns, self._progress_check, flow, pipeline, node, core)

    def parked_total(self) -> int:
        return sum(st.parked for st in self._flows.values())


class PerPacketReorderStage(Stage):
    """Ablation strawman: restore *wire order* packet by packet.

    Models reusing the kernel's per-packet out-of-order queue instead of
    MFLOW's batch-based design: every out-of-order arrival pays
    ``reorder_per_pkt_ns`` and packets are released strictly in wire-
    sequence order (with the same loss-recovery escapes).
    """

    name = "pkt_reorder"
    droppable = False

    def __init__(self, stall_skbs: int = 2048):
        self.stall_skbs = stall_skbs
        self._expected: Dict[FlowKey, int] = {}
        self._held: Dict[FlowKey, Dict[int, Skb]] = {}
        self.ooo_arrivals = 0

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.mflow_merge_per_skb_ns

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        flow = skb.flow
        expected = self._expected.get(flow, 0)
        held = self._held.setdefault(flow, {})
        first = skb.flow_serial if skb.flow_serial is not None else skb.head.wire_seq
        out: List[Skb] = []
        if first < expected:
            # straggler after a forced skip: release immediately
            return [skb]
        held[first] = skb
        if first != expected:
            self.ooo_arrivals += 1
            ctx.core.submit_call(
                "pkt_reorder_ooo", ctx.costs.reorder_per_pkt_ns * skb.segs, _noop
            )
        while expected in held:
            nxt = held.pop(expected)
            expected = expected + nxt.segs
            out.append(nxt)
        if len(held) >= self.stall_skbs:
            # loss recovery: jump to the oldest held packet
            expected = min(held)
        self._expected[flow] = expected
        return out


def _noop() -> None:
    return None
