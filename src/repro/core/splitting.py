"""Micro-flow splitting (paper §III-A, Fig. 6a/6b).

One stage implements both of the paper's splitting mechanisms — which
one is being modelled depends on where the policy places the node:

* inserted before ``skb_alloc`` it is the **IRQ-splitting function**:
  the first half of the pNIC softirq walks the driver's request queue
  and dispatches *raw packet requests* (no skb yet) to per-core request
  rings, so even skb allocation parallelizes;
* inserted anywhere later it is the **flow-splitting function**: a
  re-purposed ``netif_rx`` that enqueues skbs onto the chosen splitting
  core's per-device splitting queue.

Either way the logic is the same: consecutive runs of ``batch_size``
packets form a micro-flow; micro-flow *i* goes to branch ``i % n``
(even distribution, as the paper configures); the micro-flow ID is
stored in the skb for the reassembler.
"""

from __future__ import annotations

from typing import Dict, List

from repro.netstack.costs import CostModel
from repro.netstack.packet import FlowKey, Skb
from repro.netstack.stages import Stage, StageContext


#: sentinel key under which aggregate-mode packets are batched
GLOBAL_KEY = FlowKey(0, 0, "any", 0, 0)


class MicroflowSplitStage(Stage):
    """Assigns each packet a micro-flow ID and a branch (splitting core).

    ``per_flow=True`` (default) batches each flow's packets separately —
    the elephant-flow configuration of the micro-benchmarks.  With
    ``per_flow=False`` the *aggregate arrival stream* is batched under
    one global counter, which is what IRQ-splitting does for many-
    connection application workloads: the driver's request queue is
    divided without regard to flows, and the global in-order merge
    preserves every flow's internal order implicitly.
    """

    name = "mflow_split"
    droppable = True

    def __init__(self, batch_size: int, n_branches: int, per_flow: bool = True):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if n_branches < 1:
            raise ValueError(f"need at least one branch, got {n_branches}")
        self.batch_size = batch_size
        self.n_branches = n_branches
        self.per_flow = per_flow
        #: optional FaultInjectors providing the branch-blackout hook
        self.faults = None
        self._seen: Dict[FlowKey, int] = {}
        # actual segment count of each emitted micro-flow (a multi-segment
        # skb is never split across micro-flows, so sizes can exceed
        # batch_size slightly); the reassembler reads these to know when a
        # micro-flow has fully arrived
        self._mf_sizes: Dict[tuple, int] = {}

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.mflow_split_ns * skb.segs

    def _key(self, skb: Skb) -> FlowKey:
        return skb.flow if self.per_flow else GLOBAL_KEY

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        key = self._key(skb)
        seen = self._seen.get(key, 0)
        microflow = seen // self.batch_size
        skb.microflow_id = microflow
        skb.branch = microflow % self.n_branches
        skb.flow_serial = seen
        self._seen[key] = seen + skb.segs
        size_key = (key, microflow)
        new_microflow = self._mf_sizes.get(size_key) is None
        self._mf_sizes[size_key] = self._mf_sizes.get(size_key, 0) + skb.segs
        ctx.telemetry.count("mflow_split_packets", skb.segs)
        obs = ctx.pipeline.obs
        if obs is not None and new_microflow:
            # steering decision: a fresh micro-flow opens on `branch`
            obs.instant(
                "mflow_split",
                core=ctx.core.id,
                microflow=microflow,
                branch=skb.branch,
            )
        # Branch blackout happens *after* size accounting: the merge must
        # believe these segments exist so its liveness escapes engage —
        # exactly the failure mode a dead branch core produces.
        if self.faults is not None and self.faults.blackout_drop(skb):
            return []
        return [skb]

    # ------------------------------------------------- reassembler interface
    def microflow_size(self, key: FlowKey, microflow: int) -> int:
        """Segments dispatched so far under (key, microflow)."""
        return self._mf_sizes.get((key, microflow), 0)

    def microflow_closed(self, key: FlowKey, microflow: int) -> bool:
        """True once the splitter has moved past ``microflow`` (its size is
        final — no more packets will ever carry this ID)."""
        return self._seen.get(key, 0) // self.batch_size > microflow

    def forget_microflow(self, key: FlowKey, microflow: int) -> None:
        """Release bookkeeping for a fully merged micro-flow."""
        self._mf_sizes.pop((key, microflow), None)

    def retire_flow(self, flow: FlowKey) -> None:
        """Drop per-flow batching state (no-op in aggregate mode, where
        the counter is shared by every flow)."""
        if not self.per_flow:
            return
        self._seen.pop(flow, None)
        for size_key in [k for k in self._mf_sizes if k[0] == flow]:
            del self._mf_sizes[size_key]

    def microflows_emitted(self, flow: FlowKey) -> int:
        """How many micro-flows this flow (or the aggregate stream, in
        aggregate mode) has been divided into so far."""
        seen = self._seen.get(flow if self.per_flow else GLOBAL_KEY, 0)
        return (seen + self.batch_size - 1) // self.batch_size
