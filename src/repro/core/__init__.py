"""MFLOW — the paper's contribution.

Packet-level parallelism for a single flow: a :class:`MicroflowSplitStage`
divides the flow's packets into fixed-size batches (*micro-flows*) and
fans consecutive batches out to distinct *splitting cores*; downstream
stages between the split and merge points execute on the skb's assigned
branch core; a :class:`ReassemblyStage` restores arrival order with the
batch-based merging-counter algorithm of §III-B before the first
stateful stage (TCP) or user-space delivery (UDP).

:class:`MflowPolicy` packages both nodes plus the core placement rules
as a :class:`~repro.steering.base.SteeringPolicy`, with the two
configurations evaluated in the paper available as constructors:
:meth:`MflowConfig.full_path_tcp` (IRQ splitting, Fig. 5 right) and
:meth:`MflowConfig.device_scaling` (flow splitting before VxLAN, Fig. 5
left).
"""

from repro.core.config import BranchPlan, MflowConfig
from repro.core.splitting import MicroflowSplitStage
from repro.core.reassembly import ReassemblyStage, PerPacketReorderStage
from repro.core.mflow import MflowPolicy

__all__ = [
    "BranchPlan",
    "MflowConfig",
    "MicroflowSplitStage",
    "ReassemblyStage",
    "PerPacketReorderStage",
    "MflowPolicy",
]
