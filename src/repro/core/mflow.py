"""MFLOW as a steering policy.

Splices the split and merge nodes into the datapath and routes:

* pre-split stages (and the split itself) to the dispatch core;
* in-region stages to the skb's branch plan (sticky per micro-flow);
* the merge, post-merge kernel stages and delivery to the application
  core — the paper implements merging inside ``tcp_recvmsg`` /
  ``udp_recvmsg``, i.e. in the packet-delivery thread (§IV).

For multi-flow experiments, pass ``core_pool`` instead of a fixed
config: each flow deterministically draws its own dispatch core and
branch cores from the pool (even, hash-based distribution — the
balanced load of Fig. 12).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import BranchPlan, MflowConfig
from repro.core.reassembly import ReassemblyStage
from repro.core.splitting import MicroflowSplitStage
from repro.cpu.core import Core
from repro.cpu.topology import CpuSet
from repro.netstack.packet import FlowKey, Skb
from repro.netstack.stages import Stage
from repro.steering.base import PoolAllocator, SteeringPolicy


class MflowPolicy(SteeringPolicy):
    """The paper's packet-level parallelism, as a pluggable policy."""

    def __init__(
        self,
        cpus: CpuSet,
        config: MflowConfig,
        app_core: int = 0,
        core_pool: Optional[Sequence[int]] = None,
        telemetry=None,
        placement: str = "least-loaded",
    ):
        super().__init__(cpus, app_core)
        if placement not in ("least-loaded", "hash", "round-robin"):
            raise ValueError(f"unknown placement {placement!r}")
        self.config = config
        self.core_pool = list(core_pool) if core_pool is not None else None
        self.placement = placement
        self.split_stage = MicroflowSplitStage(
            config.batch_size, config.n_branches, per_flow=not config.aggregate
        )
        self.merge_stage = ReassemblyStage(
            config.n_branches,
            stall_skbs=config.merge_stall_skbs,
            timeout_ns=config.merge_timeout_ns,
            per_flow=not config.aggregate,
            splitter=self.split_stage,
        )
        self._pre_split: frozenset = frozenset()
        self._region: frozenset = frozenset()
        self._built = False
        self._flow_plans: Dict[FlowKey, tuple] = {}
        #: (core, weight) pairs claimed from the allocator per flow, so
        #: retire_flow can hand the load back
        self._flow_claims: Dict[FlowKey, List[tuple]] = {}
        #: flows degraded to single-core vanilla steering (see quarantine_flow)
        self._quarantined: set = set()
        self.faults = None
        self.health_monitor = None
        self._next_slot = 0
        self._allocator = PoolAllocator(self.core_pool) if self.core_pool else None
        #: pool-balancing weights: the dispatch half-softirq is light,
        #: each branch carries roughly half the flow's stage work
        self.dispatch_weight = 0.2
        self.branch_weight = 0.55

    # --------------------------------------------------------- pipeline build
    def build_pipeline_stages(self, stages: List[Stage]) -> List[Stage]:
        names = [s.name for s in stages]
        try:
            split_idx = names.index(self.config.split_before)
        except ValueError:
            raise ValueError(
                f"split point {self.config.split_before!r} not in datapath {names}"
            ) from None
        try:
            merge_idx = names.index(self.config.merge_before)
        except ValueError:
            raise ValueError(
                f"merge point {self.config.merge_before!r} not in datapath {names}"
            ) from None
        if merge_idx <= split_idx:
            raise ValueError(
                f"merge point {self.config.merge_before!r} must come after "
                f"split point {self.config.split_before!r}"
            )
        out = list(stages)
        out.insert(merge_idx, self.merge_stage)
        out.insert(split_idx, self.split_stage)
        self._pre_split = frozenset(names[:split_idx])
        self._region = frozenset(names[split_idx:merge_idx])
        self._built = True
        return out

    # ------------------------------------------------------------- core picks
    def kernel_core_for(self, stage_name: str, skb: Skb, from_core: Optional[Core]) -> Core:
        if not self._built:
            raise RuntimeError("MflowPolicy used before build_pipeline_stages()")
        dispatch_idx, branches, merge_idx, post_idx = self._plan_for_flow(skb.flow)
        if self._quarantined and skb.flow in self._quarantined:
            # degraded mode: the whole pre-merge path runs on the dispatch
            # core — single-core vanilla steering, serialized end to end
            if stage_name == self.merge_stage.name:
                return self.cpus[merge_idx]
            if (
                stage_name == self.split_stage.name
                or stage_name in self._pre_split
                or stage_name in self._region
            ):
                return self.cpus[dispatch_idx]
            return self.cpus[post_idx]
        if stage_name == self.split_stage.name or stage_name in self._pre_split:
            return self.cpus[dispatch_idx]
        if stage_name == self.merge_stage.name:
            return self.cpus[merge_idx]
        if stage_name in self._region:
            branch = skb.branch if skb.branch is not None else 0
            return self.cpus[branches[branch].core_for(stage_name)]
        # post-merge kernel stages (e.g. tcp_rcv) run in recvmsg context
        return self.cpus[post_idx]

    def _plan_for_flow(self, flow: FlowKey) -> tuple:
        cfg = self.config
        if self.core_pool is None:
            if cfg.aggregate:
                # one global merge point; post-merge protocol work still
                # runs on each flow's own application core
                return (
                    cfg.dispatch_core,
                    cfg.branches,
                    cfg.merge_core,
                    self.app_core_idx_for(flow),
                )
            if len(self.app_cores) > 1:
                # merging runs in the flow's recvmsg thread, i.e. on the
                # app core its application thread was placed on
                app_idx = self.app_core_idx_for(flow)
                return (cfg.dispatch_core, cfg.branches, app_idx, app_idx)
            return (cfg.dispatch_core, cfg.branches, cfg.merge_core, cfg.post_merge_core)
        plan = self._flow_plans.get(flow)
        if plan is None:
            if self.placement in ("hash", "round-robin"):
                from repro.steering.base import stable_flow_hash

                pool = self.core_pool
                if self.placement == "hash":
                    base = stable_flow_hash(flow) % len(pool)
                else:
                    base = self._next_slot
                    self._next_slot = (self._next_slot + 1 + cfg.n_branches) % len(pool)
                dispatch = pool[base]
                branches = [
                    BranchPlan(default_core=pool[(base + 1 + i) % len(pool)])
                    for i in range(cfg.n_branches)
                ]
            else:
                # least-loaded placement over the pool (see PoolAllocator)
                taken: set = set()
                dispatch = self._allocator.take(self.dispatch_weight, exclude=taken)
                taken.add(dispatch)
                claims = [(dispatch, self.dispatch_weight)]
                branches = []
                for _ in range(cfg.n_branches):
                    core = self._allocator.take(self.branch_weight, exclude=taken)
                    taken.add(core)
                    claims.append((core, self.branch_weight))
                    branches.append(BranchPlan(default_core=core))
                self._flow_claims[flow] = claims
            # in pool mode, merge + post-merge run in the flow's recvmsg
            # thread, i.e. on its application core
            app_idx = self.app_core_idx_for(flow)
            plan = (dispatch, branches, app_idx, app_idx)
            self._flow_plans[flow] = plan
        return plan

    def nic_queue_core_idx(self, flow: FlowKey) -> Optional[int]:
        if self.core_pool is None:
            return None
        return self._plan_for_flow(flow)[0]

    def branch_cores_for(self, flow: FlowKey) -> List[Core]:
        """Every core that executes in-region work for ``flow``."""
        _, branches, _, _ = self._plan_for_flow(flow)
        idxs = []
        for plan in branches:
            idxs.append(plan.default_core)
            idxs.extend(plan.stage_cores.values())
        return [self.cpus[i] for i in dict.fromkeys(idxs)]

    # --------------------------------------------------- lifecycle / health
    def retire_flow(self, flow: FlowKey, pipeline=None) -> bool:
        """Release everything held for ``flow``: its placement plan, the
        pool-allocator load it claimed, and split/merge per-flow state.
        With a ``pipeline``, skbs parked at the merge point are recycled
        back to the skb pool instead of stranded."""
        plan = self._flow_plans.pop(flow, None)
        for core, weight in self._flow_claims.pop(flow, ()):
            self._allocator.release(core, weight)
        self._quarantined.discard(flow)
        self.split_stage.retire_flow(flow)
        self.merge_stage.retire_flow(flow, pipeline=pipeline)
        return plan is not None

    def quarantine_flow(self, flow: FlowKey) -> bool:
        """Degrade ``flow`` to single-core vanilla steering (see
        :mod:`repro.faults.health`).  Returns False if already degraded.

        Only core *routing* changes: micro-flow IDs keep being assigned
        and merged, but every pre-merge hop runs on the dispatch core, so
        arrivals are serialized and the merge drains in order — the flow
        cannot stall on a branch that never delivers.
        """
        if flow in self._quarantined:
            return False
        self._quarantined.add(flow)
        return True

    def readmit_flow(self, flow: FlowKey) -> bool:
        """Restore split processing for a recovered flow."""
        if flow not in self._quarantined:
            return False
        self._quarantined.discard(flow)
        return True

    def is_quarantined(self, flow: FlowKey) -> bool:
        return flow in self._quarantined

    def attach_faults(self, injectors) -> None:
        """Wire fault injection into the split stage and start the
        per-flow health monitor (active plans only)."""
        self.faults = injectors
        self.split_stage.faults = injectors
        injectors.set_quarantine_check(self.is_quarantined)
        if injectors.active:
            from repro.faults.health import FlowHealthMonitor

            self.health_monitor = FlowHealthMonitor(
                self, injectors.sim, injectors.telemetry
            )
            self.health_monitor.arm()

    # ---------------------------------------------------------------- metrics
    @property
    def ooo_arrivals(self) -> int:
        """Out-of-order arrivals observed at the merge point (Fig. 7)."""
        return self.merge_stage.ooo_arrivals

    @property
    def ooo_packets(self) -> int:
        return self.merge_stage.ooo_packets

    @property
    def name(self) -> str:
        return "mflow"
