"""MFLOW configuration: split/merge placement and branch core plans."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class BranchPlan:
    """Core placement for one parallel branch (one micro-flow lane).

    ``default_core`` executes every in-region stage unless overridden in
    ``stage_cores`` — the override is how the paper's TCP configuration
    pipelines each branch over *two* cores (skb alloc on one, the rest on
    another; §V-A "we further split and pipelined the processings on two
    cores for each parallel branch").
    """

    default_core: int
    stage_cores: Dict[str, int] = field(default_factory=dict)

    def core_for(self, stage_name: str) -> int:
        return self.stage_cores.get(stage_name, self.default_core)


@dataclass
class MflowConfig:
    """Where to split, where to merge, and which cores form the branches."""

    split_before: str
    merge_before: str
    branches: List[BranchPlan]
    batch_size: int = 256
    dispatch_core: int = 1
    merge_core: int = 0
    post_merge_core: int = 0
    #: advance the merging counter if the expected branch queue is empty
    #: while this many skbs are parked in other queues (lost-micro-flow
    #: recovery under UDP drops)
    merge_stall_skbs: int = 0  # 0 -> auto: 4 * batch_size * n_branches
    #: advance after this much time with no merge progress (ns)
    merge_timeout_ns: float = 200_000.0
    #: batch the aggregate arrival stream instead of each flow separately
    #: (IRQ-splitting for many-connection application workloads; the
    #: global in-order merge preserves per-flow order implicitly)
    aggregate: bool = False

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if not self.branches:
            raise ValueError("MFLOW needs at least one branch")
        if self.split_before == self.merge_before:
            raise ValueError("split and merge points must differ")
        if self.merge_stall_skbs == 0:
            self.merge_stall_skbs = 4 * self.batch_size * len(self.branches)

    @property
    def n_branches(self) -> int:
        return len(self.branches)

    # ------------------------------------------------- paper configurations
    @classmethod
    def full_path_tcp(
        cls,
        alloc_cores: List[int] = (2, 3),
        rest_cores: List[int] = (4, 5),
        batch_size: int = 256,
        dispatch_core: int = 1,
    ) -> "MflowConfig":
        """Fig. 8b TCP: IRQ splitting + per-branch two-core pipelining.

        Splitting happens at the earliest software point (before skb
        allocation, via the IRQ-splitting function) and merging right
        before the stateful TCP layer; each branch allocates skbs on one
        core and runs the remaining stateless stages on another.
        """
        if len(alloc_cores) != len(rest_cores):
            raise ValueError("need one rest core per alloc core")
        branches = [
            BranchPlan(default_core=rest, stage_cores={"skb_alloc": alloc})
            for alloc, rest in zip(alloc_cores, rest_cores)
        ]
        return cls(
            split_before="skb_alloc",
            merge_before="tcp_rcv",
            branches=branches,
            batch_size=batch_size,
            dispatch_core=dispatch_core,
        )

    @classmethod
    def device_scaling(
        cls,
        split_cores: List[int] = (2, 3),
        batch_size: int = 256,
        dispatch_core: int = 1,
        heavy_device: str = "vxlan",
        merge_before: str = "udp_deliver",
    ) -> "MflowConfig":
        """Fig. 8b UDP: flow splitting before the heavyweight device.

        The flow-splitting function fans micro-flows out just before
        VxLAN; every device after VxLAN stays on the same splitting core
        (good locality, §III-B late merging) and micro-flows merge only
        in ``udp_recvmsg`` before the copy to user space.
        """
        branches = [BranchPlan(default_core=c) for c in split_cores]
        return cls(
            split_before=heavy_device,
            merge_before=merge_before,
            branches=branches,
            batch_size=batch_size,
            dispatch_core=dispatch_core,
        )
