"""Request/response plumbing for the application benchmarks.

Builds on :class:`~repro.workloads.scenario.Scenario`: client machines
open TCP connections (flows) to a server container behind the simulated
receive pipeline; requests traverse the full pipeline; the server's
handler runs as work on the server's application core; responses travel
back over the wire with their own (uncongested) client-side constant.

This captures what the paper's application experiments measure — how
the *server host's* packet-processing path, under a given steering
policy, shapes request latency and throughput — while the client side
and intra-tier hops are modelled as calibrated constants (see DESIGN.md
fidelity notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.netstack.packet import FlowKey, Packet
from repro.sim.units import MSEC
from repro.workloads.scenario import Scenario

#: fixed client-side response handling (uncongested client machine) plus
#: response wire time; the interesting contention is all server-side
CLIENT_RESPONSE_OVERHEAD_NS = 15_000.0


@dataclass
class RpcStats:
    """Completed-call accounting for one connection."""

    completed: int = 0
    total_latency_ns: float = 0.0


class RpcConnection:
    """One closed-loop client connection issuing request/response calls."""

    def __init__(
        self,
        engine: "RpcEngine",
        conn_id: int,
        request_size: int,
        think_time_ns: float = 0.0,
    ):
        self.engine = engine
        self.conn_id = conn_id
        self.request_size = request_size
        self.think_time_ns = think_time_ns
        self.flow = engine.scenario.make_client_flow(conn_id)
        self.sender = engine.scenario.add_tcp_sender(
            request_size, flow=self.flow, continuous=False
        )
        self.stats = RpcStats()
        self._inflight_since: Optional[float] = None
        self._stopped = False

    def start(self) -> None:
        self.engine.sim.call_soon(self._issue)

    def stop(self) -> None:
        self._stopped = True

    def _issue(self) -> None:
        if self._stopped:
            return
        self._inflight_since = self.engine.sim.now
        self.sender.send_message(self.request_size)

    def on_response(self) -> None:
        now = self.engine.sim.now
        if self._inflight_since is not None:
            latency = now - self._inflight_since
            self.stats.completed += 1
            self.stats.total_latency_ns += latency
            self.engine.telemetry.observe("rpc_latency_ns", latency)
            self.engine.telemetry.count("rpc_completed")
        self._inflight_since = None
        if self.think_time_ns > 0:
            self.engine.sim.call_in(self.think_time_ns, self._issue)
        else:
            self.engine.sim.call_soon(self._issue)


class RpcEngine:
    """Wires connections to the server handler through the scenario."""

    def __init__(
        self,
        scenario: Scenario,
        server_handler: Optional[Callable[["RpcEngine", FlowKey], None]] = None,
        server_think_ns: float = 3_000.0,
        response_size: int = 550,
    ):
        if scenario.proto != "tcp":
            raise ValueError("RPC workloads run over TCP scenarios")
        self.scenario = scenario
        self.sim = scenario.sim
        self.telemetry = scenario.telemetry
        self.costs = scenario.costs
        self.server_think_ns = server_think_ns
        self.response_size = response_size
        self.connections: Dict[FlowKey, RpcConnection] = {}
        self._handler = server_handler or self._default_handler
        scenario.tcp_deliver.set_message_callback(self._on_request_delivered)

    # ---------------------------------------------------------- connections
    def add_connection(
        self, request_size: int, think_time_ns: float = 0.0
    ) -> RpcConnection:
        conn = RpcConnection(self, len(self.connections), request_size, think_time_ns)
        self.connections[conn.flow] = conn
        return conn

    def start(self) -> None:
        for conn in self.connections.values():
            conn.start()

    # ------------------------------------------------------------- server
    def _on_request_delivered(self, flow: FlowKey, pkt: Packet) -> None:
        conn = self.connections.get(flow)
        if conn is None:
            return
        for _ in range(max(1, pkt.messages_completed)):
            self._handler(self, flow)

    def _default_handler(self, engine: "RpcEngine", flow: FlowKey) -> None:
        """Think on the server app core, then send the response back."""
        app_core = self.scenario.cpus[self.scenario.policy.app_core_idx_for(flow)]
        app_core.submit_call("server_think", self.server_think_ns, self._respond, flow)

    def _respond(self, flow: FlowKey) -> None:
        conn = self.connections.get(flow)
        if conn is None:
            return
        app_core = self.scenario.cpus[self.scenario.policy.app_core_idx_for(flow)]
        send_cost = (
            self.costs.send_syscall_ns
            + self.costs.send_per_seg_tcp_ns
            * max(1, (self.response_size + 1447) // 1448)
        )
        app_core.submit_call("server_send", send_cost, self._deliver_response, flow)

    def _deliver_response(self, flow: FlowKey) -> None:
        conn = self.connections[flow]
        delay = (
            self.costs.wire_delay_ns
            + CLIENT_RESPONSE_OVERHEAD_NS
            + self.response_size * 8.0 / self.costs.link_gbps
        )
        self.sim.call_in(delay, conn.on_response)

    # ------------------------------------------------------------- results
    def run(self, warmup_ns: float = 2 * MSEC, measure_ns: float = 20 * MSEC):
        self.start()
        self.sim.run(until_ns=warmup_ns)
        self.telemetry.start_window()
        self.scenario.cpus.start_window()
        self.sim.run(until_ns=warmup_ns + measure_ns)
        return self.scenario._collect(measure_ns)
