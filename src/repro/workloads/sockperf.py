"""sockperf-style micro-benchmarks (paper §V-A).

Provides the five evaluated systems as named scenario builders with the
paper's exact configurations:

* ``native``     — physical host path, all kernel work on one core;
* ``vanilla``    — Docker overlay (VxLAN), all kernel work on one core;
* ``rps``        — overlay + Linux RPS (veth-onward steered to core 2);
* ``falcon``     — overlay + FALCON (device-level for UDP, function-level
  for TCP — each protocol's best mode, as in Fig. 8a);
* ``mflow``      — overlay + MFLOW (full-path scaling for TCP with batch
  256 and two split branches pipelined over two cores each; device
  scaling for UDP with two splitting cores — §V "Experimental
  configurations").

UDP runs three clients against one server, TCP one client, matching the
paper's setup.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import MflowConfig
from repro.core.mflow import MflowPolicy
from repro.cpu.topology import CpuSet
from repro.netstack.costs import CostModel
from repro.overlay.topology import DatapathKind
from repro.sim.units import MSEC
from repro.steering.base import SteeringPolicy
from repro.steering.falcon import FalconDevPolicy, FalconFunPolicy
from repro.steering.rps import RpsPolicy
from repro.steering.rss import RssPolicy
from repro.steering.vanilla import VanillaPolicy
from repro.workloads.scenario import Scenario, ScenarioResult

#: the systems compared throughout the paper's evaluation, in figure order
SYSTEMS = ("native", "vanilla", "rps", "falcon", "mflow")

#: extended set including FALCON's two modes separately (Fig. 4 uses both)
#: plus hardware RSS (inter-flow hashing only — the chaos matrix baseline
#: that benefits from multiple UDP clients but not from intra-flow splits)
ALL_SYSTEMS = (
    "native", "vanilla", "rps", "rss", "falcon-dev", "falcon-fun", "falcon", "mflow"
)

#: clients per protocol (paper: one TCP client; three UDP clients because
#: a single UDP client core saturates before the receiver does)
CLIENTS = {"tcp": 1, "udp": 3}


def policy_factory(
    system: str, proto: str, batch_size: int = 256, n_split_cores: int = 2
) -> Callable[[CpuSet], SteeringPolicy]:
    """The steering policy constructor for one of the evaluated systems."""
    if system not in ALL_SYSTEMS:
        raise ValueError(f"unknown system {system!r}; expected one of {ALL_SYSTEMS}")

    def build(cpus: CpuSet) -> SteeringPolicy:
        if system in ("native", "vanilla"):
            return VanillaPolicy(cpus, app_core=0, role_cores={"first": 1})
        if system == "rps":
            return RpsPolicy(cpus, app_core=0, role_cores={"first": 1, "steer": 2})
        if system == "rss":
            # hardware hashing over three kernel cores; a single flow still
            # lands whole on one of them
            return RssPolicy(cpus, app_core=0, core_pool=[1, 2, 3], placement="hash")
        if system == "falcon-dev":
            return FalconDevPolicy(
                cpus, app_core=0, role_cores={"first": 1, "vxlan": 2, "rest": 3}
            )
        if system == "falcon-fun":
            return FalconFunPolicy(
                cpus, app_core=0, role_cores={"first": 1, "mid": 2, "rest": 3}
            )
        if system == "falcon":
            if proto == "tcp":
                # function-level is FALCON's best TCP mode (paper §II-B)
                return FalconFunPolicy(
                    cpus, app_core=0, role_cores={"first": 1, "mid": 2, "rest": 3}
                )
            return FalconDevPolicy(
                cpus, app_core=0, role_cores={"first": 1, "vxlan": 2, "rest": 3}
            )
        # MFLOW
        if proto == "tcp":
            config = MflowConfig.full_path_tcp(
                alloc_cores=list(range(2, 2 + n_split_cores)),
                rest_cores=list(range(2 + n_split_cores, 2 + 2 * n_split_cores)),
                batch_size=batch_size,
            )
        else:
            config = MflowConfig.device_scaling(
                split_cores=list(range(2, 2 + n_split_cores)),
                batch_size=batch_size,
            )
        return MflowPolicy(cpus, config, app_core=0)

    return build


def datapath_for(system: str) -> DatapathKind:
    return DatapathKind.NATIVE if system == "native" else DatapathKind.OVERLAY


def build_scenario(
    system: str,
    proto: str,
    message_size: int,
    costs: Optional[CostModel] = None,
    seed: int = 0,
    batch_size: int = 256,
    n_split_cores: int = 2,
    n_receiver_cores: int = 8,
    interval_ns: Optional[float] = None,
    faults=None,
    obs=None,
    selfprof=None,
    migration=None,
    hist=True,
) -> Scenario:
    """Assemble the single-flow scenario for one (system, proto, size)."""
    sc = Scenario(
        datapath_for(system),
        proto,
        policy_factory(system, proto, batch_size, n_split_cores),
        costs=costs,
        seed=seed,
        n_receiver_cores=n_receiver_cores,
        # real RSS spreads RX queues across its core pool
        rss_core_indices=[1, 2, 3] if system == "rss" else None,
        faults=faults,
        obs=obs,
        selfprof=selfprof,
        migration=migration,
        hist=hist,
    )
    for _ in range(CLIENTS[proto]):
        if proto == "tcp":
            sc.add_tcp_sender(message_size, interval_ns=interval_ns)
        else:
            sc.add_udp_sender(message_size, interval_ns=interval_ns)
    return sc


def run_single_flow(
    system: str,
    proto: str,
    message_size: int,
    costs: Optional[CostModel] = None,
    seed: int = 0,
    warmup_ns: float = 2 * MSEC,
    measure_ns: float = 10 * MSEC,
    batch_size: int = 256,
    n_split_cores: int = 2,
    interval_ns: Optional[float] = None,
    faults=None,
    obs=None,
    selfprof=None,
    migration=None,
    hist=True,
) -> ScenarioResult:
    """Run one cell of Fig. 4a / Fig. 8a / Fig. 9."""
    sc = build_scenario(
        system,
        proto,
        message_size,
        costs=costs,
        seed=seed,
        batch_size=batch_size,
        n_split_cores=n_split_cores,
        interval_ns=interval_ns,
        faults=faults,
        obs=obs,
        selfprof=selfprof,
        migration=migration,
        hist=hist,
    )
    return sc.run(warmup_ns=warmup_ns, measure_ns=measure_ns)


def run_matrix(
    systems: List[str],
    proto: str,
    message_sizes: List[int],
    **kwargs,
) -> Dict[str, Dict[int, ScenarioResult]]:
    """Run a systems × message-sizes grid (one paper sub-figure)."""
    out: Dict[str, Dict[int, ScenarioResult]] = {}
    for system in systems:
        out[system] = {}
        for size in message_sizes:
            out[system][size] = run_single_flow(system, proto, size, **kwargs)
    return out
