"""Workload generators and experiment scenarios.

* :mod:`repro.workloads.scenario` — assembles a complete simulated
  testbed (receiver host, client machines, wire, steering policy) and
  runs warmup + measurement windows;
* :mod:`repro.workloads.sockperf` — sockperf-style single/multi-flow
  throughput and latency drivers (the micro-benchmarks of §V-A);
* :mod:`repro.workloads.webserving` — the CloudSuite Web Serving model
  (Fig. 11);
* :mod:`repro.workloads.memcached` — the CloudSuite Data Caching model
  (Fig. 13).
"""

from repro.workloads.scenario import Scenario, ScenarioResult, make_flow

__all__ = ["Scenario", "ScenarioResult", "make_flow"]
