"""Testbed assembly: one detailed receiver host plus client machines.

Mirrors the paper's two-server setup: the receive side (where all the
contention the paper studies happens) is simulated in full stage-level
detail; each client machine contributes CPU-limited senders on its own
cores, connected by a 100 Gbps wire.

Typical use::

    sc = Scenario(DatapathKind.OVERLAY, "tcp",
                  lambda cpus: VanillaPolicy(cpus, app_core=0,
                                             role_cores={"first": 1}))
    sc.add_tcp_sender(message_size=64 * 1024)
    res = sc.run()
    print(res.throughput_gbps)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.cpu.topology import CpuSet
from repro.faults.injectors import FaultInjectors
from repro.faults.plan import FaultPlanLike, resolve_fault_plan
from repro.faults.watchdog import ConservationWatchdog
from repro.metrics.summary import LatencySummary, summarize_latencies
from repro.metrics.telemetry import Telemetry
from repro.migration.controller import MigrationController
from repro.migration.plan import MigrationPlan, MigrationPlanLike, resolve_migration_plan
from repro.netstack.costs import DEFAULT_COSTS, CostModel
from repro.obs import (
    FlightRecorder,
    IntervalMetrics,
    JourneyTracker,
    ObsConfig,
    decompose,
    resolve_obs,
)
from repro.obs.config import ObsConfigLike
from repro.obs.hist import HistConfig, HistConfigLike, StageHistograms, resolve_hist
from repro.perf.selfprof import SelfProfiler, resolve_selfprof
from repro.netstack.nic import Nic, Wire
from repro.netstack.packet import FlowKey
from repro.netstack.pipeline import Pipeline, link_nodes
from repro.netstack.protocol.tcp import TcpDeliverStage, TcpReceiverStage, TcpSender
from repro.netstack.protocol.udp import UdpDeliverStage, UdpSender
from repro.overlay.balancer import ConsistentHashBalancerStage, HashRing
from repro.overlay.namespace import OverlayNetwork
from repro.overlay.topology import DatapathKind, build_datapath_stages
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.units import MSEC
from repro.steering.base import SteeringPolicy


def make_flow(proto: str, client_id: int = 0, dport: int = 5001) -> FlowKey:
    """A canonical flow from client machine ``client_id`` to the server."""
    return FlowKey(src=100 + client_id, dst=1, proto=proto, sport=40000 + client_id, dport=dport)


@dataclass
class ScenarioResult:
    """Everything the paper's figures read off one run."""

    throughput_gbps: float
    messages_delivered: int
    latency: LatencySummary
    cpu_utilization: List[float]
    cpu_breakdown: List[Dict[str, float]]
    counters: Dict[str, int] = field(default_factory=dict)
    drops: Dict[str, int] = field(default_factory=dict)
    ooo_arrivals: int = 0
    window_ns: float = 0.0
    events_executed: int = 0
    #: fault-injection ledger (empty when the run had no active plan)
    fault_plan: str = ""
    fault_counters: Dict[str, int] = field(default_factory=dict)
    degradation_events: List[Dict] = field(default_factory=list)
    conservation_checks: int = 0
    conservation_violations: int = 0
    #: flight-recorder payload (None unless the run was instrumented):
    #: recorder stats, latency decomposition, and interval time series
    obs: Optional[Dict] = None
    #: simulator self-profile (None unless the run had ``selfprof`` on):
    #: wall-clock cost centers, heap traffic, events/sec — see repro.perf
    selfprof: Optional[Dict] = None
    #: live-migration ledger (None unless the run had an active plan):
    #: cutover timeline, blackout, buffered/dropped/replayed packets,
    #: per-flow recovery times, connection drops — see repro.migration
    migration: Optional[Dict] = None
    #: per-flow quarantine/readmission tallies from the health monitor
    #: (empty unless an MFLOW run had an active fault plan)
    health_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: exact per-(stage, core, flow-class) latency histograms — always on
    #: by default (None only when the run was built with ``hist=False``);
    #: see repro.obs.hist for the payload layout and merge algebra
    hist: Optional[Dict] = None

    def __str__(self) -> str:  # pragma: no cover - convenience printer
        return (
            f"throughput={self.throughput_gbps:.2f} Gbps "
            f"msgs={self.messages_delivered} lat[{self.latency}]"
        )


class Scenario:
    """A complete single-receiver testbed under one steering policy."""

    def __init__(
        self,
        kind: DatapathKind,
        proto: str,
        policy_factory: Callable[[CpuSet], SteeringPolicy],
        costs: Optional[CostModel] = None,
        seed: int = 0,
        n_receiver_cores: int = 8,
        irq_core: int = 1,
        rss_core_indices: Optional[List[int]] = None,
        faults: FaultPlanLike = None,
        obs: ObsConfigLike = None,
        selfprof: Union[None, bool, SelfProfiler] = None,
        migration: MigrationPlanLike = None,
        hist: HistConfigLike = True,
    ):
        if proto not in ("tcp", "udp"):
            raise ValueError(f"proto must be 'tcp' or 'udp', got {proto!r}")
        self.kind = kind
        self.proto = proto
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.costs.validate()
        self.sim = Simulator()
        self.rngs = RngStreams(seed)
        self.telemetry = Telemetry(self.sim)
        # An inert plan resolves to None: the zero-fault path builds the
        # exact same object graph and event schedule as no plan at all.
        self.fault_plan = resolve_fault_plan(faults)
        self.faults: Optional[FaultInjectors] = None
        self.watchdog: Optional[ConservationWatchdog] = None
        if self.fault_plan is not None:
            self.faults = FaultInjectors(
                self.fault_plan, self.sim, self.rngs, self.telemetry
            )
        self.cpus = CpuSet(
            self.sim,
            n_receiver_cores,
            jitter_sigma=self.costs.core_jitter_sigma,
            rngs=self.rngs,
        )
        self.policy = policy_factory(self.cpus)

        # Migration resolves like fault plans: an inert plan is None, and
        # the no-migration path builds the exact same stage list, object
        # graph and event schedule as a run that never heard of migration
        # (golden-seed runs stay byte-identical).
        self.migration_plan: Optional[MigrationPlan] = resolve_migration_plan(migration)
        self.network: Optional[OverlayNetwork] = None
        self.balancer: Optional[ConsistentHashBalancerStage] = None
        self.migration: Optional[MigrationController] = None
        if self.migration_plan is not None:
            if kind is not DatapathKind.OVERLAY:
                raise ValueError("live migration requires the overlay datapath")
            plan = self.migration_plan
            self.network = OverlayNetwork()
            self.network.attach(plan.source)
            # the destination namespace is dormant until the restore
            self.network.attach(plan.dest, state="frozen")
            ring = HashRing(vnodes=plan.vnodes)
            ring.add(plan.source)
            self.balancer = ConsistentHashBalancerStage(
                ring, buffer_packets=plan.buffer_packets
            )

        self.tcp_receiver: Optional[TcpReceiverStage] = None
        self.tcp_deliver: Optional[TcpDeliverStage] = None
        self.udp_deliver: Optional[UdpDeliverStage] = None
        if proto == "tcp":
            self.tcp_receiver = TcpReceiverStage(self._route_ack)
            self.tcp_deliver = TcpDeliverStage()
        else:
            self.udp_deliver = UdpDeliverStage()
        stages = build_datapath_stages(
            kind,
            proto,
            tcp_receiver=self.tcp_receiver,
            udp_deliver=self.udp_deliver,
            tcp_deliver=self.tcp_deliver,
            balancer=self.balancer,
        )
        stages = self.policy.build_pipeline_stages(stages)
        self.pipeline = Pipeline(self.sim, self.costs, self.policy, self.telemetry)
        self.pipeline.set_head(link_nodes(stages))
        rss_cores = (
            [self.cpus[i] for i in rss_core_indices] if rss_core_indices else None
        )
        self.nic = Nic(
            self.sim,
            self.costs,
            self.cpus[irq_core],
            self.pipeline,
            self.telemetry,
            rss_cores=rss_cores,
        )
        self.wire = Wire(self.sim, self.costs, self.nic, faults=self.faults)
        if self.migration_plan is not None:
            self.migration = MigrationController(self, self.migration_plan)
        # Observability: resolve like fault plans — a disabled config is
        # inert (None) and the run builds the exact same event schedule
        # and consumes the same randomness as an uninstrumented one.
        self.obs_config: Optional[ObsConfig] = resolve_obs(obs)
        # Self-profiling mirrors the same discipline: None builds the
        # identical object graph, and even when attached the profiler
        # only *reads* wall clocks — simulated results never change.
        self.selfprof: Optional[SelfProfiler] = resolve_selfprof(selfprof)
        if self.selfprof is not None:
            self.sim.profiler = self.selfprof
        self.recorder: Optional[FlightRecorder] = None
        self.journeys: Optional[JourneyTracker] = None
        self.intervals: Optional[IntervalMetrics] = None
        if self.obs_config is not None:
            self._attach_obs(self.obs_config)
        # Exact stage histograms are *always on* (hist=False opts out).
        # Recording draws no randomness and schedules no events, so the
        # simulated timeline — and every other measurement — is identical
        # with histograms on or off.
        self.hist_config: Optional[HistConfig] = resolve_hist(hist)
        self.hist: Optional[StageHistograms] = None
        if self.hist_config is not None:
            self._attach_hist(self.hist_config)
        if self.faults is not None:
            self.nic.faults = self.faults
            self.faults.apply_to_nic(self.nic)
            self.policy.attach_faults(self.faults)
            self.watchdog = ConservationWatchdog(
                self.sim,
                self.telemetry,
                proto,
                self.wire.sent_packet_count,
                period_ns=self.fault_plan.watchdog_period_ns,
            )

        self._senders: Dict[FlowKey, object] = {}
        self._client_count = 0
        # run-phase state machine ("init" -> "warmup" -> "measure" -> "done"),
        # carried inside checkpoints so a restored run knows where to resume
        self._run_phase = "init"
        self._warmup_ns = 0.0
        self._measure_ns = 0.0
        self._ckpt_slot = None

    # ------------------------------------------------------------- obs wiring
    def _attach_obs(self, cfg: ObsConfig) -> None:
        """Hand the flight recorder to every receiver-side producer.

        Client-machine cores are deliberately *not* instrumented: their
        core ids would collide with receiver tracks in the trace, and all
        the contention the paper studies is on the receive side.
        """
        self.recorder = FlightRecorder(capacity=cfg.capacity, seed=cfg.seed)
        self.recorder.bind_clock(self.sim)
        for core in self.cpus:
            core.obs = self.recorder
        self.journeys = JourneyTracker(
            max_journeys=cfg.max_journeys, start_ns=cfg.journey_start_ns
        )
        self.pipeline.obs = self.recorder
        self.pipeline.journeys = self.journeys
        self.nic.obs = self.recorder
        for queue in self.nic._queues:
            queue.napi.obs = self.recorder
        if self.faults is not None:
            self.faults.obs = self.recorder
        monitor = getattr(self.policy, "health_monitor", None)
        if monitor is not None:
            monitor.obs = self.recorder

    # ------------------------------------------------------------ hist wiring
    def _attach_hist(self, cfg: HistConfig) -> None:
        """Arm the exact stage histograms on the receive side.

        Like the flight recorder, only receiver cores are instrumented:
        the contention the paper studies is all on the receive side, and
        client-machine core ids would collide with receiver series.
        """
        hist = StageHistograms(cfg)
        hist.stage_names = frozenset(self.pipeline.stage_names())
        self.pipeline.hist = hist
        for core in self.cpus:
            core.hist = hist
        self.hist = hist

    # ------------------------------------------------------------- clients
    def make_client_flow(self, client_id: int, dport: int = 5001) -> FlowKey:
        """A fresh flow key for one client connection."""
        return make_flow(self.proto, client_id, dport=dport)

    def _new_client_cores(self) -> CpuSet:
        """Each client machine contributes an (app, kernel) core pair."""
        return CpuSet(
            self.sim, 2, jitter_sigma=self.costs.core_jitter_sigma, rngs=self.rngs
        )

    def add_tcp_sender(
        self,
        message_size: int,
        flow: Optional[FlowKey] = None,
        window_bytes: Optional[int] = None,
        continuous: bool = True,
        interval_ns: Optional[float] = None,
    ) -> TcpSender:
        if self.proto != "tcp":
            raise RuntimeError("scenario is not a TCP scenario")
        if flow is None:
            flow = make_flow("tcp", self._client_count)
        client = self._new_client_cores()
        # migration runs arm a retransmission timeout so blackout drops
        # (and lossy fault plans riding along) recover instead of
        # deadlocking the window; plain runs keep the stock lossless model
        rto_ns = None
        if self.migration_plan is not None and self.migration_plan.retransmit_ns > 0.0:
            rto_ns = self.migration_plan.retransmit_ns
        sender = TcpSender(
            self.sim,
            self.costs,
            flow,
            message_size,
            self.wire,
            app_core=client[0],
            kernel_core=client[1],
            telemetry=self.telemetry,
            encap=(self.kind is DatapathKind.OVERLAY),
            window_bytes=window_bytes,
            continuous=continuous,
            interval_ns=interval_ns,
            rto_ns=rto_ns,
        )
        self._senders[flow] = sender
        self._client_count += 1
        return sender

    def add_udp_sender(
        self,
        message_size: int,
        flow: Optional[FlowKey] = None,
        interval_ns: Optional[float] = None,
    ) -> UdpSender:
        if self.proto != "udp":
            raise RuntimeError("scenario is not a UDP scenario")
        if flow is None:
            flow = make_flow("udp", self._client_count)
        client = self._new_client_cores()
        sender = UdpSender(
            self.sim,
            self.costs,
            flow,
            message_size,
            self.wire,
            app_core=client[0],
            kernel_core=client[1],
            telemetry=self.telemetry,
            encap=(self.kind is DatapathKind.OVERLAY),
            interval_ns=interval_ns,
        )
        self._senders[flow] = sender
        self._client_count += 1
        return sender

    def _route_ack(self, flow: FlowKey, ack_seq: int) -> None:
        sender = self._senders.get(flow)
        if sender is not None:
            self.sim.call_in(self.costs.wire_delay_ns, sender.on_ack, flow, ack_seq)

    # ------------------------------------------------------------- teardown
    def retire_flow(self, flow: FlowKey) -> None:
        """Tear down one flow mid-run, releasing every pooled resource.

        Retiring a flow (or the container namespace serving it) must not
        strand pooled skbs: GRO held skbs, the TCP OOO queue, and any
        skbs parked in the steering policy's merge queues all return to
        the pipeline's free list here.
        """
        gro = self.pipeline.find_node("gro").stage
        gro.release_flow(flow, self.pipeline)
        if self.tcp_receiver is not None:
            self.tcp_receiver.release_flow(flow, self.pipeline)
        if self.udp_deliver is not None:
            self.udp_deliver.detach_flow(flow)  # index sets only, no skbs
        self.policy.retire_flow(flow, pipeline=self.pipeline)
        self._senders.pop(flow, None)

    # ----------------------------------------------------------------- run
    def run(
        self,
        warmup_ns: float = 2 * MSEC,
        measure_ns: float = 10 * MSEC,
    ) -> ScenarioResult:
        """Start all senders, warm up, measure, and summarize.

        When a :mod:`repro.resilience` checkpoint scope is active (the
        engine arms one around every worker), the run periodically
        snapshots itself and — if a usable snapshot from an interrupted
        earlier attempt exists — resumes from it instead of starting
        over, with bit-identical results either way.  Without a scope
        this claims nothing and runs the historical path untouched.
        """
        from repro.resilience.checkpoint import claim_slot, current_context

        slot = claim_slot()
        if slot is not None:
            restored = slot.try_restore()
            if isinstance(restored, Scenario) and restored._run_phase != "init":
                ctx = current_context()
                if ctx is not None:
                    ctx.note_restore()
                return restored._finish_run()
            ckpt = slot.checkpointer_for(self)
            if ckpt is not None:
                self.sim.checkpoint_every(ckpt)
            self._ckpt_slot = slot
        self._begin_run(warmup_ns, measure_ns)
        return self._finish_run()

    def _begin_run(self, warmup_ns: float, measure_ns: float) -> None:
        """Arm faults/watchdog/journeys and launch the senders."""
        if not self._senders:
            raise RuntimeError("no senders configured")
        if self.faults is not None:
            self.faults.stall_horizon_ns = warmup_ns + measure_ns
            self.faults.schedule_core_stalls(self.cpus)
        if self.watchdog is not None:
            self.watchdog.arm()
        if self.journeys is not None and self.obs_config.journey_start_ns == 0.0:
            # default journey horizon: sample steady state, not warmup
            self.journeys.start_ns = warmup_ns
        if self.migration is not None:
            self.migration.arm()
        for i, sender in enumerate(self._senders.values()):
            # small stagger so clients do not start in lockstep
            self.sim.call_in(i * 1_000.0, sender.start)
        self._warmup_ns = warmup_ns
        self._measure_ns = measure_ns
        self._run_phase = "warmup"

    def _begin_measure_window(self) -> None:
        """Warmup over: open the measurement window."""
        self.telemetry.start_window()
        self.cpus.start_window()
        if self.obs_config is not None:
            # interval metrics cover exactly the measurement window
            self.intervals = IntervalMetrics(
                self.sim,
                self.telemetry,
                self.cpus,
                pipeline=self.pipeline,
                nic=self.nic,
                merge_stage=getattr(self.policy, "merge_stage", None),
                proto=self.proto,
                interval_ns=self.obs_config.interval_ns,
            )
            self.intervals.arm()
        self._run_phase = "measure"

    def _finish_run(self) -> ScenarioResult:
        """Drive the remaining phases (idempotent after a restore)."""
        if self._run_phase == "warmup":
            self.sim.run(until_ns=self._warmup_ns)
            self._begin_measure_window()
        if self._run_phase == "measure":
            self.sim.run(until_ns=self._warmup_ns + self._measure_ns)
            self._run_phase = "done"
        slot = self._ckpt_slot
        if slot is not None:
            self._ckpt_slot = None
            self.sim.checkpoint_every(None)
            slot.complete()
        return self._collect(self._measure_ns)

    def _collect(self, window_ns: float) -> ScenarioResult:
        bytes_counter = f"{self.proto}_delivered_bytes"
        latency_samples = self.telemetry.sample_list(f"{self.proto}_msg_latency_ns")
        ooo = 0
        if hasattr(self.policy, "ooo_arrivals"):
            ooo = self.policy.ooo_arrivals
        checks = violations = 0
        if self.watchdog is not None:
            self.watchdog.check_now()  # final invariant check at run end
            checks = self.watchdog.checks
            violations = len(self.watchdog.violations)
        monitor = getattr(self.policy, "health_monitor", None)
        obs_payload = None
        if self.recorder is not None:
            obs_payload = {
                "config": self.obs_config.to_dict(),
                "events_seen": self.recorder.events_seen,
                "events_kept": self.recorder.events_kept,
                "events_dropped": self.recorder.events_dropped,
                "decomposition": decompose(self.journeys).to_dict(),
                "timeseries": self.intervals.to_dict() if self.intervals else None,
            }
        selfprof_payload = None
        if self.selfprof is not None:
            self.selfprof.queue_stats = [q.ring.stats() for q in self.nic._queues]
            selfprof_payload = self.selfprof.summary()
        return ScenarioResult(
            throughput_gbps=self.telemetry.window_rate_gbps(bytes_counter),
            messages_delivered=self.telemetry.window_count(
                f"{self.proto}_delivered_messages"
            ),
            latency=summarize_latencies(latency_samples),
            cpu_utilization=self.cpus.utilization(),
            cpu_breakdown=self.cpus.utilization_breakdown(),
            counters=dict(self.telemetry.counters),
            drops=dict(self.pipeline.drops),
            ooo_arrivals=ooo,
            window_ns=window_ns,
            events_executed=self.sim.events_executed,
            fault_plan=self.fault_plan.name if self.fault_plan else "",
            fault_counters=self.faults.summary() if self.faults else {},
            degradation_events=list(monitor.events) if monitor else [],
            conservation_checks=checks,
            conservation_violations=violations,
            obs=obs_payload,
            selfprof=selfprof_payload,
            migration=self.migration.summary() if self.migration is not None else None,
            health_counts={k: dict(v) for k, v in monitor.counts.items()}
            if monitor
            else {},
            hist=self.hist.to_dict() if self.hist is not None else None,
        )
