"""CloudSuite Web Serving model (paper Fig. 11).

An Elgg/nginx web server container behind the simulated overlay receive
pipeline; 200 closed-loop users issue a mix of operation types (browse /
login / chat / update / ...).  Each operation is a client→web request
through the full receive path, followed by server-side work that
includes backend exchanges (memcached/mysql tiers) modelled as extra
request messages through the same pipeline from a backend machine, then
a response.

Metrics follow the benchmark's reporting:

* **success rate** — operations completing within their pacing deadline,
  per second;
* **response time** — mean time to complete one operation;
* **delay time** — mean (actual − target) for operations over target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import BranchPlan, MflowConfig
from repro.core.mflow import MflowPolicy
from repro.cpu.topology import CpuSet
from repro.netstack.costs import CostModel
from repro.netstack.packet import FlowKey, Packet
from repro.overlay.topology import DatapathKind
from repro.sim.units import MSEC
from repro.steering.base import SteeringPolicy
from repro.steering.falcon import FalconFunPolicy
from repro.steering.vanilla import VanillaPolicy
from repro.workloads.scenario import Scenario

#: web/php worker cores on the server host (nginx + php-fpm pool)
SERVER_CORES = [0, 1, 2, 3]
#: aggregate micro-flow batch for application traffic (see memcached.py)
APP_BATCH_SIZE = 4

SYSTEMS = ("vanilla", "falcon", "mflow")


@dataclass(frozen=True)
class OpType:
    """One Elgg operation class: request/response shape and pacing target."""

    name: str
    weight: float            # share of the operation mix
    request_size: int        # client -> web request bytes
    response_size: int       # web -> client response bytes
    backend_calls: int       # memcached/mysql exchanges per op
    backend_bytes: int       # data pulled from the cache/db tier per call
    server_work_ns: float    # PHP execution time
    target_ns: float         # pacing deadline (success threshold)


#: the operation mix (weights sum to 1); shapes follow the benchmark's
#: mix of light browse/chat traffic and heavier login/update pages.
#: Backend pulls dominate the web tier's *inbound* overlay traffic —
#: that is the path the steering policies contend on.
OP_TYPES: List[OpType] = [
    OpType("browse", 0.40, 300, 24_000, 1, 16_000, 12_000.0, 1_850_000.0),
    OpType("login", 0.15, 500, 32_000, 3, 24_000, 30_000.0, 3_800_000.0),
    OpType("chat", 0.25, 400, 8_000, 2, 8_000, 15_000.0, 2_700_000.0),
    OpType("update", 0.12, 2_000, 12_000, 3, 24_000, 35_000.0, 3_700_000.0),
    OpType("upload", 0.08, 16_000, 4_000, 2, 8_000, 50_000.0, 2_900_000.0),
]

#: pooled web->backend connections (php workers share persistent conns)
BACKEND_POOL = 32
#: backend tier service time per call (lookup/query on the other machine)
BACKEND_SERVICE_NS = 12_000.0


@dataclass
class OpStats:
    issued: int = 0
    completed: int = 0
    success: int = 0
    latencies_ns: List[float] = field(default_factory=list)
    delays_ns: List[float] = field(default_factory=list)


@dataclass
class WebServingResult:
    system: str
    n_users: int
    per_op: Dict[str, OpStats]
    window_s: float

    def success_ops_per_sec(self, op: str) -> float:
        return self.per_op[op].success / self.window_s

    def total_success_per_sec(self) -> float:
        return sum(s.success for s in self.per_op.values()) / self.window_s

    def mean_response_us(self, op: str) -> float:
        lats = self.per_op[op].latencies_ns
        return float(np.mean(lats)) / 1e3 if lats else 0.0

    def mean_delay_us(self, op: str) -> float:
        delays = self.per_op[op].delays_ns
        return float(np.mean(delays)) / 1e3 if delays else 0.0


def webserving_policy_factory(system: str) -> Callable[[CpuSet], SteeringPolicy]:
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")

    def build(cpus: CpuSet) -> SteeringPolicy:
        if system == "vanilla":
            return VanillaPolicy(cpus, app_core=SERVER_CORES, role_cores={"first": 4})
        if system == "falcon":
            return FalconFunPolicy(
                cpus,
                app_core=SERVER_CORES,
                role_cores={"first": 4, "mid": 5, "rest": 6},
            )
        config = MflowConfig(
            split_before="skb_alloc",
            merge_before="tcp_rcv",
            branches=[BranchPlan(default_core=5), BranchPlan(default_core=6)],
            dispatch_core=4,
            merge_core=7,
            aggregate=True,
            batch_size=APP_BATCH_SIZE,
        )
        return MflowPolicy(cpus, config, app_core=SERVER_CORES)

    return build


class WebServingBenchmark:
    """Closed-loop users driving the Elgg operation mix."""

    def __init__(
        self,
        system: str,
        n_users: int = 200,
        costs: Optional[CostModel] = None,
        seed: int = 0,
        think_time_ns: float = 2 * MSEC,
    ):
        if n_users < 1:
            raise ValueError(f"need at least one user, got {n_users}")
        self.system = system
        self.n_users = n_users
        self.think_time_ns = think_time_ns
        self.scenario = Scenario(
            DatapathKind.OVERLAY,
            "tcp",
            webserving_policy_factory(system),
            costs=costs,
            seed=seed,
            n_receiver_cores=8,
            irq_core=4,
        )
        self.sim = self.scenario.sim
        self.costs = self.scenario.costs
        self.telemetry = self.scenario.telemetry
        self._rng = self.scenario.rngs.stream("webserving.ops")
        self._op_weights = np.array([op.weight for op in OP_TYPES])
        self._op_weights = self._op_weights / self._op_weights.sum()
        self.stats: Dict[str, OpStats] = {op.name: OpStats() for op in OP_TYPES}
        self.scenario.tcp_deliver.set_message_callback(self._on_message_delivered)
        # user connections: each user keeps one connection to the web tier
        self._user_senders = []
        self._user_op: Dict[FlowKey, OpType] = {}
        self._user_issue_ts: Dict[FlowKey, float] = {}
        self._recording = False
        for uid in range(n_users):
            flow = self.scenario.make_client_flow(uid, dport=80)
            sender = self.scenario.add_tcp_sender(64, flow=flow, continuous=False)
            self._user_senders.append((flow, sender))
        self._user_flows = {flow: i for i, (flow, _) in enumerate(self._user_senders)}
        # backend tier: pooled connections whose *responses* traverse the
        # web host's receive pipeline (cache/db data pulled per op)
        self._backend_senders = []
        self._backend_waiting: Dict[FlowKey, List[Callable[[], None]]] = {}
        for bid in range(BACKEND_POOL):
            flow = self.scenario.make_client_flow(10_000 + bid, dport=11211)
            sender = self.scenario.add_tcp_sender(64, flow=flow, continuous=False)
            self._backend_senders.append((flow, sender))
            self._backend_waiting[flow] = []
        self._backend_rr = 0

    # ----------------------------------------------------------- user loop
    def _start_users(self) -> None:
        for i, (flow, _) in enumerate(self._user_senders):
            # stagger user starts across one think time
            delay = self.think_time_ns * (i / max(1, len(self._user_senders)))
            self.sim.call_in(delay, self._issue_op, flow)

    def _pick_op(self) -> OpType:
        idx = int(self._rng.choice(len(OP_TYPES), p=self._op_weights))
        return OP_TYPES[idx]

    def _issue_op(self, flow: FlowKey) -> None:
        op = self._pick_op()
        self._user_op[flow] = op
        self._user_issue_ts[flow] = self.sim.now
        if self._recording:
            self.stats[op.name].issued += 1
        _, sender = self._user_senders[self._user_flows[flow]]
        sender.send_message(op.request_size)

    # --------------------------------------------------------- server side
    def _on_message_delivered(self, flow: FlowKey, pkt: Packet) -> None:
        if flow in self._backend_waiting:
            waiting = self._backend_waiting[flow]
            if waiting:
                waiting.pop(0)()
            return
        op = self._user_op.get(flow)
        if op is None:
            return
        app_core = self.scenario.cpus[self.scenario.policy.app_core_idx_for(flow)]
        # PHP work split around backend calls
        per_phase = op.server_work_ns / (op.backend_calls + 1)
        self._server_phase(flow, op, op.backend_calls, per_phase, app_core)

    def _backend_call(self, op: OpType, done: Callable[[], None]) -> None:
        """Pull ``op.backend_bytes`` from the cache/db tier: the backend
        machine serves the query and its response message traverses the
        web host's full receive pipeline before ``done`` fires."""
        flow, sender = self._backend_senders[self._backend_rr % len(self._backend_senders)]
        self._backend_rr += 1
        self._backend_waiting[flow].append(done)
        self.sim.call_in(
            BACKEND_SERVICE_NS, sender.send_message, op.backend_bytes
        )

    def _server_phase(self, flow: FlowKey, op: OpType, remaining: int, per_phase: float, app_core) -> None:
        def after_work() -> None:
            if remaining > 0:
                self._backend_call(
                    op,
                    lambda: self._server_phase(
                        flow, op, remaining - 1, per_phase, app_core
                    ),
                )
            else:
                self._respond(flow, op, app_core)

        app_core.submit_call("php_work", per_phase, after_work)

    def _respond(self, flow: FlowKey, op: OpType, app_core) -> None:
        n_segs = max(1, (op.response_size + 1447) // 1448)
        send_cost = self.costs.send_syscall_ns + self.costs.send_per_seg_tcp_ns * n_segs
        response_wire = (
            self.costs.wire_delay_ns
            + op.response_size * 8.0 / self.costs.link_gbps
            + 20_000.0  # client render/ack constant
        )
        app_core.submit_call(
            "server_send",
            send_cost,
            lambda: self.sim.call_in(response_wire, self._complete_op, flow, op),
        )

    def _complete_op(self, flow: FlowKey, op: OpType) -> None:
        now = self.sim.now
        latency = now - self._user_issue_ts.get(flow, now)
        if self._recording:
            st = self.stats[op.name]
            st.completed += 1
            st.latencies_ns.append(latency)
            if latency <= op.target_ns:
                st.success += 1
            else:
                st.delays_ns.append(latency - op.target_ns)
        self.sim.call_in(self.think_time_ns, self._issue_op, flow)

    # --------------------------------------------------------------- run
    def run(
        self, warmup_ns: float = 50 * MSEC, measure_ns: float = 200 * MSEC
    ) -> WebServingResult:
        self._start_users()
        self.sim.run(until_ns=warmup_ns)
        self._recording = True
        self.telemetry.start_window()
        self.scenario.cpus.start_window()
        self.sim.run(until_ns=warmup_ns + measure_ns)
        return WebServingResult(
            system=self.system,
            n_users=self.n_users,
            per_op=self.stats,
            window_s=measure_ns / 1e9,
        )


def run_webserving(
    system: str,
    n_users: int = 200,
    costs: Optional[CostModel] = None,
    seed: int = 0,
    warmup_ns: float = 50 * MSEC,
    measure_ns: float = 200 * MSEC,
) -> WebServingResult:
    """One system's bars in Fig. 11."""
    bench = WebServingBenchmark(system, n_users=n_users, costs=costs, seed=seed)
    return bench.run(warmup_ns=warmup_ns, measure_ns=measure_ns)
