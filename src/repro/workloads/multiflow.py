"""Multi-flow TCP experiments (paper Fig. 10 and Fig. 12).

Reproduces the paper's controlled layout: 5 dedicated application cores
and 10 dedicated kernel packet-processing cores.  Flows hash across the
kernel pool (hardware RSS spreads their RX queues the same way):

* ``vanilla`` — RSS only: each flow entirely on one kernel core;
* ``falcon``  — each flow pipelined across three pool cores
  (function-level, FALCON's best TCP mode);
* ``mflow``   — each flow split at the earliest point over two branch
  cores from the pool and merged on its app core.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.config import BranchPlan, MflowConfig
from repro.core.mflow import MflowPolicy
from repro.cpu.topology import CpuSet
from repro.netstack.costs import CostModel
from repro.overlay.topology import DatapathKind
from repro.sim.units import MSEC
from repro.steering.base import SteeringPolicy
from repro.steering.falcon import FalconFunPolicy
from repro.steering.rss import RssPolicy
from repro.workloads.scenario import Scenario, ScenarioResult, make_flow

#: the paper's multi-flow core layout
APP_CORES: List[int] = [0, 1, 2, 3, 4]
KERNEL_POOL: List[int] = [5, 6, 7, 8, 9, 10, 11, 12, 13, 14]
N_CORES = 15

MULTIFLOW_SYSTEMS = ("vanilla", "falcon", "mflow")


def multiflow_policy_factory(
    system: str, batch_size: int = 256, placement: str = "least-loaded"
) -> Callable[[CpuSet], SteeringPolicy]:
    """Policy constructor for the multi-flow comparison."""
    if system not in MULTIFLOW_SYSTEMS:
        raise ValueError(
            f"unknown multi-flow system {system!r}; expected one of {MULTIFLOW_SYSTEMS}"
        )

    def build(cpus: CpuSet) -> SteeringPolicy:
        if system == "vanilla":
            return RssPolicy(cpus, app_core=APP_CORES, core_pool=KERNEL_POOL)
        if system == "falcon":
            return FalconFunPolicy(
                cpus, app_core=APP_CORES, core_pool=KERNEL_POOL, placement=placement
            )
        config = MflowConfig(
            split_before="skb_alloc",
            merge_before="tcp_rcv",
            branches=[BranchPlan(default_core=KERNEL_POOL[0]),
                      BranchPlan(default_core=KERNEL_POOL[1])],  # placeholder; pool mode overrides
            batch_size=batch_size,
        )
        return MflowPolicy(
            cpus, config, app_core=APP_CORES, core_pool=KERNEL_POOL, placement=placement
        )

    return build


def build_multiflow_scenario(
    system: str,
    n_flows: int,
    message_size: int,
    costs: Optional[CostModel] = None,
    seed: int = 0,
    batch_size: int = 256,
    placement: str = "least-loaded",
    faults=None,
    obs=None,
    selfprof=None,
    hist=True,
) -> Scenario:
    """Assemble an ``n_flows``-flow overlay TCP scenario."""
    if n_flows < 1:
        raise ValueError(f"need at least one flow, got {n_flows}")
    sc = Scenario(
        DatapathKind.OVERLAY,
        "tcp",
        multiflow_policy_factory(system, batch_size, placement),
        costs=costs,
        seed=seed,
        n_receiver_cores=N_CORES,
        rss_core_indices=KERNEL_POOL,
        faults=faults,
        obs=obs,
        selfprof=selfprof,
        hist=hist,
    )
    for i in range(n_flows):
        sc.add_tcp_sender(message_size, flow=make_flow("tcp", i))
    return sc


def run_multiflow(
    system: str,
    n_flows: int,
    message_size: int,
    costs: Optional[CostModel] = None,
    seed: int = 0,
    warmup_ns: float = 2 * MSEC,
    measure_ns: float = 8 * MSEC,
    placement: str = "least-loaded",
    faults=None,
    obs=None,
    selfprof=None,
    hist=True,
) -> ScenarioResult:
    """One cell of Fig. 10 (aggregate TCP throughput)."""
    sc = build_multiflow_scenario(
        system, n_flows, message_size, costs=costs, seed=seed, placement=placement,
        faults=faults, obs=obs, selfprof=selfprof, hist=hist,
    )
    return sc.run(warmup_ns=warmup_ns, measure_ns=measure_ns)


def kernel_pool_utilization(result: ScenarioResult) -> List[float]:
    """Utilization of the 10 kernel cores only (Fig. 12's x-axis)."""
    return [result.cpu_utilization[i] for i in KERNEL_POOL]


def utilization_stddev(result: ScenarioResult) -> float:
    """Std-dev of kernel-core utilization in percent (paper: 20.5 vs 11.6)."""
    return float(np.std(np.asarray(kernel_pool_utilization(result)) * 100.0))
