"""CloudSuite Data Caching model (paper Fig. 13).

A Memcached server container sits behind the simulated overlay receive
pipeline (4 GB / 4 threads / 550 B objects in the paper); client
machines run closed-loop GET-dominated connections.  Request latency is
measured end to end per call: through the server host's receive path
(where the steering policy acts), a short server think time, and the
response path constant.

Scaling the number of client machines scales the request pressure on
the server's kernel path, reproducing the paper's observation that
MFLOW's benefit grows with client count (tail latency −26% at 1 client,
−47% at 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.config import BranchPlan, MflowConfig
from repro.core.mflow import MflowPolicy
from repro.cpu.topology import CpuSet
from repro.metrics.summary import LatencySummary, summarize_latencies
from repro.netstack.costs import CostModel
from repro.overlay.topology import DatapathKind
from repro.sim.units import MSEC
from repro.steering.base import SteeringPolicy
from repro.steering.falcon import FalconDevPolicy
from repro.steering.vanilla import VanillaPolicy
from repro.workloads.rpc import RpcEngine
from repro.workloads.scenario import Scenario

#: request/response shapes (memcached GET of a 550 B object)
REQUEST_SIZE = 100
OBJECT_SIZE = 550
#: connections each client machine keeps in flight
CONNECTIONS_PER_CLIENT = 4
#: per-request memcached server work (hash lookup + response build)
SERVER_THINK_NS = 2_000.0
#: per-call client-side think time (request pacing within a connection)
CLIENT_THINK_NS = 20_000.0
#: the paper's server runs memcached with 4 threads
SERVER_CORES = [0, 1, 2, 3]
#: aggregate micro-flow batch for application (mouse-flow) traffic
APP_BATCH_SIZE = 4

SYSTEMS = ("vanilla", "falcon", "mflow")


@dataclass
class MemcachedResult:
    system: str
    n_clients: int
    latency: LatencySummary
    requests_per_sec: float
    cpu_utilization: List[float]
    events_executed: int = 0


def memcached_policy_factory(system: str) -> Callable[[CpuSet], SteeringPolicy]:
    """Single-server steering configs for the data-caching benchmark."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")

    def build(cpus: CpuSet) -> SteeringPolicy:
        if system == "vanilla":
            return VanillaPolicy(cpus, app_core=SERVER_CORES, role_cores={"first": 4})
        if system == "falcon":
            return FalconDevPolicy(
                cpus,
                app_core=SERVER_CORES,
                role_cores={"first": 4, "vxlan": 5, "rest": 6},
            )
        # Application traffic is many mouse flows: IRQ-splitting batches
        # the aggregate arrival stream with a small, latency-oriented
        # batch (the 256 default targets multi-Mpps elephant flows) and
        # merges globally on a dedicated core before the stateful layer.
        config = MflowConfig(
            split_before="skb_alloc",
            merge_before="tcp_rcv",
            branches=[BranchPlan(default_core=5), BranchPlan(default_core=6)],
            dispatch_core=4,
            merge_core=7,
            aggregate=True,
            batch_size=APP_BATCH_SIZE,
        )
        return MflowPolicy(cpus, config, app_core=SERVER_CORES)

    return build


def build_memcached(
    system: str,
    n_clients: int,
    costs: Optional[CostModel] = None,
    seed: int = 0,
    connections_per_client: int = CONNECTIONS_PER_CLIENT,
) -> RpcEngine:
    """Assemble the data-caching testbed for one system / client count."""
    if n_clients < 1:
        raise ValueError(f"need at least one client, got {n_clients}")
    sc = Scenario(
        DatapathKind.OVERLAY,
        "tcp",
        memcached_policy_factory(system),
        costs=costs,
        seed=seed,
        n_receiver_cores=8,
        irq_core=4,
    )
    engine = RpcEngine(
        sc, server_think_ns=SERVER_THINK_NS, response_size=OBJECT_SIZE
    )
    for _ in range(n_clients * connections_per_client):
        engine.add_connection(REQUEST_SIZE, think_time_ns=CLIENT_THINK_NS)
    return engine


def run_memcached(
    system: str,
    n_clients: int,
    costs: Optional[CostModel] = None,
    seed: int = 0,
    warmup_ns: float = 2 * MSEC,
    measure_ns: float = 20 * MSEC,
    connections_per_client: int = CONNECTIONS_PER_CLIENT,
) -> MemcachedResult:
    """One bar group of Fig. 13."""
    engine = build_memcached(
        system,
        n_clients,
        costs=costs,
        seed=seed,
        connections_per_client=connections_per_client,
    )
    res = engine.run(warmup_ns=warmup_ns, measure_ns=measure_ns)
    latency = summarize_latencies(engine.telemetry.sample_list("rpc_latency_ns"))
    completed = engine.telemetry.window_count("rpc_completed")
    rps = completed / (measure_ns / 1e9)
    return MemcachedResult(
        system=system,
        n_clients=n_clients,
        latency=latency,
        requests_per_sec=rps,
        cpu_utilization=res.cpu_utilization,
        events_executed=engine.sim.events_executed,
    )
