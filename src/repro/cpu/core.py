"""A simulated CPU core.

A :class:`Core` owns a FIFO run queue of :class:`WorkItem` s and executes
them one at a time.  Work duration is ``cost_ns / speed * jitter`` where
jitter is a lognormal multiplicative factor drawn per item — this is the
source of the cross-core processing-speed variation that makes parallel
micro-flows finish out of order (paper §III-B, Fig. 7).

Busy time is accounted per tag, so experiments can report utilization
breakdowns per processing stage.

Hot-path notes: work items submitted via the ``*_call`` shorthands are
drawn from a per-core free list and recycled on completion (items passed
to :meth:`Core.submit` directly are caller-owned and never recycled);
completions schedule through the engine's pooled no-handle
:meth:`~repro.sim.engine.Simulator._sched`.  Jitter normals stay scalar
draws: topologies may share one named RNG stream across cores (the
client machines reuse ``core0.jitter``/``core1.jitter``), so per-core
batching would reorder the interleaved draw sequence and change the
timeline.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

import numpy as np

from repro.sim.engine import Simulator


class WorkItem:
    """One unit of CPU work: charge ``cost_ns`` then invoke ``fn(*args)``."""

    __slots__ = ("tag", "cost_ns", "fn", "args", "pooled")

    def __init__(self, tag: str, cost_ns: float, fn: Callable[..., Any], *args: Any):
        if cost_ns < 0:
            raise ValueError(f"negative work cost: {cost_ns}")
        self.tag = tag
        self.cost_ns = cost_ns
        self.fn = fn
        self.args = args
        #: free-list items recycle on completion; caller-made ones never do
        self.pooled = False


class Core:
    """A serially-executing CPU core with tagged busy-time accounting."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        speed: float = 1.0,
        jitter_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if speed <= 0:
            raise ValueError(f"core speed must be positive, got {speed}")
        if jitter_sigma < 0:
            raise ValueError(f"jitter sigma must be >= 0, got {jitter_sigma}")
        if jitter_sigma > 0 and rng is None:
            raise ValueError("jittered core requires an rng")
        self.sim = sim
        self.id = core_id
        self.speed = speed
        self.jitter_sigma = jitter_sigma
        self._rng = rng
        # lognormal(mu, sigma) has mean exp(mu + sigma^2/2); choose mu so the
        # jitter factor has mean 1.0 and only adds variance, not bias.
        self._jitter_mu = -0.5 * jitter_sigma * jitter_sigma
        self._queue: Deque[WorkItem] = deque()
        self._busy = False
        self.busy_ns: Dict[str, float] = {}
        self.items_executed = 0
        self._queue_len_max = 0
        #: recycled WorkItems for the *_call submission paths
        self._item_pool: list = []
        #: optional FlightRecorder — None (the default) disables all probes
        self.obs = None
        #: optional StageHistograms (repro.obs.hist) — exact latency counts
        self.hist = None
        #: (start_ns, end_ns) of the work item currently completing; only
        #: maintained while obs is attached (read by the journey tracker)
        self.last_span = None
        #: scalar twins of last_span, maintained while hist is attached
        #: (read by the pipeline's record path; scalars, so the per-item
        #: bookkeeping allocates nothing)
        self.span_start = 0.0
        self.span_end = 0.0

    # --------------------------------------------------------------- submit
    def submit(self, item: WorkItem) -> None:
        """Enqueue a work item; starts immediately if the core is idle."""
        q = self._queue
        q.append(item)
        if len(q) > self._queue_len_max:
            self._queue_len_max = len(q)
        if not self._busy:
            self._start_next()

    def _make_item(self, tag: str, cost_ns: float, fn: Callable[..., Any], args: tuple) -> WorkItem:
        pool = self._item_pool
        if pool:
            item = pool.pop()
            item.tag = tag
            item.cost_ns = cost_ns
            item.fn = fn
            item.args = args
            return item
        item = WorkItem(tag, cost_ns, fn, *args)
        item.pooled = True
        return item

    def submit_call(self, tag: str, cost_ns: float, fn: Callable[..., Any], *args: Any) -> None:
        """Pooled shorthand for ``submit(WorkItem(tag, cost_ns, fn, *args))``."""
        q = self._queue
        q.append(self._make_item(tag, cost_ns, fn, args))
        if len(q) > self._queue_len_max:
            self._queue_len_max = len(q)
        if not self._busy:
            self._start_next()

    def submit_front(self, item: WorkItem) -> None:
        """Enqueue at the *head* of the run queue (run-to-completion
        continuation: the next processing stage of the packet currently
        finishing runs before other queued work, as in a real softirq).

        Note: multiple front submissions stack LIFO; callers submitting
        several continuations must iterate them in reverse.
        """
        self._queue.appendleft(item)
        if not self._busy:
            self._start_next()

    def submit_front_call(self, tag: str, cost_ns: float, fn: Callable[..., Any], *args: Any) -> None:
        """Pooled shorthand for ``submit_front(WorkItem(tag, cost_ns, fn, *args))``."""
        self._queue.appendleft(self._make_item(tag, cost_ns, fn, args))
        if not self._busy:
            self._start_next()

    # ------------------------------------------------------------ execution
    def _jitter(self) -> float:
        if self.jitter_sigma == 0.0:
            return 1.0
        return math.exp(self._jitter_mu + self.jitter_sigma * self._rng.standard_normal())

    def _start_next(self) -> None:
        item = self._queue.popleft()
        if self.jitter_sigma == 0.0:
            duration = item.cost_ns / self.speed
        else:
            duration = item.cost_ns / self.speed * self._jitter()
        self._busy = True
        sim = self.sim
        sim._sched(sim._now + duration, self._complete, (item, duration))

    def _complete(self, item: WorkItem, duration: float) -> None:
        tag = item.tag
        busy = self.busy_ns
        busy[tag] = busy.get(tag, 0.0) + duration
        self.items_executed += 1
        hist = self.hist
        if hist is not None:
            now = self.sim._now
            start = now - duration
            self.span_start = start
            self.span_end = now
            if tag not in hist.stage_names:
                # system work (irq/driver_poll/softirq/ipi/steer_dispatch);
                # datapath stages are recorded by the pipeline instead,
                # with queue delay and flow class attached
                hist.record_core(tag, self.id, duration)
            if self.obs is not None:
                self.last_span = (start, now)
                self.obs.span(tag, start, now, core=self.id)
        elif self.obs is not None:
            now = self.sim._now
            start = now - duration
            self.last_span = (start, now)
            self.obs.span(tag, start, now, core=self.id)
        fn = item.fn
        args = item.args
        if item.pooled:
            item.fn = None
            item.args = None
            self._item_pool.append(item)
        fn(*args)
        # the completion may have submitted more work to this core
        q = self._queue
        if q:
            nxt = q.popleft()
            if self.jitter_sigma == 0.0:
                duration = nxt.cost_ns / self.speed
            else:
                duration = nxt.cost_ns / self.speed * self._jitter()
            sim = self.sim
            sim._sched(sim._now + duration, self._complete, (nxt, duration))
        else:
            self._busy = False

    # ------------------------------------------------------------ accounting
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def max_queue_depth(self) -> int:
        return self._queue_len_max

    def total_busy_ns(self) -> float:
        """Total busy time across all tags since construction."""
        return sum(self.busy_ns.values())

    def snapshot(self) -> Dict[str, float]:
        """Copy of the per-tag busy counters (for windowed measurement)."""
        return dict(self.busy_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.id} busy={self._busy} depth={len(self._queue)}>"
