"""A simulated CPU core.

A :class:`Core` owns a FIFO run queue of :class:`WorkItem` s and executes
them one at a time.  Work duration is ``cost_ns / speed * jitter`` where
jitter is a lognormal multiplicative factor drawn per item — this is the
source of the cross-core processing-speed variation that makes parallel
micro-flows finish out of order (paper §III-B, Fig. 7).

Busy time is accounted per tag, so experiments can report utilization
breakdowns per processing stage.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

import numpy as np

from repro.sim.engine import Simulator


class WorkItem:
    """One unit of CPU work: charge ``cost_ns`` then invoke ``fn(*args)``."""

    __slots__ = ("tag", "cost_ns", "fn", "args")

    def __init__(self, tag: str, cost_ns: float, fn: Callable[..., Any], *args: Any):
        if cost_ns < 0:
            raise ValueError(f"negative work cost: {cost_ns}")
        self.tag = tag
        self.cost_ns = cost_ns
        self.fn = fn
        self.args = args


class Core:
    """A serially-executing CPU core with tagged busy-time accounting."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        speed: float = 1.0,
        jitter_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if speed <= 0:
            raise ValueError(f"core speed must be positive, got {speed}")
        if jitter_sigma < 0:
            raise ValueError(f"jitter sigma must be >= 0, got {jitter_sigma}")
        if jitter_sigma > 0 and rng is None:
            raise ValueError("jittered core requires an rng")
        self.sim = sim
        self.id = core_id
        self.speed = speed
        self.jitter_sigma = jitter_sigma
        self._rng = rng
        # lognormal(mu, sigma) has mean exp(mu + sigma^2/2); choose mu so the
        # jitter factor has mean 1.0 and only adds variance, not bias.
        self._jitter_mu = -0.5 * jitter_sigma * jitter_sigma
        self._queue: Deque[WorkItem] = deque()
        self._busy = False
        self.busy_ns: Dict[str, float] = {}
        self.items_executed = 0
        self._queue_len_max = 0
        #: optional FlightRecorder — None (the default) disables all probes
        self.obs = None
        #: (start_ns, end_ns) of the work item currently completing; only
        #: maintained while obs is attached (read by the journey tracker)
        self.last_span = None

    # --------------------------------------------------------------- submit
    def submit(self, item: WorkItem) -> None:
        """Enqueue a work item; starts immediately if the core is idle."""
        self._queue.append(item)
        if len(self._queue) > self._queue_len_max:
            self._queue_len_max = len(self._queue)
        if not self._busy:
            self._start_next()

    def submit_call(self, tag: str, cost_ns: float, fn: Callable[..., Any], *args: Any) -> None:
        """Shorthand for ``submit(WorkItem(tag, cost_ns, fn, *args))``."""
        self.submit(WorkItem(tag, cost_ns, fn, *args))

    def submit_front(self, item: WorkItem) -> None:
        """Enqueue at the *head* of the run queue (run-to-completion
        continuation: the next processing stage of the packet currently
        finishing runs before other queued work, as in a real softirq).

        Note: multiple front submissions stack LIFO; callers submitting
        several continuations must iterate them in reverse.
        """
        self._queue.appendleft(item)
        if not self._busy:
            self._start_next()

    def submit_front_call(self, tag: str, cost_ns: float, fn: Callable[..., Any], *args: Any) -> None:
        """Shorthand for ``submit_front(WorkItem(tag, cost_ns, fn, *args))``."""
        self.submit_front(WorkItem(tag, cost_ns, fn, *args))

    # ------------------------------------------------------------ execution
    def _jitter(self) -> float:
        if self.jitter_sigma == 0.0:
            return 1.0
        return math.exp(self._jitter_mu + self.jitter_sigma * self._rng.standard_normal())

    def _start_next(self) -> None:
        item = self._queue.popleft()
        duration = item.cost_ns / self.speed * self._jitter()
        self._busy = True
        self.sim.call_in(duration, self._complete, item, duration)

    def _complete(self, item: WorkItem, duration: float) -> None:
        self.busy_ns[item.tag] = self.busy_ns.get(item.tag, 0.0) + duration
        self.items_executed += 1
        obs = self.obs
        if obs is not None:
            start = self.sim.now - duration
            self.last_span = (start, self.sim.now)
            obs.span(item.tag, start, self.sim.now, core=self.id)
        item.fn(*item.args)
        # the completion may have submitted more work to this core
        if self._queue:
            self._start_next()
        else:
            self._busy = False

    # ------------------------------------------------------------ accounting
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def max_queue_depth(self) -> int:
        return self._queue_len_max

    def total_busy_ns(self) -> float:
        """Total busy time across all tags since construction."""
        return sum(self.busy_ns.values())

    def snapshot(self) -> Dict[str, float]:
        """Copy of the per-tag busy counters (for windowed measurement)."""
        return dict(self.busy_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.id} busy={self._busy} depth={len(self._queue)}>"
