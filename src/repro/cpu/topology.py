"""CPU set construction and windowed utilization measurement."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cpu.core import Core
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


class CpuSet:
    """An indexed collection of :class:`Core` s with utilization helpers.

    Mirrors the paper's testbed convention: core 0 runs the application /
    packet-delivery thread; cores 1..N run kernel packet processing.
    """

    def __init__(
        self,
        sim: Simulator,
        n_cores: int,
        jitter_sigma: float = 0.0,
        rngs: Optional[RngStreams] = None,
        speeds: Optional[Sequence[float]] = None,
    ):
        if n_cores <= 0:
            raise ValueError(f"need at least one core, got {n_cores}")
        if speeds is not None and len(speeds) != n_cores:
            raise ValueError("speeds length must match n_cores")
        self.sim = sim
        self.cores: List[Core] = []
        for i in range(n_cores):
            rng = rngs.stream(f"core{i}.jitter") if (rngs and jitter_sigma > 0) else None
            speed = speeds[i] if speeds is not None else 1.0
            self.cores.append(Core(sim, i, speed=speed, jitter_sigma=jitter_sigma, rng=rng))
        self._window_start_ns: float = 0.0
        self._window_snapshots: List[Dict[str, float]] = [c.snapshot() for c in self.cores]

    def __len__(self) -> int:
        return len(self.cores)

    def __getitem__(self, idx: int) -> Core:
        return self.cores[idx]

    def __iter__(self):
        return iter(self.cores)

    # ------------------------------------------------------------ measurement
    def start_window(self) -> None:
        """Begin a measurement window at the current sim time."""
        self._window_start_ns = self.sim.now
        self._window_snapshots = [c.snapshot() for c in self.cores]

    def utilization(self) -> List[float]:
        """Fraction of the current window each core spent busy (0..1)."""
        elapsed = self.sim.now - self._window_start_ns
        if elapsed <= 0:
            return [0.0] * len(self.cores)
        out = []
        for core, snap in zip(self.cores, self._window_snapshots):
            before = sum(snap.values())
            out.append((core.total_busy_ns() - before) / elapsed)
        return out

    def utilization_breakdown(self) -> List[Dict[str, float]]:
        """Per-core, per-tag utilization fractions over the current window."""
        elapsed = self.sim.now - self._window_start_ns
        out: List[Dict[str, float]] = []
        for core, snap in zip(self.cores, self._window_snapshots):
            row: Dict[str, float] = {}
            if elapsed > 0:
                for tag, busy in core.busy_ns.items():
                    delta = busy - snap.get(tag, 0.0)
                    if delta > 0:
                        row[tag] = delta / elapsed
            out.append(row)
        return out
