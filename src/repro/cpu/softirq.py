"""Softirq scheduling and inter-processor interrupts.

A :class:`Softirq` wraps a poll function (NAPI style).  ``raise_on(core)``
arms the softirq on the target core if it is not already pending there —
softirqs coalesce exactly like the kernel's ``__raise_softirq_irqoff``:
raising an already-pending softirq is a no-op.

Raising on a *remote* core models an IPI: a small fixed cost is charged
to the raising core (done by the caller, see
:meth:`Softirq.raise_on_remote`) plus the softirq entry overhead on the
target.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cpu.core import Core

#: cost of sending an inter-processor interrupt, charged to the sender
IPI_COST_NS: float = 300.0

#: fixed entry overhead of one softirq invocation on the executing core
SOFTIRQ_ENTRY_COST_NS: float = 150.0


class Softirq:
    """A coalescing softirq whose handler runs in core context.

    The handler receives the core it runs on and returns True when it has
    more work pending (it will be re-raised immediately, modelling NAPI
    re-polling) or False when its queues are drained.
    """

    def __init__(
        self,
        name: str,
        handler: Callable[[Core], bool],
        entry_cost_ns: float = SOFTIRQ_ENTRY_COST_NS,
    ):
        self.name = name
        self.handler = handler
        self.entry_cost_ns = entry_cost_ns
        # hot-path work-item tags, built once instead of per raise
        self._run_tag = f"softirq:{name}"
        self._ipi_tag = f"ipi:{name}"
        #: fault injection: extra latency before a remote raise lands on
        #: its target core (0 = IPIs deliver instantly, the default)
        self.ipi_delay_ns = 0.0
        self._pending: Dict[int, bool] = {}
        self.raises = 0
        self.ipis = 0
        #: optional FlightRecorder — None (the default) disables all probes
        self.obs = None

    def pending_on(self, core: Core) -> bool:
        return self._pending.get(core.id, False)

    def raise_on(self, core: Core) -> None:
        """Arm the softirq on ``core`` (local raise — no IPI cost)."""
        if self._pending.get(core.id, False):
            return
        self._pending[core.id] = True
        self.raises += 1
        if self.obs is not None:
            self.obs.instant("softirq_raise", core=core.id, softirq=self.name)
        core.submit_call(self._run_tag, self.entry_cost_ns, self._run, core)

    def raise_on_remote(self, from_core: Optional[Core], to_core: Core) -> None:
        """Arm the softirq on ``to_core`` via IPI, charging the sender.

        ``from_core`` may be None for hardware-originated raises (IRQ from
        the NIC) which cost no simulated CPU on any core.
        """
        if self._pending.get(to_core.id, False):
            return
        remote = from_core is not None and from_core.id != to_core.id
        if remote:
            self.ipis += 1
            if self.obs is not None:
                self.obs.instant(
                    "ipi_send", core=from_core.id, target=to_core.id, softirq=self.name
                )
            from_core.submit_call(self._ipi_tag, IPI_COST_NS, _noop)
        if remote and self.ipi_delay_ns > 0.0:
            to_core.sim.sched_in(self.ipi_delay_ns, self.raise_on, to_core)
        else:
            self.raise_on(to_core)

    def _run(self, core: Core) -> None:
        self._pending[core.id] = False
        more = self.handler(core)
        if more:
            self.raise_on(core)


def _noop() -> None:
    return None
