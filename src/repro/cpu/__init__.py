"""Multi-core CPU model.

Cores execute *work items* — ``(tag, cost_ns, completion)`` — strictly
serially, one item at a time, with optional per-item speed jitter.  All
kernel packet processing in the reproduction is charged to a core through
this interface, which is what makes CPU-bottleneck effects (the paper's
central motivation) emerge in simulation.

Tags name the processing stage ("skb_alloc", "vxlan", "tcp_rcv", ...) so
per-core utilization can be broken down exactly like the paper's
Figures 4b / 8b / 12.
"""

from repro.cpu.core import Core, WorkItem
from repro.cpu.topology import CpuSet
from repro.cpu.softirq import IPI_COST_NS, Softirq

__all__ = ["Core", "WorkItem", "CpuSet", "Softirq", "IPI_COST_NS"]
