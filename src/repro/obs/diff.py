"""``repro diff`` — differential regression attribution over exact
stage histograms.

Given two histogram sources (a run record, a sweep directory, a BENCH
payload, or a bare ``StageHistograms`` payload), compute a stage-by-stage
latency-delta attribution: which pipeline stages' queueing or service
time moved, by how much, whether the move is statistically significant,
and how much of the end-to-end shift each stage contributes.

Because the histograms are *exact* (every hop counted, fixed bucket
geometry, lossless merge algebra — :mod:`repro.obs.hist`), the diff is a
complete accounting rather than a sampled estimate: the per-stage
``sum_ns`` deltas add up to the total simulated latency shift, so the
``share`` column genuinely partitions the regression.

Significance reuses the bench gate's machinery
(:mod:`repro.perf.stats`): bucket-midpoint samples are reconstructed
deterministically from each side's histogram, bootstrap 95% CIs are
computed for both means, and a stage is flagged only when the intervals
are disjoint *and* the relative mean delta exceeds the tolerance —
mirroring ``repro bench --compare``'s noise discipline.

Exit semantics: :meth:`StageDiff.exit_code` returns 1 iff at least one
significant *regression* (mean moved up) survived, so CI can gate on a
diff exactly like it gates on the bench compare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.hist import (
    merge_payloads,
    series_mean_ns,
    series_quantile_ns,
    series_samples,
    stage_rollup,
)
from repro.perf.stats import SampleStats

#: a mean shift below this fraction never counts, even with disjoint CIs
DEFAULT_TOLERANCE = 0.02

#: cap on reconstructed samples per side per series (systematic sampling)
DEFAULT_SAMPLE_CAP = 2000


# ------------------------------------------------------------------- loading
@dataclass
class HistSource:
    """One side of a diff: a merged histogram payload plus provenance."""

    label: str                 # what the user pointed at
    kind: str                  # "run" | "sweep" | "bench" | "hist"
    payload: Dict[str, Any]    # merged StageHistograms.to_dict() payload
    n_merged: int              # payloads merged into this side


def _extract_hist(doc: Mapping[str, Any]) -> Optional[Mapping[str, Any]]:
    """The hist payload inside one JSON document, wherever it lives."""
    if "stages" in doc and "geometry" in doc:
        return doc                                   # bare hist payload
    measurements = doc.get("measurements")
    if isinstance(measurements, Mapping):            # RunRecord dict
        return measurements.get("hist")
    if doc.get("kind") == "scenario":                # bare measurement dict
        return doc.get("hist")
    return None


def load_hist_source(path: Path) -> HistSource:
    """Load and merge the histograms behind ``path``.

    Accepts, by inspection rather than flag:

    * a sweep output directory (``runs/*.json`` run records — all
      scenario hists merged);
    * a single run-record JSON (or bare scenario measurement dict);
    * a ``BENCH_<sha>.json`` payload (all scenarios' hists merged);
    * a bare ``StageHistograms`` payload.
    """
    path = Path(path)
    if path.is_dir():
        runs = path / "runs"
        records = sorted((runs if runs.is_dir() else path).glob("*.json"))
        hists = []
        for rec in records:
            if rec.name in ("sweep.json", "manifest.json"):
                continue
            try:
                doc = json.loads(rec.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            h = _extract_hist(doc)
            if h:
                hists.append(h)
        if not hists:
            raise ValueError(
                f"{path}: no histogram payloads found in sweep records "
                f"(were the runs executed with hist=False?)"
            )
        return HistSource(str(path), "sweep", merge_payloads(hists), len(hists))

    doc = json.loads(path.read_text())
    if doc.get("kind") == "repro-bench":
        hists = [
            s["hist"]
            for _, s in sorted(doc.get("scenarios", {}).items())
            if isinstance(s, Mapping) and s.get("hist")
        ]
        if not hists:
            raise ValueError(f"{path}: bench payload carries no histograms")
        return HistSource(str(path), "bench", merge_payloads(hists), len(hists))
    h = _extract_hist(doc)
    if not h:
        raise ValueError(f"{path}: no histogram payload found")
    kind = "hist" if h is doc else "run"
    return HistSource(str(path), kind, merge_payloads([h]), 1)


# ----------------------------------------------------------------- diff rows
@dataclass
class DiffRow:
    """One (stage, queue|service) series compared across the two sides."""

    stage: str
    series: str                  # "queue" | "service"
    count_a: int
    count_b: int
    mean_a_ns: float
    mean_b_ns: float
    delta_ns: float              # mean_b - mean_a (+ means slower)
    delta_pct: float             # relative to mean_a (0 when mean_a == 0)
    sum_delta_ns: int            # sum_b - sum_a: contribution to total shift
    share_pct: float             # |sum_delta| share of Σ|sum_delta|
    p99_a_ns: int
    p99_b_ns: int
    significant: bool
    status: str                  # "ok" | "regression" | "improvement"
    ci_a: Tuple[float, float] = (0.0, 0.0)
    ci_b: Tuple[float, float] = (0.0, 0.0)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "series": self.series,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "mean_a_ns": self.mean_a_ns,
            "mean_b_ns": self.mean_b_ns,
            "delta_ns": self.delta_ns,
            "delta_pct": self.delta_pct,
            "sum_delta_ns": self.sum_delta_ns,
            "share_pct": self.share_pct,
            "p99_a_ns": self.p99_a_ns,
            "p99_b_ns": self.p99_b_ns,
            "significant": self.significant,
            "status": self.status,
            "ci_a": list(self.ci_a),
            "ci_b": list(self.ci_b),
        }


@dataclass
class StageDiff:
    """Outcome of ``repro diff A B``: ranked stage attribution."""

    label_a: str
    label_b: str
    tolerance: float
    total_shift_ns: int = 0          # Σ (sum_b - sum_a), signed
    rows: List[DiffRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffRow]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    # ------------------------------------------------------------- rendering
    def report(self) -> str:
        """Markdown attribution table, ranked by contribution."""
        lines = [
            f"## Stage latency diff: B = `{self.label_b}` vs A = `{self.label_a}`",
            "",
            f"Total simulated-latency shift: **{_fmt_ns(self.total_shift_ns)}** "
            f"(Σ per-stage busy-time delta; tolerance "
            f"{self.tolerance * 100:.0f}% beyond CI overlap)",
            "",
            "| stage | series | count A→B | mean A | mean B | Δ mean | Δ% "
            "| Σ shift | share | verdict |",
            "|---|---|---|---:|---:|---:|---:|---:|---:|---|",
        ]
        for r in self.rows:
            mark = {"ok": "·", "regression": "⚠ regression",
                    "improvement": "✓ improvement"}[r.status]
            counts = (
                f"{r.count_a}" if r.count_a == r.count_b
                else f"{r.count_a}→{r.count_b}"
            )
            lines.append(
                f"| {r.stage} | {r.series} | {counts} "
                f"| {_fmt_ns(r.mean_a_ns)} | {_fmt_ns(r.mean_b_ns)} "
                f"| {_fmt_ns(r.delta_ns, signed=True)} | {r.delta_pct:+.1f}% "
                f"| {_fmt_ns(r.sum_delta_ns, signed=True)} | {r.share_pct:.1f}% "
                f"| {mark} |"
            )
        n_sig = len([r for r in self.rows if r.significant])
        lines += [
            "",
            f"{len(self.regressions)} significant regression(s), "
            f"{n_sig} significant change(s) across {len(self.rows)} "
            f"stage series.",
        ]
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-diff",
            "label_a": self.label_a,
            "label_b": self.label_b,
            "tolerance": self.tolerance,
            "total_shift_ns": self.total_shift_ns,
            "ok": self.ok,
            "rows": [r.to_json_dict() for r in self.rows],
        }


def _fmt_ns(v: float, signed: bool = False) -> str:
    """Human latency: ns below 1µs, µs below 1ms, else ms."""
    sign = "+" if signed and v > 0 else ("-" if v < 0 else "")
    a = abs(v)
    if a < 1_000:
        return f"{sign}{a:.0f}ns"
    if a < 1_000_000:
        return f"{sign}{a / 1_000:.2f}µs"
    return f"{sign}{a / 1_000_000:.3f}ms"


# --------------------------------------------------------------- computation
def _significance(
    ser_a: Mapping[str, Any],
    ser_b: Mapping[str, Any],
    mean_a: float,
    mean_b: float,
    tolerance: float,
    seed: int,
    cap: int,
) -> Tuple[bool, Tuple[float, float], Tuple[float, float]]:
    """CI-overlap + tolerance test, as in ``repro bench --compare``."""
    count_a = int(ser_a.get("count", 0))
    count_b = int(ser_b.get("count", 0))
    if count_a == 0 or count_b == 0:
        # a stage that appeared or vanished outright is always significant
        return (count_a != count_b, (mean_a, mean_a), (mean_b, mean_b))
    rel = abs(mean_b - mean_a) / mean_a if mean_a > 0 else float("inf")
    if rel <= tolerance:
        return (False, (mean_a, mean_a), (mean_b, mean_b))
    stats_a = SampleStats.from_samples(series_samples(ser_a, cap), seed=seed)
    stats_b = SampleStats.from_samples(series_samples(ser_b, cap), seed=seed)
    return (not stats_a.overlaps(stats_b), stats_a.ci, stats_b.ci)


def diff_payloads(
    payload_a: Mapping[str, Any],
    payload_b: Mapping[str, Any],
    label_a: str = "A",
    label_b: str = "B",
    tolerance: float = DEFAULT_TOLERANCE,
    seed: int = 0,
    sample_cap: int = DEFAULT_SAMPLE_CAP,
) -> StageDiff:
    """Stage-by-stage attribution of the latency shift from A to B.

    Rows are ranked by ``|sum_b - sum_a|`` — absolute contribution to the
    end-to-end busy-time shift — so the first row is where the regression
    (or win) actually lives, regardless of how small that stage's
    per-packet mean is.
    """
    rollup_a = stage_rollup(payload_a)
    rollup_b = stage_rollup(payload_b)
    empty: Dict[str, Any] = {
        "count": 0, "sum_ns": 0, "min_ns": 0, "max_ns": 0, "buckets": []
    }
    rows: List[DiffRow] = []
    for stage in sorted(set(rollup_a) | set(rollup_b)):
        kinds_a = rollup_a.get(stage, {})
        kinds_b = rollup_b.get(stage, {})
        for series in ("queue", "service"):
            ser_a = kinds_a.get(series) or empty
            ser_b = kinds_b.get(series) or empty
            count_a = int(ser_a.get("count", 0))
            count_b = int(ser_b.get("count", 0))
            if count_a == 0 and count_b == 0:
                continue
            mean_a = series_mean_ns(ser_a)
            mean_b = series_mean_ns(ser_b)
            delta = mean_b - mean_a
            delta_pct = (delta / mean_a * 100.0) if mean_a > 0 else 0.0
            significant, ci_a, ci_b = _significance(
                ser_a, ser_b, mean_a, mean_b, tolerance, seed, sample_cap
            )
            if not significant:
                status = "ok"
            elif delta > 0:
                status = "regression"
            else:
                status = "improvement"
            rows.append(
                DiffRow(
                    stage=stage,
                    series=series,
                    count_a=count_a,
                    count_b=count_b,
                    mean_a_ns=mean_a,
                    mean_b_ns=mean_b,
                    delta_ns=delta,
                    delta_pct=delta_pct,
                    sum_delta_ns=int(ser_b.get("sum_ns", 0)) - int(ser_a.get("sum_ns", 0)),
                    share_pct=0.0,   # filled after ranking
                    p99_a_ns=series_quantile_ns(ser_a, 0.99),
                    p99_b_ns=series_quantile_ns(ser_b, 0.99),
                    significant=significant,
                    status=status,
                    ci_a=ci_a,
                    ci_b=ci_b,
                )
            )
    rows.sort(key=lambda r: (-abs(r.sum_delta_ns), r.stage, r.series))
    total_abs = sum(abs(r.sum_delta_ns) for r in rows)
    for r in rows:
        r.share_pct = (abs(r.sum_delta_ns) / total_abs * 100.0) if total_abs else 0.0
    return StageDiff(
        label_a=label_a,
        label_b=label_b,
        tolerance=tolerance,
        total_shift_ns=sum(r.sum_delta_ns for r in rows),
        rows=rows,
    )


def diff_sources(
    source_a: HistSource,
    source_b: HistSource,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: int = 0,
    sample_cap: int = DEFAULT_SAMPLE_CAP,
) -> StageDiff:
    return diff_payloads(
        source_a.payload,
        source_b.payload,
        label_a=source_a.label,
        label_b=source_b.label,
        tolerance=tolerance,
        seed=seed,
        sample_cap=sample_cap,
    )


def diff_paths(
    path_a: Path,
    path_b: Path,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: int = 0,
    sample_cap: int = DEFAULT_SAMPLE_CAP,
) -> StageDiff:
    """One-call convenience: load both sides, diff them."""
    return diff_sources(
        load_hist_source(path_a),
        load_hist_source(path_b),
        tolerance=tolerance,
        seed=seed,
        sample_cap=sample_cap,
    )
