"""Per-packet critical-path latency decomposition (the Fig. 5/6 analysis).

The :class:`JourneyTracker` rides the pipeline's obs hooks and records,
for a sample of skbs, every hop through the datapath as an explicit
``(enqueue, execute-start, execute-end)`` triple.  From those triples
:func:`decompose` splits each delivered skb's end-to-end latency —
NIC DMA arrival to user-space copy — into a telescoping sum:

``e2e = ring_wait + Σ_per-hop (queueing + service + hold)``

* **ring wait** — DMA arrival to first pipeline enqueue (ring residency,
  IRQ top half, NAPI poll batching);
* **queueing** — enqueue on the target core's run queue until the work
  item starts executing (the softirq-serialization cost the paper
  attacks);
* **service** — the work item's execution window (stage cost × core
  speed/jitter);
* **hold** — the gap between a stage finishing an skb and the *next*
  stage's enqueue.  Zero for ordinary stages (forwarding is immediate);
  positive where the datapath parks skbs: GRO holding for a merge
  window, the MFLOW reassembler waiting for an out-of-order micro-flow
  (**merge wait**), TCP's out-of-order queue.

Because each component is a difference of adjacent timestamps on one
skb's journey, the per-stage components sum to the measured end-to-end
latency *exactly* — the property the acceptance test pins to within 1%.

Journeys are keyed by a monotonically assigned ``skb.trace_id`` (never
``id(skb)`` — CPython reuses object ids after GC, which silently merges
distinct journeys; see the matching fix in :mod:`repro.sim.trace`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: stage names that terminate a journey at user-space delivery
DELIVERY_STAGE_NAMES = frozenset({"tcp_deliver", "udp_deliver", "sink"})


class Hop:
    """One stage visit: queue on a core, execute, forward."""

    __slots__ = ("stage", "core", "enqueue_ns", "start_ns", "end_ns")

    def __init__(self, stage: str, core: int, enqueue_ns: float):
        self.stage = stage
        self.core = core
        self.enqueue_ns = enqueue_ns
        self.start_ns: Optional[float] = None
        self.end_ns: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Hop {self.stage}@{self.core} q={self.enqueue_ns:.0f}>"


class JourneyTracker:
    """Samples skb journeys through the pipeline's obs hooks.

    ``max_journeys`` bounds memory; tracking starts at ``start_ns`` (set
    it to the warmup horizon to sample steady state only).  Trace ids
    are assigned monotonically; ids assigned elsewhere (PathTracer) are
    adopted and skipped over, so two trackers never collide on a key.
    """

    def __init__(self, max_journeys: int = 4000, start_ns: float = 0.0):
        if max_journeys < 1:
            raise ValueError("max_journeys must be >= 1")
        self.max_journeys = max_journeys
        self.start_ns = start_ns
        self._next_id = 0
        self.journeys: Dict[int, List[Hop]] = {}
        self.arrival_ns: Dict[int, float] = {}
        self.dropped: set = set()

    # ------------------------------------------------------------- pipeline
    def on_enqueue(self, skb, stage_name: str, core_id: int, now: float) -> None:
        """An skb was handed to ``stage_name``'s run queue on ``core_id``."""
        tid = skb.trace_id
        if tid is None:
            if now < self.start_ns or len(self.journeys) >= self.max_journeys:
                return
            tid = self._next_id
            self._next_id += 1
            skb.trace_id = tid
            self.journeys[tid] = []
            # DMA arrival of the oldest wire frame wrapped by this skb
            self.arrival_ns[tid] = min(p.arrival_ts for p in skb.packets)
        else:
            if tid not in self.journeys:
                # id assigned by another tracker: adopt it and never reuse it
                if tid >= self._next_id:
                    self._next_id = tid + 1
                self.journeys[tid] = []
                self.arrival_ns[tid] = min(p.arrival_ts for p in skb.packets)
        self.journeys[tid].append(Hop(stage_name, core_id, now))

    def on_execute(self, skb, stage_name: str, start_ns: float, end_ns: float) -> None:
        """The hop's work item just finished executing (called from the
        stage-run callback, with the span the core measured)."""
        tid = skb.trace_id
        if tid is None:
            return
        hops = self.journeys.get(tid)
        if not hops:
            return
        for hop in reversed(hops):
            if hop.stage == stage_name and hop.end_ns is None:
                hop.start_ns = start_ns
                hop.end_ns = end_ns
                return

    def on_drop(self, skb, stage_name: str) -> None:
        """The skb tail-dropped at ``stage_name``'s backlog limit."""
        tid = skb.trace_id
        if tid is not None:
            self.dropped.add(tid)

    # -------------------------------------------------------------- results
    @property
    def n_journeys(self) -> int:
        return len(self.journeys)

    def complete_journeys(self, delivery_stages: frozenset = DELIVERY_STAGE_NAMES):
        """(trace_id, hops) for journeys that reached user-space delivery."""
        for tid, hops in self.journeys.items():
            if tid in self.dropped or not hops:
                continue
            last = hops[-1]
            if last.stage in delivery_stages and last.end_ns is not None:
                if all(h.end_ns is not None for h in hops):
                    yield tid, hops


class _StageAgg:
    __slots__ = ("stage", "queue_ns", "service_ns", "hold_ns", "visits")

    def __init__(self, stage: str):
        self.stage = stage
        self.queue_ns = 0.0
        self.service_ns = 0.0
        self.hold_ns = 0.0
        self.visits = 0


class Decomposition:
    """Aggregated per-stage queueing/service/hold over sampled journeys."""

    def __init__(self, delivery_stages: frozenset = DELIVERY_STAGE_NAMES):
        self.delivery_stages = delivery_stages
        self.stages: Dict[str, _StageAgg] = {}
        self.stage_order: List[str] = []
        self.n_journeys = 0
        self.ring_wait_ns = 0.0
        self.e2e_ns = 0.0

    # ------------------------------------------------------------ ingestion
    def add_journey(self, hops: List[Hop], arrival_ns: float) -> None:
        self.n_journeys += 1
        self.ring_wait_ns += hops[0].enqueue_ns - arrival_ns
        self.e2e_ns += hops[-1].end_ns - arrival_ns
        for i, hop in enumerate(hops):
            agg = self.stages.get(hop.stage)
            if agg is None:
                agg = self.stages[hop.stage] = _StageAgg(hop.stage)
                self.stage_order.append(hop.stage)
            agg.visits += 1
            agg.queue_ns += hop.start_ns - hop.enqueue_ns
            agg.service_ns += hop.end_ns - hop.start_ns
            if i + 1 < len(hops):
                # time parked inside this stage before the next stage saw
                # the skb (GRO hold, reassembly merge wait, TCP ofo queue)
                agg.hold_ns += hops[i + 1].enqueue_ns - hop.end_ns

    # -------------------------------------------------------------- queries
    def _mean(self, total_ns: float) -> float:
        return total_ns / self.n_journeys if self.n_journeys else 0.0

    @property
    def e2e_mean_us(self) -> float:
        """Mean end-to-end latency (DMA arrival → delivery) in µs."""
        return self._mean(self.e2e_ns) / 1e3

    @property
    def components_sum_us(self) -> float:
        """Sum of every decomposed component, in µs (== e2e by identity)."""
        total = self.ring_wait_ns + sum(
            a.queue_ns + a.service_ns + a.hold_ns for a in self.stages.values()
        )
        return self._mean(total) / 1e3

    def stage_rows(self) -> List[dict]:
        rows = []
        for name in self.stage_order:
            a = self.stages[name]
            rows.append(
                {
                    "stage": name,
                    "queue_us": self._mean(a.queue_ns) / 1e3,
                    "service_us": self._mean(a.service_ns) / 1e3,
                    "hold_us": self._mean(a.hold_ns) / 1e3,
                    "visits": a.visits,
                }
            )
        return rows

    def to_dict(self) -> dict:
        """JSON-safe form for run records / artifacts."""
        return {
            "n_journeys": self.n_journeys,
            "ring_wait_us": self._mean(self.ring_wait_ns) / 1e3,
            "e2e_mean_us": self.e2e_mean_us,
            "components_sum_us": self.components_sum_us,
            "stages": self.stage_rows(),
        }

    def report(self) -> str:
        """Human-readable per-stage breakdown table."""
        if not self.n_journeys:
            return "(no complete journeys sampled)"
        rows = self.stage_rows()
        width = max(len("nic ring/irq"), *(len(r["stage"]) for r in rows))
        lines = [
            f"latency decomposition over {self.n_journeys} delivered skbs "
            f"(mean e2e {self.e2e_mean_us:.2f} us):",
            f"{'stage':<{width}}  {'queue us':>9}  {'service us':>10}  "
            f"{'hold us':>8}  {'total us':>8}  {'visits':>7}",
        ]
        ring = self._mean(self.ring_wait_ns) / 1e3
        lines.append(
            f"{'nic ring/irq':<{width}}  {'':>9}  {'':>10}  {ring:8.2f}  {ring:8.2f}  {'':>7}"
        )
        for r in rows:
            total = r["queue_us"] + r["service_us"] + r["hold_us"]
            lines.append(
                f"{r['stage']:<{width}}  {r['queue_us']:9.2f}  {r['service_us']:10.2f}  "
                f"{r['hold_us']:8.2f}  {total:8.2f}  {r['visits']:7d}"
            )
        lines.append(
            f"{'sum':<{width}}  {'':>9}  {'':>10}  {'':>8}  {self.components_sum_us:8.2f}"
        )
        return "\n".join(lines)


def decompose(
    tracker: JourneyTracker, delivery_stages: frozenset = DELIVERY_STAGE_NAMES
) -> Decomposition:
    """Aggregate a tracker's complete journeys into a decomposition."""
    out = Decomposition(delivery_stages)
    for tid, hops in tracker.complete_journeys(delivery_stages):
        out.add_journey(hops, tracker.arrival_ns[tid])
    return out
