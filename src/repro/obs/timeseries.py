"""Interval metrics: per-window time series sampled on a sim timer.

End-of-run aggregates (``Telemetry`` counters) answer *how much*; the
paper's dynamics questions — does goodput dip when a fault window opens,
does the merge stage park skbs while a branch is stalled, which core
saturates first — need *when*.  :class:`IntervalMetrics` arms a
repeating simulator timer and, each ``interval_ns``, captures:

* **rate metrics** — deltas of telemetry counters over the interval:
  goodput (Gbps of delivered payload), delivered messages, cross-core
  handoffs, backlog drops, MFLOW merge skips;
* **gauge metrics** — instantaneous state: summed run-queue depth over
  all receiver cores, NIC RX ring occupancy, skbs parked in the
  reassembly buffers;
* **per-core utilization** — busy-time delta / interval for each core.

The tick callback only *reads* simulation state (counters, queue
lengths, busy accumulators), so arming it cannot perturb physics — an
instrumented run executes more simulator events but produces identical
counters, latencies, and throughput (pinned by ``tests/test_obs.py``).
"""

from __future__ import annotations

import csv
from typing import IO, Dict, List, Optional, Union

#: telemetry counters captured as per-interval deltas, with column names
_DELTA_COUNTERS = (
    ("delivered_msgs", "{proto}_delivered_messages"),
    ("handoffs", "handoffs"),
    ("backlog_drops", "backlog_drops"),
    ("merge_skips", "mflow_merge_skips"),
    ("nic_rx_packets", "nic_rx_packets"),
)


class IntervalMetrics:
    """Arms a repeating sim timer and accumulates one row per interval."""

    def __init__(
        self,
        sim,
        telemetry,
        cpus,
        pipeline=None,
        nic=None,
        merge_stage=None,
        proto: str = "tcp",
        interval_ns: float = 100_000.0,
    ):
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.sim = sim
        self.telemetry = telemetry
        self.cpus = cpus
        self.pipeline = pipeline
        self.nic = nic
        self.merge_stage = merge_stage
        self.proto = proto
        self.interval_ns = interval_ns
        self.rows: List[Dict[str, float]] = []
        self._bytes_counter = f"{proto}_delivered_bytes"
        self._last_counters: Dict[str, int] = {}
        self._last_busy: List[float] = []
        self._armed = False

    # --------------------------------------------------------------- timer
    def arm(self) -> None:
        """Start ticking every ``interval_ns`` from now until the run ends.

        Each tick reschedules the next, so the timer runs for the rest of
        the simulation; ``sim.run(until_ns=...)`` bounds it naturally.
        """
        if self._armed:
            return
        self._armed = True
        self._snapshot()
        self.sim.call_in(self.interval_ns, self._tick)

    def _snapshot(self) -> None:
        counters = self.telemetry.counters
        self._last_counters = {
            "goodput_bytes": counters.get(self._bytes_counter, 0)
        }
        for col, counter in _DELTA_COUNTERS:
            name = counter.format(proto=self.proto)
            self._last_counters[col] = counters.get(name, 0)
        self._last_busy = [core.total_busy_ns() for core in self.cpus]

    def _tick(self) -> None:
        counters = self.telemetry.counters
        last = self._last_counters
        row: Dict[str, float] = {"t_us": self.sim.now / 1e3}

        goodput_bytes = counters.get(self._bytes_counter, 0)
        row["goodput_gbps"] = (
            (goodput_bytes - last["goodput_bytes"]) * 8.0 / self.interval_ns
        )
        for col, counter in _DELTA_COUNTERS:
            name = counter.format(proto=self.proto)
            row[col] = counters.get(name, 0) - last[col]

        # gauges: instantaneous queue state at the tick boundary
        row["backlog_depth"] = float(
            sum(core.queue_depth for core in self.cpus)
        )
        if self.nic is not None:
            row["ring_depth"] = float(sum(len(q.ring) for q in self.nic._queues))
        if self.merge_stage is not None:
            row["merge_parked"] = float(self.merge_stage.parked_total())

        busy = [core.total_busy_ns() for core in self.cpus]
        for i, (now_ns, before_ns) in enumerate(zip(busy, self._last_busy)):
            row[f"util_core{i}"] = (now_ns - before_ns) / self.interval_ns
        self._last_busy = busy
        self._snapshot_counters_only(counters, goodput_bytes)

        self.rows.append(row)
        self.sim.call_in(self.interval_ns, self._tick)

    def _snapshot_counters_only(self, counters: Dict[str, int], goodput_bytes: int) -> None:
        self._last_counters["goodput_bytes"] = goodput_bytes
        for col, counter in _DELTA_COUNTERS:
            name = counter.format(proto=self.proto)
            self._last_counters[col] = counters.get(name, 0)

    # ------------------------------------------------------------ consumers
    @property
    def n_intervals(self) -> int:
        return len(self.rows)

    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order (rows share a schema
        unless optional gauges appeared later)."""
        cols: List[str] = []
        seen = set()
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    cols.append(key)
        return cols

    def to_dict(self) -> dict:
        """JSON-safe form for run records / artifacts."""
        return {
            "interval_ns": self.interval_ns,
            "columns": self.columns(),
            "rows": self.rows,
        }

    def write_csv(self, dest: Union[str, IO[str]]) -> int:
        """Write one CSV row per interval; returns the row count."""
        cols = self.columns()

        def _dump(fh) -> None:
            writer = csv.DictWriter(fh, fieldnames=cols, restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

        if hasattr(dest, "write"):
            _dump(dest)  # atomic-ok: stream (caller owns the file)
        else:
            import io

            from repro.resilience.atomic import atomic_write_text

            buf = io.StringIO(newline="")
            _dump(buf)
            atomic_write_text(dest, buf.getvalue())
        return len(self.rows)


def series(metrics: IntervalMetrics, column: str) -> List[Optional[float]]:
    """Extract one column as a list (None where a row lacks it)."""
    return [row.get(column) for row in metrics.rows]
