"""Chrome/Perfetto ``trace_events`` JSON export.

Converts a :class:`~repro.obs.recorder.FlightRecorder` buffer into the
`trace_events format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and https://ui.perfetto.dev:

* one **thread track per core** (``tid = core id``), carrying ``"X"``
  complete slices for every work item the core executed (stage runs,
  ``softirq:*`` entries, ``irq:*`` top halves, ``driver_poll:*``,
  ``ipi:*`` costs);
* a synthetic **"events" track** for instants not bound to a core
  (wire faults, quarantine transitions), plus per-core ``"i"`` instant
  markers for IRQ raises, IPIs, steering decisions, and fault hits.

Timestamps: the simulator runs in nanoseconds; trace_events wants
microseconds.  We export ``ts = t_ns / 1000`` as floats — both viewers
accept fractional µs, preserving ns resolution.
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from repro.obs.recorder import FlightRecorder

#: pid used for every track (one simulated machine == one "process")
TRACE_PID = 1
#: tid of the track collecting core-less instants (fault plan, wire, health)
GLOBAL_TRACK_TID = 1000

_NS_PER_US = 1e3


def _category(name: str) -> str:
    """Coarse slice category, used by the viewers for color/filter."""
    if ":" in name:
        return name.split(":", 1)[0]  # irq / softirq / ipi / driver_poll
    if name.startswith("fault_"):
        return "fault"
    if name.startswith("irq") or name.startswith("nic_"):
        return "irq"
    if name.startswith("softirq") or name.startswith("ipi"):
        return "softirq"
    if name.startswith("mflow_") or name.startswith("steer"):
        return "steering"
    return "stage"


def to_trace_events(rec: FlightRecorder, label: str = "repro") -> dict:
    """Build the JSON-object form of the trace (``{"traceEvents": [...]}``)."""
    events: List[dict] = []
    cores = rec.cores()

    # metadata: name the process and one thread per core, keeping the
    # Perfetto track order equal to the core id order.
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "args": {"name": f"{label} datapath"},
        }
    )
    for core in cores:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": core,
                "args": {"name": f"core {core}"},
            }
        )
        events.append(
            {"name": "thread_sort_index", "ph": "M", "pid": TRACE_PID, "tid": core,
             "args": {"sort_index": core}}
        )
    events.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": GLOBAL_TRACK_TID,
            "args": {"name": "events (no core)"},
        }
    )

    for ev in rec.events():
        tid = ev.core if ev.core >= 0 else GLOBAL_TRACK_TID
        out = {
            "name": ev.name,
            "cat": _category(ev.name),
            "pid": TRACE_PID,
            "tid": tid,
            "ts": ev.t_ns / _NS_PER_US,
        }
        if ev.kind == "X":
            out["ph"] = "X"
            out["dur"] = ev.dur_ns / _NS_PER_US
        else:
            out["ph"] = "i"
            # scope: thread-scoped when bound to a core, global otherwise
            out["s"] = "t" if ev.core >= 0 else "g"
        if ev.fields:
            out["args"] = {k: _jsonable(v) for k, v in ev.fields.items()}
        events.append(out)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "events_seen": rec.events_seen,
            "events_kept": rec.events_kept,
            "events_dropped": rec.events_dropped,
            # False => the buffer overflowed and slices were
            # reservoir-sampled; gaps in the tracks are sampling, not idleness
            "complete": rec.events_dropped == 0,
        },
    }


def _jsonable(v):
    if isinstance(v, (bool, int, float, str)) or v is None:
        return v
    return str(v)


def write_trace(rec: FlightRecorder, dest: Union[str, IO[str]], label: str = "repro") -> dict:
    """Serialize the trace to ``dest`` (path or file object); returns it."""
    trace = to_trace_events(rec, label=label)
    if hasattr(dest, "write"):
        json.dump(trace, dest)  # atomic-ok: stream (caller owns the file)
    else:
        from repro.resilience.atomic import atomic_write_json

        atomic_write_json(dest, trace, indent=None)
    return trace
