"""Always-on, exactly-mergeable per-stage latency histograms.

The flight recorder's journey decomposition (:mod:`repro.obs.decompose`)
is *sampled* — reservoir-bounded and off by default.  This module is the
complementary instrument: HdrHistogram-style log-bucketed latency
histograms recorded on **every** datapath hop, per ``(stage, core,
flow-class)``, cheap enough to leave on always.

Design constraints, in order:

* **Deterministic and inert.**  Recording draws no randomness and
  schedules no events, so an instrumented run's simulated timeline is
  bit-identical to an uninstrumented one; disabling histograms
  (``hist=False``) removes the payload without changing any measurement.
* **Exactly mergeable.**  The bucket geometry is a fixed module-level
  constant (never a per-run parameter), so histograms from different
  cores, sweep cells, repetitions, and resumed runs can be merged by
  plain bucket-wise integer addition.  All aggregates (``count``,
  ``sum_ns``, ``min_ns``, ``max_ns``) are integers — integer addition is
  associative and commutative, so merge order can never change a byte of
  the serialized result.
* **Zero-allocation record path.**  Counts live in preallocated integer
  arrays; the record path performs dict lookups and integer arithmetic
  only — no per-packet objects, tuples, or strings are created.

Bucket geometry (log-linear, HdrHistogram style)
------------------------------------------------

Values are integer simulated nanoseconds (floored).  The first
``LINEAR_MAX = 32`` buckets are exact (one per nanosecond); past that,
each power-of-two octave is split into 16 linear sub-buckets, giving a
worst-case relative error of ``1/16`` (~6%, ~3% at the midpoint) at any
magnitude.  960 buckets cover the full 63-bit range::

    v < 32:  index = v
    else:    k = bit_length(v) - 5          # octave beyond the linear zone
             index = 16*k + (v >> k)        # v >> k is in [16, 31]

The inverse (:func:`bucket_bounds`) recovers the half-open value range
``[lo, hi)`` of a bucket.  Geometry constants are serialized alongside
the counts so a reader can verify compatibility before merging.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "HIST_SCHEMA_VERSION",
    "LINEAR_MAX",
    "N_BUCKETS",
    "SUB_BUCKETS",
    "HistConfig",
    "LatencyHistogram",
    "StageHistograms",
    "bucket_bounds",
    "bucket_index",
    "bucket_mid",
    "merge_payloads",
    "merge_series",
    "resolve_hist",
    "series_mean_ns",
    "series_quantile_ns",
    "series_samples",
    "stage_rollup",
]

#: bump when the serialized payload layout changes incompatibly
HIST_SCHEMA_VERSION = 1

#: exact 1-ns buckets below this value
LINEAR_MAX = 32
#: linear sub-buckets per power-of-two octave past the linear zone
SUB_BUCKETS = 16
#: total buckets; covers every value up to 2**63 - 1
N_BUCKETS = 960

_SENTINEL_MIN = (1 << 63) - 1


def bucket_index(v: int) -> int:
    """Bucket index of integer nanosecond value ``v`` (clamped at 0)."""
    if v < LINEAR_MAX:
        return v if v > 0 else 0
    k = v.bit_length() - 5
    return (k << 4) + (v >> k)


def bucket_bounds(index: int) -> Tuple[int, int]:
    """Half-open value range ``[lo, hi)`` covered by bucket ``index``."""
    if not 0 <= index < N_BUCKETS:
        raise ValueError(f"bucket index out of range: {index}")
    if index < LINEAR_MAX:
        return (index, index + 1)
    k = (index >> 4) - 1
    m = (index & 15) + SUB_BUCKETS
    return (m << k, (m + 1) << k)


def bucket_mid(index: int) -> int:
    """Representative (midpoint) value of bucket ``index``."""
    lo, hi = bucket_bounds(index)
    return (lo + hi - 1) >> 1 if hi - lo > 1 else lo


# ------------------------------------------------------------- configuration
HistConfigLike = Union[None, bool, Mapping[str, Any], "HistConfig"]


@dataclass(frozen=True)
class HistConfig:
    """Knobs for the always-on stage histograms.

    Mirrors :class:`repro.obs.config.ObsConfig`: spec-embeddable as a
    plain dict, and an ``enabled=False`` config resolves to ``None`` so a
    disabled config threaded through a spec cannot perturb the run.
    """

    #: master switch; ``False`` resolves to no histograms at all
    enabled: bool = True
    #: also record system (non-stage) work: irq, driver polls, softirq
    #: entries, IPIs, steering dispatch
    core_tags: bool = True

    def validate(self) -> None:  # geometry is fixed; nothing else to check
        return None

    def to_dict(self) -> dict:
        return asdict(self)


def resolve_hist(hist: HistConfigLike) -> Optional[HistConfig]:
    """Normalize any accepted ``hist=`` value to ``HistConfig`` or ``None``.

    ``True`` (the scenario default — histograms are *always on* unless
    explicitly disabled) resolves to the default config; ``None`` /
    ``False`` / ``{"enabled": False}`` resolve to ``None``.
    """
    if hist is None or hist is False:
        return None
    if hist is True:
        cfg = HistConfig()
    elif isinstance(hist, HistConfig):
        cfg = hist
    elif isinstance(hist, Mapping):
        cfg = HistConfig(**dict(hist))
    else:
        raise TypeError(
            f"cannot resolve hist config from {type(hist).__name__}: {hist!r}"
        )
    if not cfg.enabled:
        return None
    cfg.validate()
    return cfg


# ---------------------------------------------------------------- histograms
class LatencyHistogram:
    """One latency distribution: preallocated counts + exact aggregates."""

    __slots__ = ("counts", "count", "sum_ns", "min_ns", "max_ns")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * N_BUCKETS
        self.count = 0
        self.sum_ns = 0
        self.min_ns = _SENTINEL_MIN
        self.max_ns = 0

    def record(self, value_ns: float) -> None:
        """Record one value (float sim-ns, floored to integer ns)."""
        v = int(value_ns)
        if v < LINEAR_MAX:
            if v < 0:
                v = 0
            idx = v
        else:
            k = v.bit_length() - 5
            idx = (k << 4) + (v >> k)
        self.counts[idx] += 1
        self.count += 1
        self.sum_ns += v
        if v < self.min_ns:
            self.min_ns = v
        if v > self.max_ns:
            self.max_ns = v

    def to_dict(self) -> Dict[str, Any]:
        """Sparse, JSON-safe, merge-order-invariant serialization."""
        counts = self.counts
        return {
            "count": self.count,
            "sum_ns": self.sum_ns,
            "min_ns": self.min_ns if self.count else 0,
            "max_ns": self.max_ns,
            "buckets": [[i, c] for i, c in enumerate(counts) if c],
        }


class StageHistograms:
    """Every histogram family of one run.

    Two families:

    * ``stages`` — per ``(stage, core, flow-class)``, a *queue* histogram
      (run-queue wait between dispatch and execution start) and a
      *service* histogram (the work item's execution span, jitter and
      handoff penalty included), recorded by the pipeline on every hop;
    * ``cores`` — per ``(tag, core)`` service histograms for system work
      that is not a datapath stage (``irq:*``, ``driver_poll:*``,
      ``softirq:*``, ``ipi:*``, ``steer_dispatch``), recorded by the
      core's completion path.

    The object is pickled inside simulator checkpoints with the rest of
    the scenario graph, so a killed-and-resumed run carries its exact
    counts forward.
    """

    def __init__(self, config: Optional[HistConfig] = None):
        self.config = config if config is not None else HistConfig()
        #: stage-name set the pipeline claims; the core path skips these
        #: so stage work is never double-counted into the core family
        self.stage_names: frozenset = frozenset()
        # stage -> core_id -> flow_class -> [queue_hist, service_hist]
        self._stages: Dict[str, Dict[int, Dict[str, List[LatencyHistogram]]]] = {}
        # tag -> core_id -> service_hist
        self._cores: Dict[str, Dict[int, LatencyHistogram]] = {}

    # ------------------------------------------------------------ recording
    def record_stage(
        self, stage: str, core_id: int, flow_class: str,
        queue_ns: float, service_ns: float,
    ) -> None:
        """One executed hop (hot path: lookups + integer math only)."""
        by_core = self._stages.get(stage)
        if by_core is None:
            by_core = self._stages[stage] = {}
        by_class = by_core.get(core_id)
        if by_class is None:
            by_class = by_core[core_id] = {}
        pair = by_class.get(flow_class)
        if pair is None:
            pair = by_class[flow_class] = [LatencyHistogram(), LatencyHistogram()]
        pair[0].record(queue_ns)
        pair[1].record(service_ns)

    def record_core(self, tag: str, core_id: int, service_ns: float) -> None:
        """One completed non-stage work item."""
        if not self.config.core_tags:
            return
        by_core = self._cores.get(tag)
        if by_core is None:
            by_core = self._cores[tag] = {}
        hist = by_core.get(core_id)
        if hist is None:
            hist = by_core[core_id] = LatencyHistogram()
        hist.record(service_ns)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """The run-record / checkpoint payload, keys sorted for stability."""
        stages: Dict[str, Any] = {}
        for stage in sorted(self._stages):
            by_core = self._stages[stage]
            stages[stage] = {
                str(core_id): {
                    flow_class: {
                        "queue": pair[0].to_dict(),
                        "service": pair[1].to_dict(),
                    }
                    for flow_class, pair in sorted(by_core[core_id].items())
                }
                for core_id in sorted(by_core)
            }
        cores: Dict[str, Any] = {}
        for tag in sorted(self._cores):
            by_core = self._cores[tag]
            cores[tag] = {
                str(core_id): by_core[core_id].to_dict()
                for core_id in sorted(by_core)
            }
        return {
            "schema": HIST_SCHEMA_VERSION,
            "geometry": {
                "linear_max": LINEAR_MAX,
                "sub_buckets": SUB_BUCKETS,
                "n_buckets": N_BUCKETS,
            },
            "config": self.config.to_dict(),
            "stages": stages,
            "cores": cores,
        }


# ------------------------------------------------------- payload-level algebra
def _check_geometry(payload: Mapping[str, Any]) -> None:
    geo = payload.get("geometry") or {}
    mine = {
        "linear_max": LINEAR_MAX,
        "sub_buckets": SUB_BUCKETS,
        "n_buckets": N_BUCKETS,
    }
    if {k: geo.get(k) for k in mine} != mine:
        raise ValueError(f"incompatible histogram geometry: {geo!r}")


def _empty_series() -> Dict[str, Any]:
    return {"count": 0, "sum_ns": 0, "min_ns": 0, "max_ns": 0, "buckets": []}


def merge_series(series: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Bucket-wise sum of serialized histogram series (exact, any order)."""
    counts: Dict[int, int] = {}
    count = 0
    sum_ns = 0
    min_ns = _SENTINEL_MIN
    max_ns = 0
    for ser in series:
        n = int(ser.get("count", 0))
        if n == 0:
            continue
        count += n
        sum_ns += int(ser.get("sum_ns", 0))
        min_ns = min(min_ns, int(ser.get("min_ns", 0)))
        max_ns = max(max_ns, int(ser.get("max_ns", 0)))
        for idx, c in ser.get("buckets", ()):
            counts[idx] = counts.get(idx, 0) + int(c)
    if count == 0:
        return _empty_series()
    return {
        "count": count,
        "sum_ns": sum_ns,
        "min_ns": min_ns,
        "max_ns": max_ns,
        "buckets": [[i, counts[i]] for i in sorted(counts)],
    }


def merge_payloads(payloads: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge whole ``StageHistograms.to_dict()`` payloads (cells, reps,
    resumed halves) into one; byte-identical regardless of input order."""
    stage_acc: Dict[str, Dict[str, Dict[str, List[Dict[str, Any]]]]] = {}
    core_acc: Dict[str, Dict[str, List[Dict[str, Any]]]] = {}
    config: Dict[str, Any] = {}
    seen = 0
    for payload in payloads:
        if not payload:
            continue
        _check_geometry(payload)
        seen += 1
        if not config:
            config = dict(payload.get("config") or {})
        for stage, by_core in (payload.get("stages") or {}).items():
            s = stage_acc.setdefault(stage, {})
            for core_id, by_class in by_core.items():
                c = s.setdefault(core_id, {})
                for flow_class, kinds in by_class.items():
                    k = c.setdefault(flow_class, {"queue": [], "service": []})
                    k["queue"].append(kinds.get("queue") or _empty_series())
                    k["service"].append(kinds.get("service") or _empty_series())
        for tag, by_core in (payload.get("cores") or {}).items():
            t = core_acc.setdefault(tag, {})
            for core_id, ser in by_core.items():
                t.setdefault(core_id, []).append(ser)
    if seen == 0:
        raise ValueError("no histogram payloads to merge")
    return {
        "schema": HIST_SCHEMA_VERSION,
        "geometry": {
            "linear_max": LINEAR_MAX,
            "sub_buckets": SUB_BUCKETS,
            "n_buckets": N_BUCKETS,
        },
        "config": config,
        "stages": {
            stage: {
                core_id: {
                    flow_class: {
                        "queue": merge_series(k["queue"]),
                        "service": merge_series(k["service"]),
                    }
                    for flow_class, k in sorted(stage_acc[stage][core_id].items())
                }
                for core_id in sorted(stage_acc[stage], key=int)
            }
            for stage in sorted(stage_acc)
        },
        "cores": {
            tag: {
                core_id: merge_series(sers)
                for core_id, sers in sorted(core_acc[tag].items(), key=lambda kv: int(kv[0]))
            }
            for tag in sorted(core_acc)
        },
    }


def stage_rollup(payload: Mapping[str, Any]) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Collapse cores and flow classes: ``{stage: {queue, service}}``.

    Includes the core-tag family as pseudo-stages (their tag names never
    collide with datapath stage names), each with an empty queue series —
    so a diff over the rollup sees softirq/IRQ/IPI work too.
    """
    _check_geometry(payload)
    out: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for stage, by_core in (payload.get("stages") or {}).items():
        queues: List[Mapping[str, Any]] = []
        services: List[Mapping[str, Any]] = []
        for by_class in by_core.values():
            for kinds in by_class.values():
                queues.append(kinds.get("queue") or _empty_series())
                services.append(kinds.get("service") or _empty_series())
        out[stage] = {
            "queue": merge_series(queues),
            "service": merge_series(services),
        }
    for tag, by_core in (payload.get("cores") or {}).items():
        out[tag] = {
            "queue": _empty_series(),
            "service": merge_series(by_core.values()),
        }
    return out


# -------------------------------------------------------------- series maths
def series_mean_ns(series: Mapping[str, Any]) -> float:
    """Exact mean (from the integer sum, not the quantized buckets)."""
    n = int(series.get("count", 0))
    return int(series.get("sum_ns", 0)) / n if n else 0.0


def series_quantile_ns(series: Mapping[str, Any], q: float) -> int:
    """Value at quantile ``q`` (bucket-midpoint resolution, exact at the
    recorded ``min``/``max`` endpoints)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = int(series.get("count", 0))
    if total == 0:
        return 0
    if q <= 0.0:
        return int(series.get("min_ns", 0))
    if q >= 1.0:
        return int(series.get("max_ns", 0))
    rank = q * (total - 1)
    seen = 0
    for idx, c in series.get("buckets", ()):
        seen += int(c)
        if seen > rank:
            return bucket_mid(int(idx))
    return int(series.get("max_ns", 0))


def series_samples(series: Mapping[str, Any], cap: int = 2000) -> List[float]:
    """A deterministic, order-free sample reconstruction for bootstrap CIs.

    Systematic sampling at bucket-midpoint resolution: ``n = min(count,
    cap)`` evenly spaced ranks are materialized by one cumulative walk of
    the sparse buckets.  Feed the result to
    :func:`repro.perf.stats.bootstrap_ci` / ``SampleStats``.
    """
    total = int(series.get("count", 0))
    if total == 0:
        return []
    n = min(total, cap)
    buckets = [(int(i), int(c)) for i, c in series.get("buckets", ())]
    samples: List[float] = []
    seen = 0
    b = 0
    for j in range(n):
        rank = (j + 0.5) * total / n
        while b < len(buckets) and seen + buckets[b][1] < rank:
            seen += buckets[b][1]
            b += 1
        idx = buckets[b][0] if b < len(buckets) else buckets[-1][0]
        samples.append(float(bucket_mid(idx)))
    return samples
