"""The flight-recorder event bus.

A :class:`FlightRecorder` is a bounded buffer of structured events that
every datapath layer probes into.  Two event shapes exist:

* **instants** (``kind='I'``) — a point in time: an IRQ raise, an IPI,
  a fault injection, a merge skip, a quarantine transition;
* **spans** (``kind='X'``) — a duration on one core: a work item's
  execution window (stage run, softirq entry, driver poll).  Spans are
  recorded *complete* (at their end, with start and duration) so that
  buffer sampling can never split a begin from its end.

Past ``capacity`` the buffer degrades to deterministic reservoir
sampling (Algorithm R on a dedicated seeded PRNG): every event seen has
an equal probability of surviving, the kept set is a pure function of
``(seed, event sequence)`` — independent of wall clock, process, or
worker count — and below the cap behavior is exact (no randomness is
consumed at all).

The recorder is pull-based: producers call :meth:`instant`/:meth:`span`,
consumers read :meth:`events` (time-sorted) after the run.  Producers
hold ``obs`` references that are ``None`` when recording is disabled, so
the disabled hot path is a single attribute test.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional


class Event:
    """One recorded event (see module docstring for kinds)."""

    __slots__ = ("seq", "kind", "name", "t_ns", "dur_ns", "core", "fields")

    def __init__(
        self,
        seq: int,
        kind: str,
        name: str,
        t_ns: float,
        dur_ns: float = 0.0,
        core: int = -1,
        fields: Optional[Dict[str, Any]] = None,
    ):
        self.seq = seq
        self.kind = kind
        self.name = name
        self.t_ns = t_ns
        self.dur_ns = dur_ns
        self.core = core
        self.fields = fields

    @property
    def end_ns(self) -> float:
        return self.t_ns + self.dur_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f" core={self.core}" if self.core >= 0 else ""
        dur = f" dur={self.dur_ns:.0f}" if self.kind == "X" else ""
        return f"<Event {self.kind} {self.name} t={self.t_ns:.0f}{dur}{where}>"


class FlightRecorder:
    """Bounded structured event buffer with deterministic sampling."""

    def __init__(self, capacity: int = 200_000, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self._rng = random.Random(seed ^ 0x5F17E7)
        self._buf: List[Event] = []
        self.events_seen = 0
        self._clock = None  # optional: a Simulator supplying default timestamps

    # ------------------------------------------------------------- producers
    def bind_clock(self, sim) -> None:
        """Attach a simulator so probes may omit explicit timestamps."""
        self._clock = sim

    def instant(self, name: str, t_ns: Optional[float] = None, core: int = -1, **fields) -> None:
        """Record a point event (IRQ, IPI, fault, steering decision...)."""
        if t_ns is None:
            t_ns = self._clock.now
        self._add(Event(self.events_seen, "I", name, t_ns, 0.0, core, fields or None))

    def span(self, name: str, start_ns: float, end_ns: float, core: int = -1, **fields) -> None:
        """Record a complete execution slice on ``core``."""
        self._add(
            Event(
                self.events_seen, "X", name, start_ns, end_ns - start_ns, core, fields or None
            )
        )

    def _add(self, ev: Event) -> None:
        self.events_seen += 1
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(ev)
            return
        # Algorithm R: keep each of the n events seen with prob capacity/n.
        j = self._rng.randrange(self.events_seen)
        if j < self.capacity:
            buf[j] = ev

    # ------------------------------------------------------------- consumers
    @property
    def events_kept(self) -> int:
        return len(self._buf)

    @property
    def events_dropped(self) -> int:
        return self.events_seen - len(self._buf)

    def events(self) -> List[Event]:
        """Kept events, time-ordered (probe order breaks timestamp ties)."""
        return sorted(self._buf, key=lambda e: (e.t_ns, e.seq))

    def iter_named(self, *names: str) -> Iterable[Event]:
        wanted = frozenset(names)
        return (ev for ev in self.events() if ev.name in wanted)

    def count_named(self, name: str) -> int:
        return sum(1 for ev in self._buf if ev.name == name)

    def cores(self) -> List[int]:
        """Sorted core ids that produced at least one event."""
        return sorted({ev.core for ev in self._buf if ev.core >= 0})
