"""Run-wide observability: the flight recorder and its consumers.

The paper's core evidence is *attribution* — Fig. 4-6 decompose where
time goes in the prolonged overlay pipeline and show softirq
serialization as the bottleneck.  This package gives the reproduction
the same power as a first-class subsystem:

* :mod:`repro.obs.recorder` — a cheap structured event bus
  (:class:`FlightRecorder`).  Every layer of the datapath probes into it:
  NIC IRQ raise/fire, softirq entry/exit per core, stage execution
  start/end, steering decisions (micro-flow split/merge), IPIs, fault
  injections, and health-monitor quarantine transitions.
* :mod:`repro.obs.timeseries` — per-interval metrics (goodput, per-core
  utilization, backlog depth, merge-skip rate) sampled on a sim timer.
* :mod:`repro.obs.perfetto` — Chrome ``trace_events`` JSON export (one
  track per core; slices for softirq/stage execution, instants for
  IRQs/IPIs/faults) loadable in ``chrome://tracing`` / Perfetto.
* :mod:`repro.obs.decompose` — per-packet critical-path journeys split
  into per-stage queueing vs service vs hold (GRO hold / merge wait),
  reproducing the Fig. 5/6 latency-attribution analysis.
* :mod:`repro.obs.hist` — always-on exact per-stage latency histograms
  (deterministic log-bucketed counts per stage × core × flow class) with
  a lossless merge algebra; the substrate for ``repro diff`` regression
  attribution (:mod:`repro.obs.diff`).

**Zero cost when disabled.**  Components hold an ``obs`` reference that
is ``None`` by default; hot paths guard every probe with a single
``if obs is not None`` check and the disabled path schedules no events,
draws no randomness, and allocates nothing — run results and spec cache
keys are bit-identical to an uninstrumented build.
"""

from repro.obs.config import ObsConfig, resolve_obs
from repro.obs.decompose import Decomposition, JourneyTracker, decompose
from repro.obs.hist import (
    HistConfig,
    LatencyHistogram,
    StageHistograms,
    merge_payloads,
    resolve_hist,
    stage_rollup,
)
from repro.obs.perfetto import to_trace_events, write_trace
from repro.obs.recorder import Event, FlightRecorder
from repro.obs.timeseries import IntervalMetrics

__all__ = [
    "ObsConfig",
    "resolve_obs",
    "HistConfig",
    "LatencyHistogram",
    "StageHistograms",
    "merge_payloads",
    "resolve_hist",
    "stage_rollup",
    "FlightRecorder",
    "Event",
    "IntervalMetrics",
    "JourneyTracker",
    "Decomposition",
    "decompose",
    "to_trace_events",
    "write_trace",
]
