"""OpenMetrics (Prometheus textfile) export of sweep telemetry.

``repro metrics <sweep-dir>`` renders the :class:`SweepStatus` model to
the `OpenMetrics text format
<https://github.com/prometheus/OpenMetrics/blob/main/specification/OpenMetrics.md>`_,
suitable for the node-exporter textfile collector or any Prometheus
scrape pipeline.  Two metric tiers:

* **sweep counters** — cells by state, retries, quarantines, checkpoint
  restores, cache-hit ratio, summed wall time, aggregate simulator
  events/sec, finished flag;
* **per-run headlines** (once ``runs/*.json`` records exist) — wall
  time, events/sec, throughput, p99 latency, fault-injection and
  MFLOW-degradation counters, labeled ``{experiment, cell}``;
* **per-stage histograms** (records carrying a ``hist`` payload —
  :mod:`repro.obs.hist`) — visit counts and exact mean / p99 queueing
  and service latencies, labeled ``{experiment, cell, stage}``.

The exposition is schema-versioned like ``BENCH_*.json``: a
``repro_telemetry_info`` gauge carries ``schema_version`` so dashboards
can gate on layout changes.  :func:`parse_openmetrics` is a strict
structural validator (used by CI and the tests) — it checks TYPE
declarations, sample/label syntax, counter ``_total`` suffixes,
duplicate series, and the mandatory ``# EOF`` trailer.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.obs.live.status import SweepStatus

__all__ = [
    "OPENMETRICS_SCHEMA_VERSION",
    "Family",
    "OpenMetricsError",
    "parse_openmetrics",
    "render_openmetrics",
    "sweep_families",
]

#: bump when metric names/labels change incompatibly
OPENMETRICS_SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


class OpenMetricsError(ValueError):
    """The text is not a valid OpenMetrics exposition."""


@dataclass
class Family:
    """One metric family: TYPE + HELP + its samples."""

    name: str
    type: str                     # "gauge" | "counter"
    help: str = ""
    samples: List[Tuple[Dict[str, str], float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise OpenMetricsError(f"bad metric name {self.name!r}")
        if self.type not in ("gauge", "counter"):
            raise OpenMetricsError(f"bad metric type {self.type!r}")

    @property
    def sample_name(self) -> str:
        """Counters expose samples as ``<name>_total`` per the spec."""
        return f"{self.name}_total" if self.type == "counter" else self.name

    def add(self, value: float, **labels: str) -> "Family":
        self.samples.append(({k: str(v) for k, v in labels.items()}, float(value)))
        return self


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _fmt_value(value: float) -> str:
    if math.isnan(value) or math.isinf(value):
        raise OpenMetricsError(f"non-finite sample value {value!r}")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def render_openmetrics(families: Sequence[Family]) -> str:
    """Serialize families to the OpenMetrics text exposition."""
    lines: List[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for labels, value in family.samples:
            for key in labels:
                if not _LABEL_NAME_RE.match(key):
                    raise OpenMetricsError(f"bad label name {key!r}")
            label_str = ",".join(
                f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
            )
            label_part = f"{{{label_str}}}" if label_str else ""
            lines.append(f"{family.sample_name}{label_part} {_fmt_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------- building
def _cell_label(cell) -> str:
    return cell.label or cell.spec_key[:16]


def sweep_families(statuses: Sequence[SweepStatus]) -> List[Family]:
    """The full family list for one or more sweeps."""
    info = Family(
        "repro_telemetry_info", "gauge",
        "Sweep-telemetry exposition identity; schema_version gates layout.",
    ).add(1, schema_version=str(OPENMETRICS_SCHEMA_VERSION))

    cells = Family(
        "repro_sweep_cells", "gauge", "Sweep cells currently in each lifecycle state."
    )
    specs = Family("repro_sweep_specs", "gauge", "Total cells in the sweep matrix.")
    finished = Family(
        "repro_sweep_finished", "gauge", "1 once the sweep journaled sweep_end."
    )
    retries = Family(
        "repro_sweep_retries", "counter", "Cell retries scheduled after crash/timeout/exception."
    )
    restores = Family(
        "repro_sweep_checkpoint_restores", "counter",
        "Cells resumed from a simulator checkpoint instead of from scratch.",
    )
    hit_ratio = Family(
        "repro_sweep_cache_hit_ratio", "gauge",
        "Cached cells over finished cells (content-addressed result cache).",
    )
    wall = Family(
        "repro_sweep_wall_seconds", "gauge", "Summed wall time of executed cells."
    )
    events = Family(
        "repro_sweep_events", "counter", "Simulator events executed across live cells."
    )
    rate = Family(
        "repro_sweep_events_per_second", "gauge",
        "Aggregate simulator event throughput over executed cells.",
    )
    torn = Family(
        "repro_sweep_journal_torn_lines", "gauge",
        "Unparseable journal lines skipped by the tailing reader.",
    )
    runners = Family(
        "repro_sweep_runners", "gauge",
        "Pool runners by state (socket executor: live/lost/unreachable).",
    )
    redispatches = Family(
        "repro_sweep_redispatches", "counter",
        "Cells re-dispatched to a surviving runner after losing theirs.",
    )
    degraded = Family(
        "repro_sweep_degraded", "gauge",
        "1 once the pool drained to zero runners and fell back to local execution.",
    )

    run_wall = Family("repro_run_wall_seconds", "gauge", "One cell's wall time.")
    run_rate = Family(
        "repro_run_events_per_second", "gauge", "One cell's simulator event rate."
    )
    run_tput = Family(
        "repro_run_throughput_gbps", "gauge", "One cell's measured goodput."
    )
    run_p99 = Family(
        "repro_run_p99_latency_microseconds", "gauge",
        "One cell's p99 message latency.",
    )
    run_faults = Family(
        "repro_run_fault_injections", "counter",
        "Fault injections fired during one cell's run.",
    )
    run_degraded = Family(
        "repro_run_degradation_events", "counter",
        "MFLOW degradation/readmission transitions during one cell's run.",
    )
    stage_visits = Family(
        "repro_run_stage_visits", "counter",
        "Packets that executed one datapath stage during one cell's run.",
    )
    stage_queue_mean = Family(
        "repro_run_stage_queue_mean_nanoseconds", "gauge",
        "Exact mean run-queue wait before one stage (stage histograms).",
    )
    stage_queue_p99 = Family(
        "repro_run_stage_queue_p99_nanoseconds", "gauge",
        "p99 run-queue wait before one stage (bucket-midpoint resolution).",
    )
    stage_service_mean = Family(
        "repro_run_stage_service_mean_nanoseconds", "gauge",
        "Exact mean execution span of one stage (stage histograms).",
    )
    stage_service_p99 = Family(
        "repro_run_stage_service_p99_nanoseconds", "gauge",
        "p99 execution span of one stage (bucket-midpoint resolution).",
    )

    for status in statuses:
        exp = status.experiment
        counts = status.counts()
        for state, count in counts.items():
            cells.add(count, experiment=exp, state=state)
        specs.add(status.n_specs, experiment=exp)
        finished.add(1 if status.finished else 0, experiment=exp)
        retries.add(status.retries_total, experiment=exp)
        restores.add(status.checkpoint_restores_total, experiment=exp)
        hit_ratio.add(round(status.cache_hit_ratio, 6), experiment=exp)
        wall.add(round(status.wall_time_total_s, 6), experiment=exp)
        events.add(status.events_total, experiment=exp)
        rate.add(round(status.events_per_sec_aggregate, 3), experiment=exp)
        torn.add(status.torn_lines, experiment=exp)
        if status.runners:
            by_state: Dict[str, int] = {}
            for info_dict in status.runners.values():
                state = str(info_dict.get("state", "unknown"))
                by_state[state] = by_state.get(state, 0) + 1
            for state, count in sorted(by_state.items()):
                runners.add(count, experiment=exp, state=state)
        if status.redispatches_total:
            redispatches.add(status.redispatches_total, experiment=exp)
        if status.degraded:
            degraded.add(1, experiment=exp)
        for cell in status.cells:
            if not cell.terminal or cell.cached:
                continue
            labels = {"experiment": exp, "cell": _cell_label(cell)}
            run_wall.add(round(cell.wall_time_s, 6), **labels)
            run_rate.add(round(cell.events_per_sec, 3), **labels)
            if cell.throughput_gbps is not None:
                run_tput.add(round(cell.throughput_gbps, 6), **labels)
            if cell.p99_us is not None:
                run_p99.add(round(cell.p99_us, 6), **labels)
            if cell.fault_injections:
                run_faults.add(cell.fault_injections, **labels)
            if cell.degradation_events:
                run_degraded.add(cell.degradation_events, **labels)
            record = status.records.get(cell.spec_key) or {}
            hist = (record.get("measurements") or {}).get("hist")
            if hist:
                _add_stage_samples(
                    hist, labels, stage_visits,
                    stage_queue_mean, stage_queue_p99,
                    stage_service_mean, stage_service_p99,
                )

    families = [
        info, cells, specs, finished, retries, restores, hit_ratio, wall,
        events, rate, torn, runners, redispatches, degraded,
        run_wall, run_rate, run_tput, run_p99,
        run_faults, run_degraded, stage_visits,
        stage_queue_mean, stage_queue_p99,
        stage_service_mean, stage_service_p99,
    ]
    return [f for f in families if f.samples]


def _add_stage_samples(
    hist: Dict[str, Any],
    labels: Dict[str, str],
    visits: Family,
    queue_mean: Family,
    queue_p99: Family,
    service_mean: Family,
    service_p99: Family,
) -> None:
    """One record's hist payload -> per-stage samples (rollup over
    cores and flow classes; core-tag system work rides along as
    pseudo-stages with no queue series)."""
    from repro.obs.hist import series_mean_ns, series_quantile_ns, stage_rollup

    try:
        rollup = stage_rollup(hist)
    except ValueError:
        return  # foreign geometry: skip rather than mislabel
    for stage in sorted(rollup):
        kinds = rollup[stage]
        service = kinds.get("service") or {}
        if not service.get("count"):
            continue
        stage_labels = dict(labels, stage=stage)
        visits.add(int(service["count"]), **stage_labels)
        service_mean.add(round(series_mean_ns(service), 3), **stage_labels)
        service_p99.add(series_quantile_ns(service, 0.99), **stage_labels)
        queue = kinds.get("queue") or {}
        if queue.get("count"):
            queue_mean.add(round(series_mean_ns(queue), 3), **stage_labels)
            queue_p99.add(series_quantile_ns(queue, 0.99), **stage_labels)


# -------------------------------------------------------------------- parsing
def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Validate an exposition; returns ``{family: {type, samples}}``.

    Strict on structure (this is the CI gate): unknown line shapes,
    samples without a preceding TYPE, counter samples missing the
    ``_total`` suffix, duplicate series, non-float values, or a missing
    ``# EOF`` trailer all raise :class:`OpenMetricsError`.
    """
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        raise OpenMetricsError("exposition must end with '# EOF'")
    families: Dict[str, Dict[str, Any]] = {}
    seen_series = set()
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line.strip():
            raise OpenMetricsError(f"line {lineno}: blank line")
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise OpenMetricsError(f"line {lineno}: malformed HELP")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise OpenMetricsError(f"line {lineno}: malformed TYPE")
            name, mtype = parts[2], parts[3]
            if mtype not in ("gauge", "counter", "info"):
                raise OpenMetricsError(f"line {lineno}: unknown type {mtype!r}")
            if name in families:
                raise OpenMetricsError(f"line {lineno}: duplicate TYPE for {name}")
            families[name] = {"type": mtype, "samples": []}
            continue
        if line.startswith("#"):
            raise OpenMetricsError(f"line {lineno}: unknown comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise OpenMetricsError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = match.group("name")
        family_name = sample_name
        if sample_name.endswith("_total"):
            family_name = sample_name[: -len("_total")]
        if sample_name in families:
            family_name = sample_name
        family = families.get(family_name)
        if family is None:
            raise OpenMetricsError(
                f"line {lineno}: sample {sample_name!r} has no TYPE declaration"
            )
        if family["type"] == "counter" and not sample_name.endswith("_total"):
            raise OpenMetricsError(
                f"line {lineno}: counter sample {sample_name!r} must end in _total"
            )
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _split_label_pairs(raw_labels, lineno):
                pair_match = _LABEL_PAIR_RE.match(pair)
                if pair_match is None:
                    raise OpenMetricsError(f"line {lineno}: bad label pair {pair!r}")
                labels[pair_match.group("key")] = pair_match.group("value")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise OpenMetricsError(f"line {lineno}: bad value") from exc
        series = (sample_name, tuple(sorted(labels.items())))
        if series in seen_series:
            raise OpenMetricsError(f"line {lineno}: duplicate series {series}")
        seen_series.add(series)
        family["samples"].append({"labels": labels, "value": value})
    return families


def _split_label_pairs(raw: str, lineno: int) -> List[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""
    pairs, buf, in_quotes, escaped = [], [], False, False
    for ch in raw:
        if escaped:
            buf.append(ch)
            escaped = False
            continue
        if ch == "\\" and in_quotes:
            buf.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            buf.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(buf))
            buf = []
            continue
        buf.append(ch)
    if in_quotes:
        raise OpenMetricsError(f"line {lineno}: unterminated label value")
    if buf:
        pairs.append("".join(buf))
    return pairs
