"""Sweep-level live telemetry over the RunEngine journal.

Everything in this package is a *reader* of artifacts the runner
already writes (``sweep.json``, ``journal.jsonl``, ``runs/*.json``) —
it never holds a lock, never blocks the engine, and is safe to point
at a sweep directory that is mid-flight or half-written after a crash.

Deliberately **not** imported from :mod:`repro.obs`'s package init:
``repro.obs`` is imported by the workload layer, which the runner
imports, and this package imports the runner — importing it eagerly
would cycle.  Import ``repro.obs.live`` (or its submodules) directly.
"""

from repro.obs.live.openmetrics import (
    OPENMETRICS_SCHEMA_VERSION,
    Family,
    OpenMetricsError,
    parse_openmetrics,
    render_openmetrics,
    sweep_families,
)
from repro.obs.live.report import (
    REPORT_SCHEMA_VERSION,
    build_html,
    build_markdown,
    write_report,
)
from repro.obs.live.status import (
    TOP_SCHEMA_VERSION,
    CellStatus,
    StatusError,
    StatusLine,
    SweepProgress,
    SweepStatus,
    find_sweep_dirs,
    load_statuses,
)
from repro.obs.live.top import render, status_document, top, watch

__all__ = [
    "OPENMETRICS_SCHEMA_VERSION",
    "REPORT_SCHEMA_VERSION",
    "TOP_SCHEMA_VERSION",
    "CellStatus",
    "Family",
    "OpenMetricsError",
    "StatusError",
    "StatusLine",
    "SweepProgress",
    "SweepStatus",
    "build_html",
    "build_markdown",
    "find_sweep_dirs",
    "load_statuses",
    "parse_openmetrics",
    "render",
    "render_openmetrics",
    "status_document",
    "sweep_families",
    "top",
    "watch",
    "write_report",
]
