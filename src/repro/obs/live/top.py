"""``repro top <sweep-dir>`` — a live terminal view of a sweep.

Tails the sweep's ``journal.jsonl`` (torn-tail tolerant, so watching a
journal that is being appended to is always safe) and renders a
refreshing table of cells: phase, attempts, retries, checkpoint
restores, wall time, events/sec, and headline throughput once run
records exist.  A one-line summary above the table carries the sweep
aggregates and an ETA extrapolated from completed live cells.

Two modes:

* **follow** (default, a tty) — clear-and-redraw every ``interval``
  seconds until every sweep under the directory has journaled its
  ``sweep_end`` (or ctrl-C);
* **``--once``** — render a single snapshot and exit; with ``--json``
  the snapshot is the schema-versioned machine-readable status document
  (the form a remote fleet coordinator would poll).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, List, Optional

from repro.obs.live.status import (
    TOP_SCHEMA_VERSION,
    SweepStatus,
    load_statuses,
)

__all__ = ["render", "status_document", "top", "watch"]

#: ANSI clear-screen + home, the whole "UI framework"
_CLEAR = "\x1b[2J\x1b[H"

_LABEL_WIDTH = 34


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "eta ?"
    if eta_s <= 0:
        return "done"
    return f"eta {eta_s:.0f}s"


def _fmt_rate(events_per_sec: float) -> str:
    if events_per_sec <= 0:
        return "-"
    return f"{events_per_sec / 1e3:.0f}k"


def _summary_line(status: SweepStatus) -> str:
    counts = status.counts()
    states = " ".join(
        f"{phase}={counts[phase]}" for phase in
        ("done", "cached", "running", "retrying", "queued", "quarantined")
        if counts.get(phase)
    ) or "queued=0"
    parts = [
        f"sweep {status.experiment}: {status.n_specs} cells  [{states}]",
        f"retries {status.retries_total}",
        f"cache {status.cache_hit_ratio * 100:.0f}%",
    ]
    if status.runners:
        fleet = f"fleet {status.runners_live}/{len(status.runners)} live"
        if status.runners_lost:
            fleet += f" ({status.runners_lost} lost)"
        if status.redispatches_total:
            fleet += f" redisp {status.redispatches_total}"
        if status.degraded:
            fleet += " DEGRADED"
        parts.append(fleet)
    if status.events_per_sec_aggregate > 0:
        parts.append(f"{_fmt_rate(status.events_per_sec_aggregate)} ev/s")
    if status.wall_time_total_s > 0:
        parts.append(f"wall {status.wall_time_total_s:.1f}s")
    parts.append("finished" if status.finished else _fmt_eta(status.eta_s()))
    if status.torn_lines:
        parts.append(f"torn_tail={status.torn_lines}")
    return "  |  ".join(parts)


def render(statuses: List[SweepStatus], now: Optional[float] = None) -> str:
    """The full (multi-sweep) status screen as plain text."""
    now = time.time() if now is None else now
    blocks = []
    for status in statuses:
        lines = [_summary_line(status)]
        # pool sweeps get a RUNNER column; local/process sweeps keep the
        # original layout
        with_runner = bool(status.runners) or any(c.runner for c in status.cells)
        header = (
            f"  {'CELL':<{_LABEL_WIDTH}} {'PHASE':<11} {'ATT':>3} {'RTY':>3} "
            f"{'CKPT':>4} {'WALL':>8} {'KEV/S':>6} {'GBPS':>6}"
        )
        if with_runner:
            header += f" {'RUNNER':<16}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for cell in status.cells:
            label = cell.label[:_LABEL_WIDTH]
            if cell.terminal:
                wall = f"{cell.wall_time_s:.2f}s" if not cell.cached else "-"
            elif cell.started_ts is not None:
                wall = f"{max(0.0, now - cell.started_ts):.1f}s…"
            else:
                wall = "-"
            gbps = f"{cell.throughput_gbps:.2f}" if cell.throughput_gbps else "-"
            row = (
                f"  {label:<{_LABEL_WIDTH}} {cell.phase:<11} {cell.attempts:>3} "
                f"{cell.retries:>3} {cell.checkpoint_restores:>4} {wall:>8} "
                f"{_fmt_rate(cell.events_per_sec):>6} {gbps:>6}"
            )
            if with_runner:
                runner = cell.runner or "-"
                if cell.redispatches:
                    runner += f" (+{cell.redispatches})"
                row += f" {runner[:16]:<16}"
            lines.append(row)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def status_document(statuses: List[SweepStatus]) -> dict:
    """The ``repro top --once --json`` payload."""
    return {
        "kind": "repro-top",
        "schema_version": TOP_SCHEMA_VERSION,
        "generated_ts": round(time.time(), 3),
        "sweeps": [s.to_json_dict() for s in statuses],
    }


def watch(
    path: Path,
    interval_s: float = 1.0,
    stream: Optional[IO[str]] = None,
    max_refreshes: Optional[int] = None,
) -> int:
    """Follow mode: redraw until every sweep is finished.  Returns the
    number of refreshes drawn (the final state is always drawn)."""
    import sys

    stream = stream if stream is not None else sys.stdout
    refreshes = 0
    while True:
        statuses = load_statuses(path)
        stream.write(_CLEAR + render(statuses) + "\n")
        stream.flush()
        refreshes += 1
        if all(s.finished for s in statuses):
            return refreshes
        if max_refreshes is not None and refreshes >= max_refreshes:
            return refreshes
        time.sleep(interval_s)


def top(
    path: Path,
    once: bool = False,
    as_json: bool = False,
    interval_s: float = 1.0,
    stream: Optional[IO[str]] = None,
) -> int:
    """CLI entry: returns a process exit code (1 iff any quarantined)."""
    import sys

    stream = stream if stream is not None else sys.stdout
    if as_json:
        statuses = load_statuses(path)
        stream.write(json.dumps(status_document(statuses), indent=1) + "\n")
    elif once:
        statuses = load_statuses(path)
        stream.write(render(statuses) + "\n")
    else:
        try:
            watch(path, interval_s=interval_s, stream=stream)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            stream.write("\n")
        statuses = load_statuses(path)
    return 1 if any(s.quarantined_total for s in statuses) else 0
