"""``repro report <sweep-dir>`` — one static, self-contained run report.

Aggregates everything a sweep leaves behind into a single HTML (or
markdown) document with no external references, so it can be archived
as a CI artifact or mailed around:

* **summary tiles** — cells by state, retries, quarantines, cache hit
  ratio, summed wall time, aggregate events/sec;
* **run matrix table** — per cell: phase, attempts, wall time,
  events/sec, throughput, p99 latency, fault/degradation counters;
* **timeline** — per-cell start→finish bars from the v2 journal's
  wall-clock timestamps (omitted for v1 journals, which carry none);
* **latency decomposition** — the per-stage queueing/service/hold table
  from :mod:`repro.obs.decompose`, for every cell whose record carries
  an ``obs`` payload;
* **stage histograms** — always-on exact per-stage latency distributions
  (:mod:`repro.obs.hist`) rendered as unicode sparklines with p50/p99,
  for every cell whose record carries a ``hist`` payload;
* **fault summary** — aggregated fault-injection and degradation
  counters across the matrix;
* optional **bench** (``BENCH_*.json``), **fidelity** scoreboard, and
  **diff** (``repro diff --json-out``) payloads, embedded as tables when
  paths are supplied.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.obs.live.status import SweepStatus

__all__ = ["REPORT_SCHEMA_VERSION", "build_html", "build_markdown", "write_report"]

REPORT_SCHEMA_VERSION = 1

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a2733; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
h3 { font-size: 1rem; margin-bottom: .3rem; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #e3e8ee; }
th { background: #f4f6f8; } td.num, th.num { text-align: right;
     font-variant-numeric: tabular-nums; }
.tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
.tile { border: 1px solid #e3e8ee; border-radius: .5rem; padding: .6rem 1rem;
        min-width: 7rem; }
.tile .v { font-size: 1.3rem; font-weight: 600; }
.tile .k { font-size: .75rem; color: #5b6b7a; text-transform: uppercase; }
.phase-done { color: #1a7f37; } .phase-cached { color: #4a5b8c; }
.phase-quarantined { color: #b42318; font-weight: 600; }
.phase-running, .phase-retrying { color: #b45309; }
.bar-row { display: flex; align-items: center; font-size: .75rem;
           margin: .15rem 0; }
.bar-label { width: 18rem; overflow: hidden; text-overflow: ellipsis;
             white-space: nowrap; }
.bar-track { flex: 1; background: #f4f6f8; border-radius: .2rem; height: .8rem;
             position: relative; }
.bar { position: absolute; height: 100%; border-radius: .2rem;
       background: #6b7fd7; min-width: 2px; }
.bar.q { background: #b42318; }
.note { color: #5b6b7a; font-size: .8rem; }
td.spark { font-family: ui-monospace, Menlo, monospace; letter-spacing: -1px;
           color: #4a5b8c; white-space: pre; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _num(value: Optional[float], fmt: str = "{:.2f}", dash: str = "-") -> str:
    if value is None:
        return dash
    return fmt.format(value)


def _tile(value: str, key: str) -> str:
    return f'<div class="tile"><div class="v">{_esc(value)}</div><div class="k">{_esc(key)}</div></div>'


def _summary_tiles(status: SweepStatus) -> str:
    counts = status.counts()
    tiles = [
        _tile(str(status.n_specs), "cells"),
        _tile(str(counts["done"]), "done"),
        _tile(str(counts["cached"]), "cached"),
        _tile(str(counts["quarantined"]), "quarantined"),
        _tile(str(status.retries_total), "retries"),
        _tile(f"{status.cache_hit_ratio * 100:.0f}%", "cache hits"),
        _tile(f"{status.wall_time_total_s:.1f}s", "wall time"),
    ]
    if status.events_per_sec_aggregate > 0:
        tiles.append(
            _tile(f"{status.events_per_sec_aggregate / 1e3:.0f}k", "events/sec")
        )
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def _matrix_table(status: SweepStatus) -> str:
    rows = []
    for cell in status.cells:
        rows.append(
            "<tr>"
            f"<td>{_esc(cell.label)}</td>"
            f'<td class="phase-{_esc(cell.phase)}">{_esc(cell.phase)}</td>'
            f'<td class="num">{cell.attempts}</td>'
            f'<td class="num">{cell.retries}</td>'
            f'<td class="num">{cell.checkpoint_restores}</td>'
            f'<td class="num">{_num(cell.wall_time_s if not cell.cached else None)}</td>'
            f'<td class="num">{_num(cell.events_per_sec / 1e3 if cell.events_per_sec else None, "{:.0f}k")}</td>'
            f'<td class="num">{_num(cell.throughput_gbps)}</td>'
            f'<td class="num">{_num(cell.p99_us, "{:.1f}")}</td>'
            f'<td class="num">{cell.fault_injections or "-"}</td>'
            f'<td class="num">{cell.degradation_events or "-"}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>cell</th><th>phase</th>"
        '<th class="num">att</th><th class="num">retry</th>'
        '<th class="num">ckpt</th><th class="num">wall s</th>'
        '<th class="num">ev/s</th><th class="num">Gbps</th>'
        '<th class="num">p99 µs</th><th class="num">faults</th>'
        '<th class="num">degr</th></tr></thead><tbody>'
        + "".join(rows)
        + "</tbody></table>"
    )


def _timeline(status: SweepStatus) -> str:
    timed = [
        c for c in status.cells
        if c.started_ts is not None and c.finished_ts is not None
        and c.finished_ts >= c.started_ts
    ]
    if not timed:
        return (
            '<p class="note">No wall-clock timeline: the journal predates '
            "schema v2 or no cell executed live.</p>"
        )
    t0 = min(c.started_ts for c in timed)
    t1 = max(c.finished_ts for c in timed)
    span = max(t1 - t0, 1e-9)
    rows = []
    for cell in timed:
        left = (cell.started_ts - t0) / span * 100.0
        width = max((cell.finished_ts - cell.started_ts) / span * 100.0, 0.3)
        klass = "bar q" if cell.phase == "quarantined" else "bar"
        rows.append(
            '<div class="bar-row">'
            f'<div class="bar-label">{_esc(cell.label)}</div>'
            '<div class="bar-track">'
            f'<div class="{klass}" style="left:{left:.2f}%;width:{width:.2f}%"></div>'
            "</div>"
            f'<div style="width:5rem;text-align:right">{cell.finished_ts - cell.started_ts:.2f}s</div>'
            "</div>"
        )
    return (
        f'<p class="note">{len(timed)} cells over {span:.2f}s of wall time.</p>'
        + "".join(rows)
    )


def _decomposition_sections(status: SweepStatus) -> str:
    sections = []
    for cell in status.cells:
        record = status.records.get(cell.spec_key) or {}
        obs = (record.get("measurements") or {}).get("obs") or {}
        dec = obs.get("decomposition") or {}
        stages = dec.get("stages") or []
        if not stages:
            continue
        rows = "".join(
            "<tr>"
            f"<td>{_esc(s.get('stage', '?'))}</td>"
            f'<td class="num">{_num(s.get("queue_us"))}</td>'
            f'<td class="num">{_num(s.get("service_us"))}</td>'
            f'<td class="num">{_num(s.get("hold_us"))}</td>'
            f'<td class="num">{s.get("visits", 0)}</td>'
            "</tr>"
            for s in stages
        )
        sections.append(
            f"<h3>{_esc(cell.label)} — {dec.get('n_journeys', 0)} journeys, "
            f"mean e2e {_num(dec.get('e2e_mean_us'))} µs</h3>"
            '<table><thead><tr><th>stage</th><th class="num">queue µs</th>'
            '<th class="num">service µs</th><th class="num">hold µs</th>'
            '<th class="num">visits</th></tr></thead>'
            f"<tbody>{rows}</tbody></table>"
        )
    if not sections:
        return (
            '<p class="note">No latency decomposition: run the sweep with '
            "observability enabled to record per-stage journeys.</p>"
        )
    return "".join(sections)


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"
_SPARK_WIDTH = 24


def _sparkline(series: Dict[str, Any], width: int = _SPARK_WIDTH) -> str:
    """Unicode sparkline over the occupied bucket range of one series.

    The sparse buckets are compressed into ``width`` equal index spans;
    each column's height is its summed count scaled to the tallest
    column.  Deterministic, text-only — safe for HTML and markdown.
    """
    buckets = [(int(i), int(c)) for i, c in series.get("buckets", ())]
    if not buckets:
        return ""
    lo = buckets[0][0]
    hi = buckets[-1][0]
    span = max(hi - lo + 1, 1)
    width = min(width, span)
    cols = [0] * width
    for idx, count in buckets:
        cols[(idx - lo) * width // span] += count
    peak = max(cols)
    return "".join(
        _SPARK_BLOCKS[(c * (len(_SPARK_BLOCKS) - 1) + peak - 1) // peak] if c else " "
        for c in cols
    )


def _hist_rows(rollup: Dict[str, Dict[str, Dict[str, Any]]]):
    """(stage, service-series, queue-p99, spark, p50, p99) display rows,
    busiest stages first."""
    from repro.obs.hist import series_quantile_ns

    rows = []
    for stage, kinds in rollup.items():
        service = kinds.get("service") or {}
        if not service.get("count"):
            continue
        queue = kinds.get("queue") or {}
        rows.append(
            {
                "stage": stage,
                "count": int(service["count"]),
                "queue_p99_ns": (
                    series_quantile_ns(queue, 0.99) if queue.get("count") else None
                ),
                "spark": _sparkline(service),
                "p50_ns": series_quantile_ns(service, 0.50),
                "p99_ns": series_quantile_ns(service, 0.99),
                "sum_ns": int(service.get("sum_ns", 0)),
            }
        )
    rows.sort(key=lambda r: (-r["sum_ns"], r["stage"]))
    return rows


def _hist_sections(status: SweepStatus) -> str:
    from repro.obs.hist import stage_rollup

    sections = []
    for cell in status.cells:
        record = status.records.get(cell.spec_key) or {}
        hist = (record.get("measurements") or {}).get("hist")
        if not hist:
            continue
        try:
            rows = _hist_rows(stage_rollup(hist))
        except ValueError:
            continue
        if not rows:
            continue
        body = "".join(
            "<tr>"
            f"<td>{_esc(r['stage'])}</td>"
            f'<td class="num">{r["count"]}</td>'
            f'<td class="num">{_num(r["queue_p99_ns"] / 1e3 if r["queue_p99_ns"] is not None else None, "{:.1f}")}</td>'
            f'<td class="spark">{_esc(r["spark"])}</td>'
            f'<td class="num">{_num(r["p50_ns"] / 1e3, "{:.2f}")}</td>'
            f'<td class="num">{_num(r["p99_ns"] / 1e3, "{:.2f}")}</td>'
            "</tr>"
            for r in rows
        )
        sections.append(
            f"<h3>{_esc(cell.label)}</h3>"
            '<table><thead><tr><th>stage</th><th class="num">visits</th>'
            '<th class="num">queue p99 µs</th><th>service distribution</th>'
            '<th class="num">p50 µs</th><th class="num">p99 µs</th>'
            f"</tr></thead><tbody>{body}</tbody></table>"
        )
    if not sections:
        return (
            '<p class="note">No stage histograms: the records predate the '
            "hist payload or the sweep ran with <code>hist=False</code>.</p>"
        )
    return "".join(sections)


def _diff_section(payload: Dict[str, Any]) -> str:
    rows = payload.get("rows")
    if not isinstance(rows, list):
        return '<p class="note">Unrecognized diff payload layout.</p>'
    body = "".join(
        "<tr>"
        f"<td>{_esc(r.get('stage', '?'))}</td>"
        f"<td>{_esc(r.get('series', '?'))}</td>"
        f'<td class="num">{_num(r.get("mean_a_ns", 0.0) / 1e3, "{:.2f}")}</td>'
        f'<td class="num">{_num(r.get("mean_b_ns", 0.0) / 1e3, "{:.2f}")}</td>'
        f'<td class="num">{r.get("delta_pct", 0.0):+.1f}%</td>'
        f'<td class="num">{r.get("share_pct", 0.0):.1f}%</td>'
        f"<td>{_esc(r.get('status', '?'))}</td>"
        "</tr>"
        for r in rows
        if isinstance(r, dict)
    )
    verdict = "no significant regression" if payload.get("ok") else (
        "significant regression"
    )
    return (
        f'<p class="note">B = {_esc(payload.get("label_b", "?"))} vs '
        f'A = {_esc(payload.get("label_a", "?"))} — {verdict} '
        f'(tolerance {payload.get("tolerance", 0.0) * 100:.0f}% beyond CI '
        "overlap, ranked by contribution to the total shift).</p>"
        '<table><thead><tr><th>stage</th><th>series</th>'
        '<th class="num">mean A µs</th><th class="num">mean B µs</th>'
        '<th class="num">Δ%</th><th class="num">share</th><th>verdict</th>'
        f"</tr></thead><tbody>{body}</tbody></table>"
    )


def _fault_summary(status: SweepStatus) -> str:
    totals: Dict[str, int] = {}
    degradations = 0
    for record in status.records.values():
        measurements = record.get("measurements") or {}
        for name, count in (measurements.get("fault_counters") or {}).items():
            totals[name] = totals.get(name, 0) + int(count)
        degradations += len(measurements.get("degradation_events") or ())
    if not totals and not degradations:
        return '<p class="note">No faults fired across the matrix.</p>'
    rows = "".join(
        f'<tr><td>{_esc(name)}</td><td class="num">{count}</td></tr>'
        for name, count in sorted(totals.items())
    )
    extra = (
        f'<p class="note">{degradations} MFLOW degradation/readmission '
        "transition(s) across the matrix.</p>"
        if degradations else ""
    )
    return (
        '<table><thead><tr><th>fault</th><th class="num">count</th></tr>'
        f"</thead><tbody>{rows}</tbody></table>{extra}"
    )


def _bench_section(payload: Dict[str, Any]) -> str:
    from repro.perf.bench import payload_scenario_rows

    rows = []
    for row in payload_scenario_rows(payload):
        rate = row["events_per_sec"]
        rows.append(
            "<tr>"
            f'<td>{_esc(row["name"])}</td>'
            f'<td class="num">{_num(row["wall_ms"], "{:.1f}")}</td>'
            f'<td class="num">{_num(rate / 1e3 if rate else None, "{:.0f}k")}</td>'
            f'<td class="num">{_num(row["throughput_gbps"])}</td>'
            "</tr>"
        )
    return (
        f'<p class="note">BENCH payload sha {_esc(payload.get("git_sha", "?"))}, '
        f'schema v{_esc(payload.get("schema_version", "?"))}.</p>'
        '<table><thead><tr><th>scenario</th><th class="num">wall ms</th>'
        '<th class="num">ev/s</th><th class="num">Gbps</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
    )


def _fidelity_section(payload: Dict[str, Any]) -> str:
    checks = payload.get("checks")
    if not isinstance(checks, list):
        return '<p class="note">Unrecognized fidelity payload layout.</p>'
    rows = []
    for check in checks:
        if not isinstance(check, dict):
            continue
        name = check.get("name", "?")
        band = check.get("band", check.get("status", "?"))
        rows.append(
            "<tr>"
            f"<td>{_esc(name)}</td>"
            f"<td>{_esc(band)}</td>"
            f'<td class="num">{_esc(check.get("measured", check.get("value", "-")))}</td>'
            f'<td class="num">{_esc(check.get("expected", check.get("paper", "-")))}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>check</th><th>band</th>"
        '<th class="num">measured</th><th class="num">expected</th>'
        f'</tr></thead><tbody>{"".join(rows)}</tbody></table>'
    )


def build_html(
    statuses: Sequence[SweepStatus],
    bench: Optional[Dict[str, Any]] = None,
    fidelity: Optional[Dict[str, Any]] = None,
    diff: Optional[Dict[str, Any]] = None,
    title: str = "repro run report",
) -> str:
    """The self-contained HTML document."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="note">report schema v{REPORT_SCHEMA_VERSION} · '
        f"{len(statuses)} sweep(s)</p>",
    ]
    for status in statuses:
        state = "finished" if status.finished else "in progress"
        parts.append(
            f"<h2>{_esc(status.experiment)} <small>({state}, journal schema "
            f"v{status.journal_schema})</small></h2>"
        )
        parts.append(_summary_tiles(status))
        parts.append("<h3>Run matrix</h3>")
        parts.append(_matrix_table(status))
        parts.append("<h3>Timeline</h3>")
        parts.append(_timeline(status))
        parts.append("<h3>Latency decomposition</h3>")
        parts.append(_decomposition_sections(status))
        parts.append("<h3>Stage histograms</h3>")
        parts.append(_hist_sections(status))
        parts.append("<h3>Fault summary</h3>")
        parts.append(_fault_summary(status))
    if diff is not None:
        parts.append("<h2>Stage latency diff</h2>")
        parts.append(_diff_section(diff))
    if bench is not None:
        parts.append("<h2>Benchmark payload</h2>")
        parts.append(_bench_section(bench))
    if fidelity is not None:
        parts.append("<h2>Paper-fidelity scoreboard</h2>")
        parts.append(_fidelity_section(fidelity))
    parts.append("</body></html>")
    return "\n".join(parts)


def build_markdown(
    statuses: Sequence[SweepStatus],
    bench: Optional[Dict[str, Any]] = None,
    fidelity: Optional[Dict[str, Any]] = None,
    diff: Optional[Dict[str, Any]] = None,
    title: str = "repro run report",
) -> str:
    """The same report as GitHub-flavored markdown."""
    lines = [f"# {title}", ""]
    for status in statuses:
        counts = status.counts()
        state = "finished" if status.finished else "in progress"
        lines += [
            f"## {status.experiment} ({state})",
            "",
            f"- cells: {status.n_specs} — "
            + ", ".join(f"{k}={v}" for k, v in counts.items() if v),
            f"- retries: {status.retries_total}, checkpoint restores: "
            f"{status.checkpoint_restores_total}",
            f"- cache hit ratio: {status.cache_hit_ratio * 100:.0f}%",
            f"- wall time: {status.wall_time_total_s:.1f}s, aggregate "
            f"{status.events_per_sec_aggregate / 1e3:.0f}k events/sec",
            "",
            "| cell | phase | att | retry | wall s | ev/s | Gbps | p99 µs |",
            "| --- | --- | ---: | ---: | ---: | ---: | ---: | ---: |",
        ]
        for cell in status.cells:
            lines.append(
                f"| {cell.label} | {cell.phase} | {cell.attempts} | "
                f"{cell.retries} | "
                f"{_num(cell.wall_time_s if not cell.cached else None)} | "
                f"{_num(cell.events_per_sec / 1e3 if cell.events_per_sec else None, '{:.0f}k')} | "
                f"{_num(cell.throughput_gbps)} | {_num(cell.p99_us, '{:.1f}')} |"
            )
        lines.append("")
        hist_lines = _hist_markdown(status)
        if hist_lines:
            lines += ["### Stage histograms", ""] + hist_lines + [""]
    if diff is not None:
        lines += ["## Stage latency diff", ""]
        rows = diff.get("rows")
        if isinstance(rows, list):
            lines += [
                "| stage | series | mean A µs | mean B µs | Δ% | share | verdict |",
                "| --- | --- | ---: | ---: | ---: | ---: | --- |",
            ]
            for r in rows:
                if isinstance(r, dict):
                    lines.append(
                        f"| {r.get('stage', '?')} | {r.get('series', '?')} | "
                        f"{r.get('mean_a_ns', 0.0) / 1e3:.2f} | "
                        f"{r.get('mean_b_ns', 0.0) / 1e3:.2f} | "
                        f"{r.get('delta_pct', 0.0):+.1f}% | "
                        f"{r.get('share_pct', 0.0):.1f}% | "
                        f"{r.get('status', '?')} |"
                    )
            lines.append("")
    if bench is not None:
        lines += [
            "## Benchmark payload",
            "",
            f"sha `{bench.get('git_sha', '?')}`, "
            f"schema v{bench.get('schema_version', '?')}",
            "",
        ]
    if fidelity is not None:
        lines += ["## Paper-fidelity scoreboard", ""]
        checks = fidelity.get("checks")
        if isinstance(checks, list):
            lines += [
                "| check | band |",
                "| --- | --- |",
            ]
            for check in checks:
                if isinstance(check, dict):
                    lines.append(
                        f"| {check.get('name', '?')} | "
                        f"{check.get('band', check.get('status', '?'))} |"
                    )
            lines.append("")
    return "\n".join(lines) + "\n"


def _hist_markdown(status: SweepStatus) -> list:
    """Sparkline rows for every cell carrying a hist payload (markdown)."""
    from repro.obs.hist import stage_rollup

    lines: list = []
    for cell in status.cells:
        record = status.records.get(cell.spec_key) or {}
        hist = (record.get("measurements") or {}).get("hist")
        if not hist:
            continue
        try:
            rows = _hist_rows(stage_rollup(hist))
        except ValueError:
            continue
        if not rows:
            continue
        lines += [
            f"**{cell.label}**",
            "",
            "| stage | visits | queue p99 µs | service distribution | p50 µs | p99 µs |",
            "| --- | ---: | ---: | --- | ---: | ---: |",
        ]
        for r in rows:
            q = (
                f"{r['queue_p99_ns'] / 1e3:.1f}"
                if r["queue_p99_ns"] is not None else "-"
            )
            lines.append(
                f"| {r['stage']} | {r['count']} | {q} | `{r['spark']}` | "
                f"{r['p50_ns'] / 1e3:.2f} | {r['p99_ns'] / 1e3:.2f} |"
            )
        lines.append("")
    return lines


def write_report(path: Path, text: str) -> Path:
    from repro.resilience.atomic import atomic_write_text

    return atomic_write_text(path, text)


def load_json_artifact(path: Path) -> Dict[str, Any]:
    """Best-effort load of an optional side artifact (bench/fidelity)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data
