"""Sweep status: a live model of one sweep, rebuilt from its journal.

The RunEngine appends a ``journal.jsonl`` entry at every cell lifecycle
transition (see ``JOURNAL_SCHEMA_VERSION`` in :mod:`repro.runner.engine`).
:class:`SweepStatus` folds those entries — plus ``sweep.json`` for the
spec list and any ``runs/*.json`` records for headline measurements —
into per-cell :class:`CellStatus` rows and sweep-level aggregates
(phase counts, retries, cache-hit ratio, throughput, ETA).

The model is pull-based and crash-tolerant: every refresh re-reads the
journal through :func:`repro.resilience.atomic.read_jsonl`, whose
torn-tail tolerance means a reader polling a *live* journal never
crashes on the half-written final line — it simply sees that entry on
the next poll.  v1 journals (no ``seq``/``ts``/``phase``) degrade
gracefully: phases are derived from the ``ok``/``cached`` flags and the
timeline/ETA columns stay empty.

This module is also the home of the status-*line* helpers
(:class:`StatusLine`, :class:`SweepProgress`) shared by every CLI that
renders a one-line refreshing progress readout (``repro.experiments``,
``repro bench``, ``repro migrate``, ``repro resume``), so sweep progress
looks the same everywhere it is printed.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional

from repro.resilience.atomic import read_jsonl
from repro.runner.engine import CELL_PHASES, JOURNAL_SCHEMA_VERSION, SWEEP_KIND

__all__ = [
    "CELL_PHASES",
    "JOURNAL_SCHEMA_VERSION",
    "TOP_SCHEMA_VERSION",
    "CellStatus",
    "StatusError",
    "StatusLine",
    "SweepProgress",
    "SweepStatus",
    "find_sweep_dirs",
    "load_statuses",
]

#: schema of the ``repro top --json`` document
TOP_SCHEMA_VERSION = 1

#: phases that mean a cell will not change again this sweep
TERMINAL_PHASES = frozenset(("done", "cached", "quarantined"))


class StatusError(RuntimeError):
    """The directory holds nothing a status reader can work with."""


@dataclass
class CellStatus:
    """One sweep cell's current lifecycle state and headline numbers."""

    spec_key: str
    label: str = ""
    factory: str = ""
    phase: str = "queued"          # one of CELL_PHASES
    attempts: int = 0
    retries: int = 0
    cached: bool = False
    ok: Optional[bool] = None
    wall_time_s: float = 0.0
    events_executed: int = 0
    events_per_sec: float = 0.0
    sim_ns: float = 0.0
    selfprof_events_per_sec: Optional[float] = None
    checkpoint_restores: int = 0
    #: pool runner executing (or last to execute) this cell, if any
    runner: Optional[str] = None
    #: times this cell was re-dispatched after losing its runner
    redispatches: int = 0
    started_ts: Optional[float] = None    # wall clock, v2 journals only
    finished_ts: Optional[float] = None
    # headline measurements, filled from runs/*.json when present
    throughput_gbps: Optional[float] = None
    p99_us: Optional[float] = None
    fault_injections: int = 0
    degradation_events: int = 0

    @property
    def terminal(self) -> bool:
        return self.phase in TERMINAL_PHASES

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "spec_key": self.spec_key,
            "label": self.label,
            "factory": self.factory,
            "phase": self.phase,
            "attempts": self.attempts,
            "retries": self.retries,
            "cached": self.cached,
            "ok": self.ok,
            "wall_time_s": self.wall_time_s,
            "events_executed": self.events_executed,
            "events_per_sec": self.events_per_sec,
            "sim_ns": self.sim_ns,
            "selfprof_events_per_sec": self.selfprof_events_per_sec,
            "checkpoint_restores": self.checkpoint_restores,
            "runner": self.runner,
            "redispatches": self.redispatches,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "throughput_gbps": self.throughput_gbps,
            "p99_us": self.p99_us,
            "fault_injections": self.fault_injections,
            "degradation_events": self.degradation_events,
        }


class SweepStatus:
    """The live state of one sweep directory; see the module docstring."""

    def __init__(self, experiment: str, sweep_dir: Path):
        self.experiment = experiment
        self.sweep_dir = Path(sweep_dir)
        self.n_specs = 0
        self.jobs: Optional[int] = None
        self.executor: Optional[str] = None
        #: pool fleet state keyed on runner id (socket-executor sweeps)
        self.runners: Dict[str, Dict[str, Any]] = {}
        self.degraded = False
        self.redispatches_total = 0
        self.global_seed = 0
        self.journal_schema = 1        # until a v2 sweep_start says otherwise
        self.torn_lines = 0
        self.journal_entries = 0
        self.started_ts: Optional[float] = None
        self.finished_ts: Optional[float] = None
        self.finished = False
        self.cells: List[CellStatus] = []
        self._by_key: Dict[str, CellStatus] = {}
        #: raw run-record dicts keyed on spec_key (report enrichment)
        self.records: Dict[str, Dict[str, Any]] = {}

    # --------------------------------------------------------------- loading
    @classmethod
    def load(cls, sweep_dir: Path) -> "SweepStatus":
        """Build the status of ``sweep_dir`` (must hold ``sweep.json``)."""
        sweep_dir = Path(sweep_dir)
        sweep_path = sweep_dir / "sweep.json"
        try:
            with open(sweep_path, "r", encoding="utf-8") as fh:
                sweep = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StatusError(f"{sweep_path}: {exc}") from exc
        if not isinstance(sweep, dict) or sweep.get("kind") != SWEEP_KIND:
            raise StatusError(f"{sweep_path}: not a {SWEEP_KIND} file")
        status = cls(str(sweep.get("experiment", sweep_dir.name)), sweep_dir)
        status.global_seed = int(sweep.get("global_seed", 0))
        status.jobs = sweep.get("jobs")
        executor = sweep.get("executor")
        status.executor = str(executor) if executor else None
        for spec_data in sweep.get("specs", []):
            status._cell_for_spec(spec_data)
        status.n_specs = len(status.cells)
        entries, torn = read_jsonl(sweep_dir / "journal.jsonl")
        status.torn_lines = torn
        status.journal_entries = len(entries)
        for entry in entries:
            if isinstance(entry, dict):
                status.apply(entry)
        status._enrich_from_records()
        return status

    def _cell_for_spec(self, spec_data: Dict[str, Any]) -> None:
        from repro.runner.spec import RunSpec

        try:
            spec = RunSpec.from_json_dict(spec_data)
        except (TypeError, ValueError, KeyError):
            return
        cell = CellStatus(
            spec_key=spec.key, label=spec.describe(), factory=spec.factory
        )
        self.cells.append(cell)
        self._by_key[cell.spec_key] = cell

    def _cell(self, spec_key: str) -> CellStatus:
        cell = self._by_key.get(spec_key)
        if cell is None:
            # journal mentions a spec the sweep.json does not list (e.g. a
            # sweep re-run with a narrowed matrix): surface it anyway
            cell = CellStatus(spec_key=spec_key, label=spec_key[:16])
            self.cells.append(cell)
            self._by_key[spec_key] = cell
        return cell

    # ------------------------------------------------------------ journaling
    def apply(self, entry: Dict[str, Any]) -> None:
        """Fold one journal entry (v1 or v2) into the model."""
        kind = entry.get("kind")
        ts = entry.get("ts")
        ts = float(ts) if isinstance(ts, (int, float)) else None
        if kind == "sweep_start":
            schema = entry.get("journal_schema")
            self.journal_schema = int(schema) if isinstance(schema, int) else 1
            self.finished = False
            executor = entry.get("executor")
            if executor:
                self.executor = str(executor)
            if ts is not None:
                self.started_ts = ts
        elif kind == "spec_start":
            cell = self._cell(str(entry.get("spec_key", "")))
            cell.phase = "running"
            cell.attempts = max(cell.attempts, int(entry.get("attempt", 0)) + 1)
            runner = entry.get("runner")
            if isinstance(runner, str):
                cell.runner = runner
            if ts is not None and cell.started_ts is None:
                cell.started_ts = ts
        elif kind == "runner":
            self._apply_runner_event(entry)
        elif kind == "event":
            cell = self._cell(str(entry.get("spec_key", "")))
            event = entry.get("event")
            if event == "retry":
                cell.phase = "retrying"
                cell.retries += 1
            elif event == "failed":
                cell.phase = "quarantined"
                cell.ok = False
        elif kind == "spec":
            cell = self._cell(str(entry.get("spec_key", "")))
            ok = entry.get("ok")
            cached = bool(entry.get("cached", False))
            phase = entry.get("phase")
            if phase not in CELL_PHASES:       # v1 journals carry no phase
                phase = "cached" if cached else ("done" if ok else "quarantined")
            cell.phase = phase
            cell.ok = bool(ok) if ok is not None else None
            cell.cached = cached
            cell.attempts = max(cell.attempts, int(entry.get("attempts", 0)))
            cell.checkpoint_restores = int(entry.get("checkpoint_restores", 0))
            cell.wall_time_s = float(entry.get("wall_time_s", 0.0))
            runner = entry.get("runner")
            if isinstance(runner, str):
                cell.runner = runner
            if ts is not None:
                cell.finished_ts = ts
            progress = entry.get("progress")
            if isinstance(progress, dict):
                cell.events_executed = int(progress.get("events_executed", 0))
                cell.events_per_sec = float(progress.get("events_per_sec", 0.0))
                cell.sim_ns = float(progress.get("sim_ns", 0.0))
                sp = progress.get("selfprof_events_per_sec")
                cell.selfprof_events_per_sec = float(sp) if sp else None
        elif kind == "sweep_end":
            self.finished = True
            if ts is not None:
                self.finished_ts = ts

    def _apply_runner_event(self, entry: Dict[str, Any]) -> None:
        """Fold one executor-fleet journal entry (``kind: runner``)."""
        event = entry.get("event")
        runner_id = entry.get("runner")
        if event == "registered" and isinstance(runner_id, str):
            self.runners[runner_id] = {
                "state": "live",
                "addr": entry.get("addr"),
                "slots": entry.get("slots"),
            }
        elif event == "lost" and isinstance(runner_id, str):
            info = self.runners.setdefault(runner_id, {})
            info["state"] = "lost"
            info["reason"] = entry.get("reason")
            info["lost_inflight"] = entry.get("inflight")
        elif event == "unreachable":
            addr = str(entry.get("addr", "?"))
            self.runners.setdefault(addr, {})["state"] = "unreachable"
        elif event == "redispatch":
            self.redispatches_total += 1
            spec_key = entry.get("spec_key")
            if isinstance(spec_key, str) and spec_key:
                cell = self._cell(spec_key)
                cell.redispatches += 1
                target = entry.get("runner")
                if isinstance(target, str):
                    cell.runner = target
        elif event == "degraded":
            self.degraded = True

    def _enrich_from_records(self) -> None:
        """Headline measurements from ``runs/*.json`` (written at sweep
        end; a live tail simply has none yet)."""
        for path in sorted((self.sweep_dir / "runs").glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
            except (OSError, ValueError):
                continue
            key = record.get("spec_key")
            if not isinstance(key, str) or key not in self._by_key:
                continue
            self.records[key] = record
            cell = self._by_key[key]
            measurements = record.get("measurements") or {}
            if "throughput_gbps" in measurements:
                cell.throughput_gbps = float(measurements["throughput_gbps"])
            latency = measurements.get("latency") or {}
            if "p99_us" in latency:
                cell.p99_us = float(latency["p99_us"])
            cell.fault_injections = sum(
                int(v) for v in (measurements.get("fault_counters") or {}).values()
            )
            cell.degradation_events = len(
                measurements.get("degradation_events") or ()
            )

    # ------------------------------------------------------------ aggregates
    def counts(self) -> Dict[str, int]:
        counts = {phase: 0 for phase in CELL_PHASES}
        for cell in self.cells:
            counts[cell.phase] = counts.get(cell.phase, 0) + 1
        return counts

    @property
    def retries_total(self) -> int:
        return sum(c.retries for c in self.cells)

    @property
    def quarantined_total(self) -> int:
        return sum(1 for c in self.cells if c.phase == "quarantined")

    @property
    def cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.phase == "cached")

    @property
    def cache_hit_ratio(self) -> float:
        terminal = sum(1 for c in self.cells if c.terminal)
        return self.cache_hits / terminal if terminal else 0.0

    @property
    def checkpoint_restores_total(self) -> int:
        return sum(c.checkpoint_restores for c in self.cells)

    @property
    def wall_time_total_s(self) -> float:
        """Summed wall time of executed (non-cached) finished cells."""
        return sum(c.wall_time_s for c in self.cells if c.terminal and not c.cached)

    @property
    def events_total(self) -> int:
        return sum(c.events_executed for c in self.cells if not c.cached)

    @property
    def events_per_sec_aggregate(self) -> float:
        wall = self.wall_time_total_s
        return self.events_total / wall if wall > 0 else 0.0

    @property
    def runners_live(self) -> int:
        return sum(1 for r in self.runners.values() if r.get("state") == "live")

    @property
    def runners_lost(self) -> int:
        return sum(1 for r in self.runners.values() if r.get("state") == "lost")

    @property
    def remaining(self) -> int:
        return sum(1 for c in self.cells if not c.terminal)

    def eta_s(self) -> Optional[float]:
        """Remaining wall time, from completed live cells' mean wall time
        spread over the sweep's worker count.  None until one terminal
        cell exists (there is nothing to extrapolate from)."""
        if self.finished or self.remaining == 0:
            return 0.0
        walls = [
            c.wall_time_s
            for c in self.cells
            if c.terminal and not c.cached and c.wall_time_s > 0
        ]
        if not walls:
            # every terminal cell so far was cache-served: cache hits are
            # effectively instant, so the honest estimate is "done", not
            # "unknown" — a fully-warmed resweep should read eta 0s
            if self.cache_hits and self.cache_hits == sum(
                1 for c in self.cells if c.terminal
            ):
                return 0.0
            return None
        jobs = max(1, int(self.jobs or 1))
        mean = sum(walls) / len(walls)
        return mean * self.remaining / jobs

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-sweep-status",
            "experiment": self.experiment,
            "sweep_dir": str(self.sweep_dir),
            "journal_schema": self.journal_schema,
            "journal_entries": self.journal_entries,
            "torn_lines": self.torn_lines,
            "finished": self.finished,
            "n_specs": self.n_specs,
            "jobs": self.jobs,
            "executor": self.executor,
            "runners": self.runners,
            "degraded": self.degraded,
            "redispatches": self.redispatches_total,
            "global_seed": self.global_seed,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "counts": self.counts(),
            "retries": self.retries_total,
            "quarantined": self.quarantined_total,
            "cache_hits": self.cache_hits,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "checkpoint_restores": self.checkpoint_restores_total,
            "wall_time_s": round(self.wall_time_total_s, 4),
            "events_executed": self.events_total,
            "events_per_sec": round(self.events_per_sec_aggregate, 1),
            "eta_s": self.eta_s(),
            "cells": [c.to_json_dict() for c in self.cells],
        }


# ----------------------------------------------------------------- discovery
def find_sweep_dirs(path: Path) -> List[Path]:
    """Sweep directories under ``path``: itself if it holds a
    ``sweep.json``, else every ``<path>/*/sweep.json`` parent (the
    layout ``repro.experiments`` leaves under a results root)."""
    path = Path(path)
    if (path / "sweep.json").exists():
        return [path]
    return sorted(
        p.parent
        for p in path.glob("*/sweep.json")
        if p.parent.name not in (".cache", "checkpoints")
    )


def load_statuses(path: Path) -> List[SweepStatus]:
    """Every sweep's status under ``path``; raises :class:`StatusError`
    when there is nothing to watch."""
    dirs = find_sweep_dirs(path)
    if not dirs:
        raise StatusError(f"{path}: no sweep.json found — nothing to watch")
    return [SweepStatus.load(d) for d in dirs]


# ---------------------------------------------------------------- status line
class StatusLine:
    """A ``\\r``-rewriting one-line status readout.

    The single formatting path for every CLI progress line (sweeps,
    bench reps, migration runs, resumes): ``[label] text``, rewritten in
    place, padded so a shrinking line leaves no stale tail, closed with
    one newline.  Writes to ``stream`` (default stderr) unconditionally —
    callers gate on ``isatty`` where pollution matters.
    """

    def __init__(self, label: str, stream: Optional[IO[str]] = None):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._width = 0

    def update(self, text: str) -> None:
        line = f"[{self.label}] {text}"
        pad = max(0, self._width - len(line))
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def done(self, text: Optional[str] = None) -> None:
        """Finish the line (optionally rewriting it one last time)."""
        if text is not None:
            self.update(text)
        if self._width:
            self.stream.write("\n")
            self.stream.flush()
            self._width = 0


@dataclass
class SweepProgress:
    """A RunEngine ``progress`` callback rendering the shared status line:
    ``[fig8] 12/40 cached=3 last 0.82s 131k ev/s eta 18s``."""

    label: str
    stream: Optional[IO[str]] = None
    line: StatusLine = field(init=False)
    _started: float = field(init=False)
    _cached: int = field(init=False, default=0)
    _last_done: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.line = StatusLine(self.label, self.stream)
        self._started = time.monotonic()

    def __call__(self, done: int, total: int, record) -> None:
        if done <= self._last_done:  # reused across sweeps (repro resume)
            self._cached = 0
            self._started = time.monotonic()
        self._last_done = done
        if record.cached:
            self._cached += 1
        elapsed = time.monotonic() - self._started
        live_done = done - self._cached
        if live_done > 0 and done < total:
            eta = f"eta {elapsed / live_done * (total - done):4.0f}s"
        elif done < total:
            # all completions so far were cache hits: remaining cells are
            # almost certainly cached too, so report 0s rather than ?
            eta = "eta    0s" if done > 0 else "eta    ?"
        else:
            eta = f"{elapsed:5.1f}s"
        text = f"{done}/{total}"
        if self._cached:
            text += f" cached={self._cached}"
        if not record.cached and record.wall_time_s > 0:
            text += f" last {record.wall_time_s:.2f}s"
            if record.events_per_sec > 0:
                text += f" {record.events_per_sec / 1e3:.0f}k ev/s"
        self.line.update(f"{text} {eta}")
        if done == total:
            self.line.done()
