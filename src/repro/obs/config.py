"""Observability configuration.

An :class:`ObsConfig` travels the same road as fault plans: embedded in
:class:`~repro.runner.spec.RunSpec` params as a plain dict (so specs stay
JSON-canonical and hashable) and resolved by the scenario into live
recorder objects.  ``resolve_obs(None)`` — and any config with
``enabled=False`` — resolves to ``None``, and the scenario then builds
the exact same object graph and event schedule as an uninstrumented run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping, Optional, Union

ObsConfigLike = Union[None, bool, Mapping[str, Any], "ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """Knobs for one run's flight recorder and its consumers."""

    #: master switch; ``False`` resolves to no observability at all
    enabled: bool = True
    #: interval-metrics sampling period (sub-window granularity)
    interval_ns: float = 100_000.0
    #: event-bus capacity; past it, deterministic reservoir sampling kicks in
    capacity: int = 200_000
    #: journey cap for the latency-decomposition consumer
    max_journeys: int = 4000
    #: sim time before which journeys are not tracked; 0.0 (the default)
    #: means "start at the measurement window" (the scenario substitutes
    #: its warmup horizon)
    journey_start_ns: float = 0.0
    #: seed for the reservoir-sampling RNG (independent of workload seeds)
    seed: int = 0

    def validate(self) -> None:
        if self.interval_ns <= 0.0:
            raise ValueError(f"interval_ns must be positive, got {self.interval_ns}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.max_journeys < 1:
            raise ValueError(f"max_journeys must be >= 1, got {self.max_journeys}")
        if self.journey_start_ns < 0.0:
            raise ValueError("journey_start_ns must be >= 0")

    def to_dict(self) -> dict:
        """JSON/spec-embeddable form (see ``RunSpec.make(params=...)``)."""
        return asdict(self)


def resolve_obs(obs: ObsConfigLike) -> Optional[ObsConfig]:
    """Normalize any accepted ``obs=`` value to ``ObsConfig`` or ``None``.

    Accepts ``None`` / ``False`` (disabled), ``True`` (defaults), a dict
    (e.g. thawed from spec params), or an :class:`ObsConfig`.  A config
    with ``enabled=False`` is *inert* and resolves to ``None`` so that
    threading a disabled config through a spec cannot perturb the run.
    """
    if obs is None or obs is False:
        return None
    if obs is True:
        cfg = ObsConfig()
    elif isinstance(obs, ObsConfig):
        cfg = obs
    elif isinstance(obs, Mapping):
        cfg = ObsConfig(**dict(obs))
    else:
        raise TypeError(f"cannot resolve obs config from {type(obs).__name__}: {obs!r}")
    if not cfg.enabled:
        return None
    cfg.validate()
    return cfg
