"""Deterministic simulator checkpoints.

A checkpoint captures the *entire* simulator object graph mid-run — the
event heap (with callback closures as bound methods), per-core backlogs,
NIC rings, RNG substream positions, steering/MFLOW/reassembly state,
fault-injector and observability counters — by pickling the root object
(normally a :class:`~repro.workloads.scenario.Scenario`).  Because the
simulation is a pure function of that graph, restoring the pickle and
continuing the event loop is **bit-identical** to never having stopped:
the derived-seed and inert-plan guarantees from the runner make that
property testable, and ``tests/test_resilience.py`` tests it.

File format (schema-versioned, torn-write-proof)::

    line 1: JSON header {"kind": "repro-checkpoint", "schema_version",
            "code_version", "key", "slot", "sim_ns", "events_executed",
            "payload_len", "payload_sha256"}
    rest:   pickle payload (verified against the digest before loading)

Checkpoints are an *optimization*: a missing, stale (code changed) or
corrupt file is silently discarded and the run restarts from scratch,
which is always correct.

The attach idiom mirrors faults/obs/selfprof: ``sim.checkpointer`` is
``None`` by default and the uncheckpointed run loop is untouched, so the
disabled path is bit-identical by construction.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.resilience.atomic import atomic_write_bytes

CHECKPOINT_SCHEMA_VERSION = 1
CHECKPOINT_KIND = "repro-checkpoint"
CHECKPOINT_SUFFIX = ".ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, torn, or from a different build."""


def _current_code_version() -> str:
    # imported lazily: runner.cache hashes the installed package sources
    from repro.runner.cache import code_version

    return code_version()


# ----------------------------------------------------------------- file format
def freeze_blob(root: Any, meta: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialize ``root`` to a self-verifying in-memory snapshot blob.

    Same format as a checkpoint file (JSON header line + pickle payload,
    digest in the header) but never touches disk — this is what the
    migration controller "ships" when it freezes a container: the blob's
    byte length drives the transfer-delay model and :func:`thaw_blob`
    verifies the digest before unpickling, exactly like a CRIU image.
    """
    payload = pickle.dumps(root, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "kind": CHECKPOINT_KIND,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "code_version": _current_code_version(),
        "payload_len": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    if meta:
        header.update(meta)
    return json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload


def thaw_blob(blob: bytes) -> Tuple[Dict[str, Any], Any]:
    """Verify and unpickle a :func:`freeze_blob` snapshot.

    Returns ``(header, root)``; raises :class:`CheckpointError` on any
    damage (torn payload, digest mismatch, wrong schema).
    """
    fh = io.BufferedReader(io.BytesIO(blob))
    header = _read_header(fh, Path("<blob>"))
    payload = fh.read()
    if len(payload) != header.get("payload_len"):
        raise CheckpointError(
            f"<blob>: torn payload ({len(payload)} of "
            f"{header.get('payload_len')} bytes)"
        )
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        raise CheckpointError("<blob>: payload digest mismatch")
    try:
        root = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointError(f"<blob>: payload does not unpickle: {exc}") from exc
    return header, root


def write_checkpoint(
    path: Union[str, Path], root: Any, meta: Optional[Dict[str, Any]] = None
) -> Path:
    """Serialize ``root`` to ``path`` atomically with a verifiable header."""
    return atomic_write_bytes(path, freeze_blob(root, meta))


def _read_header(fh: io.BufferedReader, path: Path) -> Dict[str, Any]:
    line = fh.readline()
    if not line.endswith(b"\n"):
        raise CheckpointError(f"{path}: truncated header")
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise CheckpointError(f"{path}: unparseable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(f"{path}: not a {CHECKPOINT_KIND} file")
    if header.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint schema {header.get('schema_version')!r} "
            f"unsupported (expected {CHECKPOINT_SCHEMA_VERSION})"
        )
    return header


def verify_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Validate header + payload digest *without* unpickling (fsck-safe).

    Returns the header; raises :class:`CheckpointError` on any damage.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            header = _read_header(fh, path)
            payload = fh.read()
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable: {exc}") from exc
    if len(payload) != header.get("payload_len"):
        raise CheckpointError(
            f"{path}: torn payload ({len(payload)} of "
            f"{header.get('payload_len')} bytes)"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(f"{path}: payload digest mismatch")
    return header


def load_checkpoint(path: Union[str, Path]) -> Tuple[Dict[str, Any], Any]:
    """Verify and unpickle a checkpoint; returns ``(header, root)``."""
    path = Path(path)
    header = verify_checkpoint(path)
    with open(path, "rb") as fh:
        _read_header(fh, path)
        payload = fh.read()
    try:
        root = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointError(f"{path}: payload does not unpickle: {exc}") from exc
    return header, root


# ----------------------------------------------------------------- checkpointer
class Checkpointer:
    """Periodic snapshot hook driven by the simulator's checkpointed loop.

    Snapshots fire between events whenever ``every_sim_ns`` of simulated
    time or ``every_wall_s`` of wall-clock time has elapsed since the
    last save.  Saving only *reads* the object graph, so a checkpointed
    run's measurements are bit-identical to an uncheckpointed one.
    """

    def __init__(
        self,
        path: Union[str, Path],
        root: Any = None,
        every_sim_ns: Optional[float] = None,
        every_wall_s: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ):
        if every_sim_ns is not None and every_sim_ns <= 0:
            raise ValueError("every_sim_ns must be positive")
        if every_wall_s is not None and every_wall_s <= 0:
            raise ValueError("every_wall_s must be positive")
        self.path = Path(path)
        self.root = root
        self.every_sim_ns = every_sim_ns
        self.every_wall_s = every_wall_s
        self.meta = dict(meta or {})
        self.saves = 0
        self._next_sim_ns: Optional[float] = None
        self._next_wall: Optional[float] = None

    # wall-clock deadlines are meaningless in another process/life: drop
    # them from snapshots so a restored run re-bases on its own clock
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_next_sim_ns"] = None
        state["_next_wall"] = None
        return state

    def begin(self, sim: Any) -> None:
        """Re-base the periodic deadlines at the start of a run loop."""
        if self.every_sim_ns is not None:
            self._next_sim_ns = sim.now + self.every_sim_ns
        if self.every_wall_s is not None:
            self._next_wall = time.monotonic() + self.every_wall_s

    def due(self, now_ns: float) -> bool:
        if self._next_sim_ns is not None and now_ns >= self._next_sim_ns:
            return True
        if self._next_wall is not None and time.monotonic() >= self._next_wall:
            return True
        return False

    def save(self, sim: Any) -> None:
        """Snapshot the root graph; advances both deadlines."""
        meta = dict(self.meta)
        meta["sim_ns"] = sim.now
        meta["events_executed"] = sim.events_executed
        write_checkpoint(self.path, self.root if self.root is not None else sim, meta)
        self.saves += 1
        if self.every_sim_ns is not None:
            self._next_sim_ns = sim.now + self.every_sim_ns
        if self.every_wall_s is not None:
            self._next_wall = time.monotonic() + self.every_wall_s


# ------------------------------------------------------------- worker context
@dataclass
class CheckpointSlot:
    """One checkpointable run inside a spec (factories may run several).

    Self-contained (plain paths and floats) so it survives being pickled
    as part of the scenario graph and still works after a restore in a
    fresh process.
    """

    path: Path
    key: str
    slot: int
    every_sim_ns: Optional[float] = None
    every_wall_s: Optional[float] = None
    restored: bool = field(default=False, compare=False)

    def try_restore(self) -> Optional[Any]:
        """The checkpointed root if a usable snapshot exists, else None.

        Corrupt or stale (different code version / spec) files are
        deleted so they are never consulted again.
        """
        if not self.path.exists():
            return None
        try:
            header, root = load_checkpoint(self.path)
        except CheckpointError:
            self.path.unlink(missing_ok=True)
            return None
        if (
            header.get("code_version") != _current_code_version()
            or header.get("key") != self.key
        ):
            self.path.unlink(missing_ok=True)
            return None
        self.restored = True
        return root

    def checkpointer_for(self, root: Any) -> Optional[Checkpointer]:
        """A configured :class:`Checkpointer`, or None when no interval is set
        (restore-only mode: leftover checkpoints are consumed, none written)."""
        if self.every_sim_ns is None and self.every_wall_s is None:
            return None
        return Checkpointer(
            self.path,
            root=root,
            every_sim_ns=self.every_sim_ns,
            every_wall_s=self.every_wall_s,
            meta={"key": self.key, "slot": self.slot},
        )

    def complete(self) -> None:
        """The run finished: its checkpoint is spent."""
        try:
            self.path.unlink()
        except OSError:
            pass


class CheckpointContext:
    """Per-spec checkpoint policy, active while a worker executes a factory."""

    def __init__(
        self,
        directory: Union[str, Path],
        key: str,
        every_sim_ns: Optional[float] = None,
        every_wall_s: Optional[float] = None,
    ):
        self.directory = Path(directory)
        self.key = key
        self.every_sim_ns = every_sim_ns
        self.every_wall_s = every_wall_s
        self.slots = 0
        self.restores = 0

    def claim(self) -> CheckpointSlot:
        """The next run's slot (slot numbers follow factory call order,
        which is deterministic, so resumes line up with the original run)."""
        slot = self.slots
        self.slots += 1
        path = self.directory / f"{self.key[:16]}.{slot}{CHECKPOINT_SUFFIX}"
        return CheckpointSlot(
            path=path,
            key=self.key,
            slot=slot,
            every_sim_ns=self.every_sim_ns,
            every_wall_s=self.every_wall_s,
        )

    def note_restore(self) -> None:
        self.restores += 1


_CONTEXT: Optional[CheckpointContext] = None


def current_context() -> Optional[CheckpointContext]:
    return _CONTEXT


def claim_slot() -> Optional[CheckpointSlot]:
    """Called by :meth:`Scenario.run`; None unless a scope is active."""
    return _CONTEXT.claim() if _CONTEXT is not None else None


@contextmanager
def checkpoint_scope(
    directory: Union[str, Path],
    key: str,
    every_sim_ns: Optional[float] = None,
    every_wall_s: Optional[float] = None,
) -> Iterator[CheckpointContext]:
    """Activate checkpointing for the factory calls made inside the scope."""
    global _CONTEXT
    prev = _CONTEXT
    ctx = CheckpointContext(
        directory, key, every_sim_ns=every_sim_ns, every_wall_s=every_wall_s
    )
    _CONTEXT = ctx
    try:
        yield ctx
    finally:
        _CONTEXT = prev
