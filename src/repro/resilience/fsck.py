"""Artifact integrity checking (``repro fsck <results-dir>``).

Walks a results tree and validates every artifact the harness can leave
behind — sweep definitions, manifests, run records, journals, cache
entries, and simulator checkpoints — classifying each as:

* **ok** — parses, matches its schema, digests verify;
* **salvageable** — damaged in a way resume tolerates by design (a torn
  journal tail from a mid-append kill, a leftover checkpoint whose code
  version went stale, a manifest missing because the sweep never
  finished);
* **corrupt** — bytes that claim to be an artifact but fail validation
  (truncated JSON, checkpoint digest mismatch, a record whose key does
  not match its filename).

Checkpoint payloads are digest-verified *without unpickling* — fsck
never executes data from a damaged file.  ``--evict`` deletes corrupt
cache entries and checkpoints (both are re-derivable); records and
manifests are never auto-deleted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List

from repro.resilience.atomic import read_jsonl
from repro.resilience.checkpoint import CheckpointError, verify_checkpoint
from repro.runner.records import RunRecord
from repro.runner.spec import RunSpec

#: artifact states, in increasing order of severity
OK, SALVAGEABLE, CORRUPT = "ok", "salvageable", "corrupt"


@dataclass
class Finding:
    """One checked artifact."""

    path: str
    kind: str      # "sweep" | "manifest" | "record" | "journal" | "cache" | "checkpoint"
    state: str     # OK | SALVAGEABLE | CORRUPT
    detail: str = ""
    evicted: bool = False


@dataclass
class FsckReport:
    results_dir: str
    findings: List[Finding] = field(default_factory=list)

    def add(self, path: Path, kind: str, state: str, detail: str = "") -> Finding:
        finding = Finding(str(path), kind, state, detail)
        self.findings.append(finding)
        return finding

    def count(self, state: str) -> int:
        return sum(1 for f in self.findings if f.state == state)

    @property
    def ok(self) -> bool:
        return self.count(CORRUPT) == 0

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-fsck-report",
            "results_dir": self.results_dir,
            "ok": self.ok,
            "checked": len(self.findings),
            "counts": {s: self.count(s) for s in (OK, SALVAGEABLE, CORRUPT)},
            "findings": [
                {
                    "path": f.path,
                    "kind": f.kind,
                    "state": f.state,
                    "detail": f.detail,
                    "evicted": f.evicted,
                }
                for f in self.findings
                if f.state != OK
            ],
        }

    def report(self) -> str:
        lines = [
            f"fsck {self.results_dir}: {len(self.findings)} artifacts — "
            f"{self.count(OK)} ok, {self.count(SALVAGEABLE)} salvageable, "
            f"{self.count(CORRUPT)} corrupt"
        ]
        for f in self.findings:
            if f.state == OK:
                continue
            suffix = " [evicted]" if f.evicted else ""
            lines.append(f"  {f.state.upper():<11} {f.kind:<10} {f.path}: {f.detail}{suffix}")
        lines.append("OK" if self.ok else "CORRUPT ARTIFACTS FOUND")
        return "\n".join(lines)


def _load_json(path: Path) -> Any:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _check_sweep(report: FsckReport, path: Path) -> None:
    try:
        data = _load_json(path)
        if not isinstance(data, dict) or data.get("kind") != "repro-sweep":
            raise ValueError("not a repro-sweep payload")
        specs = [RunSpec.from_json_dict(s) for s in data["specs"]]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        report.add(path, "sweep", CORRUPT, str(exc))
        return
    report.add(path, "sweep", OK, f"{len(specs)} specs")


def _check_manifest(report: FsckReport, path: Path) -> None:
    if not path.exists():
        report.add(
            path, "manifest", SALVAGEABLE,
            "missing (sweep interrupted before completion; resume rebuilds it)",
        )
        return
    try:
        data = _load_json(path)
        if not isinstance(data, dict) or not isinstance(data.get("runs"), list):
            raise ValueError("no runs list")
    except (OSError, ValueError) as exc:
        report.add(path, "manifest", CORRUPT, str(exc))
        return
    report.add(path, "manifest", OK, f"{len(data['runs'])} runs")


def _check_record(report: FsckReport, path: Path) -> None:
    try:
        data = _load_json(path)
        record = RunRecord.from_json_dict(data)
        if not record.spec_key.startswith(path.stem):
            raise ValueError(
                f"spec key {record.spec_key[:16]} does not match filename"
            )
    except (OSError, ValueError, TypeError) as exc:
        report.add(path, "record", CORRUPT, str(exc))
        return
    report.add(path, "record", OK)


def _check_journal(report: FsckReport, path: Path) -> None:
    entries, torn = read_jsonl(path)
    if torn:
        report.add(
            path, "journal", SALVAGEABLE,
            f"{torn} torn line(s) skipped, {len(entries)} entries readable",
        )
    elif not entries:
        report.add(path, "journal", SALVAGEABLE, "empty journal")
    else:
        report.add(path, "journal", OK, f"{len(entries)} entries")


def _check_cache_entry(report: FsckReport, path: Path, evict: bool) -> None:
    try:
        data = _load_json(path)
        if not isinstance(data, dict):
            raise ValueError("payload is not an object")
    except (OSError, ValueError) as exc:
        finding = report.add(path, "cache", CORRUPT, str(exc))
        if evict:
            path.unlink(missing_ok=True)
            finding.evicted = True
        return
    report.add(path, "cache", OK)


def _check_checkpoint(report: FsckReport, path: Path, evict: bool) -> None:
    try:
        header = verify_checkpoint(path)
    except CheckpointError as exc:
        finding = report.add(path, "checkpoint", CORRUPT, str(exc))
        if evict:
            path.unlink(missing_ok=True)
            finding.evicted = True
        return
    # an intact leftover checkpoint is salvageable by definition: it only
    # exists because its run never completed
    report.add(
        path, "checkpoint", SALVAGEABLE,
        f"resumable snapshot at sim_ns={header.get('sim_ns')}",
    )


def fsck_results(results_dir: Path, evict: bool = False) -> FsckReport:
    """Validate every artifact under a results root; see module docstring."""
    results_dir = Path(results_dir)
    report = FsckReport(results_dir=str(results_dir))
    for sweep_path in sorted(results_dir.glob("*/sweep.json")):
        exp_dir = sweep_path.parent
        _check_sweep(report, sweep_path)
        _check_manifest(report, exp_dir / "manifest.json")
        journal = exp_dir / "journal.jsonl"
        if journal.exists():
            _check_journal(report, journal)
        for record_path in sorted((exp_dir / "runs").glob("*.json")):
            _check_record(report, record_path)
    # experiments written before sweep.json existed still get their
    # manifests and records checked
    for manifest_path in sorted(results_dir.glob("*/manifest.json")):
        if (manifest_path.parent / "sweep.json").exists():
            continue
        _check_manifest(report, manifest_path)
        for record_path in sorted((manifest_path.parent / "runs").glob("*.json")):
            _check_record(report, record_path)
    for cache_path in sorted((results_dir / ".cache").glob("*.json")):
        _check_cache_entry(report, cache_path, evict)
    for ckpt_path in sorted((results_dir / "checkpoints").glob("*.ckpt")):
        _check_checkpoint(report, ckpt_path, evict)
    return report
