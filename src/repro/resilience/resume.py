"""Supervised resume of interrupted sweeps.

``repro resume <results-dir>`` finishes whatever a killed or crashed
``repro experiments`` run left behind.  It works from the artifacts the
engine persists *before* executing anything:

* ``<experiment>/sweep.json`` — the full spec list plus the engine
  configuration (global seed, timeout, retries, checkpoint policy), so
  the sweep can be reconstructed without re-deriving it from experiment
  modules;
* ``.cache/`` — completed specs are salvaged as cache hits (keyed on
  spec + code version, so a code change since the crash correctly
  invalidates them);
* ``checkpoints/`` — interrupted specs restart from their latest
  simulator snapshot instead of from scratch.

Because every spec's seed derives from ``(global_seed, spec key)`` and
checkpoint restores are bit-identical, a resumed sweep produces records
whose measurements equal the uninterrupted run's — the property
``tests/test_resilience.py`` locks in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.runner.engine import RunEngine, RunFailure, SWEEP_KIND
from repro.runner.records import RunRecord
from repro.runner.spec import RunSpec


class ResumeError(RuntimeError):
    """The results directory holds nothing resumable."""


@dataclass
class ExperimentResume:
    """Outcome of resuming one experiment's sweep."""

    experiment: str
    n_specs: int = 0
    salvaged: int = 0          # completed before the interruption (cache hits)
    executed: int = 0          # run (or finished from a checkpoint) now
    restored: int = 0          # of those, runs that started from a snapshot
    failed: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and self.failed == 0


@dataclass
class ResumeReport:
    """Everything ``repro resume`` did, per experiment."""

    results_dir: str
    experiments: List[ExperimentResume] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.experiments)

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-resume-report",
            "results_dir": self.results_dir,
            "ok": self.ok,
            "experiments": [
                {
                    "experiment": e.experiment,
                    "n_specs": e.n_specs,
                    "salvaged": e.salvaged,
                    "executed": e.executed,
                    "restored": e.restored,
                    "failed": e.failed,
                    "error": e.error,
                }
                for e in self.experiments
            ],
        }

    def report(self) -> str:
        lines = [f"resume {self.results_dir}:"]
        for e in self.experiments:
            if e.error:
                lines.append(f"  {e.experiment}: ERROR {e.error}")
                continue
            lines.append(
                f"  {e.experiment}: {e.n_specs} specs — "
                f"{e.salvaged} salvaged, {e.executed} executed "
                f"({e.restored} from checkpoints), {e.failed} failed"
            )
        lines.append("OK" if self.ok else "FAILED")
        return "\n".join(lines)


def load_sweep(path: Path) -> Dict[str, Any]:
    """Parse and validate one ``sweep.json``."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("kind") != SWEEP_KIND:
        raise ResumeError(f"{path}: not a {SWEEP_KIND} file")
    if "specs" not in data or not isinstance(data["specs"], list):
        raise ResumeError(f"{path}: no spec list")
    return data


def find_sweeps(results_dir: Path) -> List[Path]:
    """Every ``<experiment>/sweep.json`` under a results root, sorted."""
    return sorted(
        p for p in results_dir.glob("*/sweep.json")
        if p.parent.name not in (".cache", "checkpoints")
    )


def resume_results(
    results_dir: Path,
    jobs: Optional[int] = None,
    experiments: Optional[List[str]] = None,
    progress: Optional[Callable[[int, int, RunRecord], None]] = None,
) -> ResumeReport:
    """Finish every interrupted sweep under ``results_dir``.

    Salvages completed specs through the result cache, restarts
    interrupted specs from their latest checkpoint, and re-runs the
    rest.  Failures are quarantined per experiment (strict mode off):
    one impossible spec must not block salvaging its siblings.
    """
    results_dir = Path(results_dir)
    sweeps = find_sweeps(results_dir)
    if experiments:
        wanted = set(experiments)
        sweeps = [p for p in sweeps if p.parent.name in wanted]
    if not sweeps:
        raise ResumeError(f"{results_dir}: no sweep.json found — nothing to resume")
    report = ResumeReport(results_dir=str(results_dir))
    for sweep_path in sweeps:
        name = sweep_path.parent.name
        outcome = ExperimentResume(experiment=name)
        report.experiments.append(outcome)
        try:
            sweep = load_sweep(sweep_path)
            specs = [RunSpec.from_json_dict(s) for s in sweep["specs"]]
        except (OSError, ValueError, KeyError, TypeError, ResumeError) as exc:
            outcome.error = str(exc)
            continue
        outcome.n_specs = len(specs)
        engine = RunEngine(
            jobs=jobs,
            global_seed=int(sweep.get("global_seed", 0)),
            timeout_s=sweep.get("timeout_s"),
            retries=int(sweep.get("retries", 1)),
            results_dir=results_dir,
            use_cache=True,
            strict=False,  # quarantine instead of aborting sibling sweeps
            progress=progress,
            checkpoint_sim_ns=sweep.get("checkpoint_sim_ns"),
            checkpoint_wall_s=sweep.get("checkpoint_wall_s"),
        )
        try:
            records = engine.run(name, specs)
        except RunFailure as exc:  # pragma: no cover - strict is off
            outcome.error = str(exc)
            continue
        outcome.salvaged = sum(1 for r in records if r.cached)
        outcome.executed = sum(1 for r in records if not r.cached)
        outcome.restored = sum(
            1 for r in records if not r.cached and r.checkpoint_restores > 0
        )
        outcome.failed = sum(1 for r in records if not r.ok)
    return report
