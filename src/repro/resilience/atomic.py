"""Torn-write-proof file emission.

Every artifact the harness leaves on disk (run records, manifests,
cache entries, bench payloads, traces, checkpoints) goes through the
helpers here: write to a temp file in the destination directory, flush
and ``fsync`` it, then ``os.replace`` over the target.  A crash — even a
SIGKILL or power loss mid-write — leaves either the old complete file
or the new complete file, never a truncated hybrid that would poison
the content-addressed cache or strand a resume.

The repo-wide rule (enforced by a grep test in ``tests/test_resilience.py``)
is that no production code calls ``json.dump`` or ``Path.write_text``
on an artifact path directly; serialization to caller-owned streams is
exempt and marked ``atomic-ok: stream``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

PathLike = Union[str, os.PathLike]


def fsync_dir(path: PathLike) -> None:
    """Flush a directory entry so a just-renamed file survives power loss.

    Best-effort: some filesystems (and all of Windows) refuse to open
    directories, in which case the rename alone is still crash-atomic.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes, durable: bool = True) -> Path:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if durable:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(path.parent)
    return path


def atomic_write_text(
    path: PathLike, text: str, encoding: str = "utf-8", durable: bool = True
) -> Path:
    """Atomically replace ``path`` with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding), durable=durable)


def atomic_write_json(
    path: PathLike,
    obj: Any,
    indent: Optional[int] = 1,
    trailing_newline: bool = False,
    durable: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``obj`` serialized as JSON."""
    text = json.dumps(obj, indent=indent)
    if trailing_newline:
        text += "\n"
    return atomic_write_text(path, text, durable=durable)


def append_jsonl(path: PathLike, obj: Any, durable: bool = True) -> None:
    """Append one JSON object as a single line (journal entries).

    Appends are not rename-atomic: a crash can tear the *last* line.
    Readers (:func:`read_jsonl`) therefore tolerate a torn tail; every
    fully written line before it is durable thanks to the fsync.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(obj, separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line)
        fh.flush()
        if durable:
            os.fsync(fh.fileno())


def read_jsonl(path: PathLike) -> "tuple[list, int]":
    """Parse a journal; returns ``(entries, torn_lines)``.

    Unparseable lines are skipped and counted — by construction only the
    final line of a journal can be torn, but the reader is permissive
    about any corruption so a damaged journal never blocks a resume.
    """
    entries = []
    torn = 0
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    torn += 1
    except OSError:
        return [], 0
    return entries, torn
