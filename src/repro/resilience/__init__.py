"""Crash-safety layer: checkpoints, atomic artifacts, resume, fsck.

Three cooperating pieces keep long experiment matrices preemption-proof:

* :mod:`repro.resilience.atomic` — every JSON/bytes artifact is written
  tmp + fsync + rename, so a SIGKILL mid-dump can never leave a torn
  file behind;
* :mod:`repro.resilience.checkpoint` — deterministic pickled snapshots
  of the full simulator graph, schema-versioned and digest-verified,
  taken periodically by :meth:`Simulator.checkpoint_every`'s loop;
* :mod:`repro.resilience.resume` / :mod:`~repro.resilience.fsck` —
  ``repro resume`` salvages a killed sweep from its ``sweep.json``,
  result cache and checkpoints; ``repro fsck`` audits a results tree
  and reports salvageable vs corrupt artifacts.
"""

from repro.resilience.atomic import (
    append_jsonl,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    Checkpointer,
    checkpoint_scope,
    claim_slot,
    current_context,
    freeze_blob,
    load_checkpoint,
    thaw_blob,
    verify_checkpoint,
    write_checkpoint,
)

__all__ = [
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "read_jsonl",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "Checkpointer",
    "checkpoint_scope",
    "claim_slot",
    "current_context",
    "freeze_blob",
    "load_checkpoint",
    "thaw_blob",
    "verify_checkpoint",
    "write_checkpoint",
]
