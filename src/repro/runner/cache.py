"""Content-addressed result cache.

Cache entries are keyed on ``(spec key, code version)`` where the code
version is a content hash of every ``*.py`` file in the installed
``repro`` package — editing any simulator source invalidates every
cached cell automatically, so re-running a sweep only executes changed
or new cells and never serves stale physics.

A damaged entry (truncated write, corrupted JSON, wrong payload shape)
is treated as a **miss**: it is logged, evicted from disk, and the spec
re-executes.  The cache never raises on bad bytes and never serves
anything it cannot fully parse.
"""

from __future__ import annotations

import json
import hashlib
import logging
from pathlib import Path
from typing import Any, Dict, Optional

from repro.resilience.atomic import atomic_write_json

logger = logging.getLogger("repro.runner.cache")

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of the repro package sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:20]
    return _CODE_VERSION


def cache_key(spec_key: str, version: str) -> str:
    return hashlib.sha256(f"{spec_key}:{version}".encode("utf-8")).hexdigest()


class ResultCache:
    """One-JSON-file-per-entry cache under ``<results_root>/.cache/``."""

    def __init__(self, root: Path):
        self.dir = Path(root) / ".cache"
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, spec_key: str, version: str) -> Path:
        return self.dir / f"{cache_key(spec_key, version)}.json"

    def _evict(self, path: Path, reason: str) -> None:
        self.evictions += 1
        logger.warning("evicting corrupt cache entry %s: %s", path.name, reason)
        try:
            path.unlink()
        except OSError:
            pass

    def get(self, spec_key: str, version: str) -> Optional[Dict[str, Any]]:
        """The cached record dict for ``(spec, code version)``, or None.

        A missing file is a plain miss; an unreadable, truncated, or
        structurally invalid one is a miss that also evicts the entry.
        """
        path = self._path(spec_key, version)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError) as exc:
            self._evict(path, f"unparseable: {exc}")
            self.misses += 1
            return None
        if not isinstance(data, dict) or data.get("spec_key", spec_key) != spec_key:
            self._evict(path, "payload is not a record for this spec")
            self.misses += 1
            return None
        self.hits += 1
        return data

    def put(self, spec_key: str, version: str, record: Dict[str, Any]) -> None:
        """Durably persist a record dict (tmp file + fsync + rename)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self._path(spec_key, version), record, indent=None)
