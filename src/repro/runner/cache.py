"""Content-addressed result cache.

Cache entries are keyed on ``(spec key, code version)`` where the code
version is a content hash of every ``*.py`` file in the installed
``repro`` package — editing any simulator source invalidates every
cached cell automatically, so re-running a sweep only executes changed
or new cells and never serves stale physics.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of the repro package sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:20]
    return _CODE_VERSION


def cache_key(spec_key: str, version: str) -> str:
    return hashlib.sha256(f"{spec_key}:{version}".encode("utf-8")).hexdigest()


class ResultCache:
    """One-JSON-file-per-entry cache under ``<results_root>/.cache/``."""

    def __init__(self, root: Path):
        self.dir = Path(root) / ".cache"
        self.hits = 0
        self.misses = 0

    def _path(self, spec_key: str, version: str) -> Path:
        return self.dir / f"{cache_key(spec_key, version)}.json"

    def get(self, spec_key: str, version: str) -> Optional[Dict[str, Any]]:
        """The cached record dict for ``(spec, code version)``, or None."""
        path = self._path(spec_key, version)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return data

    def put(self, spec_key: str, version: str, record: Dict[str, Any]) -> None:
        """Atomically persist a record dict (rename over a temp file)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self._path(spec_key, version)
        fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
