"""Parallel, fault-tolerant execution of :class:`RunSpec` lists.

The :class:`RunEngine` shards a sweep's independent cells across worker
processes (``jobs`` of them; ``jobs=1`` is a fully in-process serial
path kept for debugging).  Guarantees:

* **Determinism** — every spec's scenario seed is derived from
  ``(global_seed, spec key)``, never from scheduling order, so serial
  and parallel sweeps produce bit-identical measurements.
* **Fault tolerance** — a worker that crashes, raises, or exceeds the
  per-spec timeout is retried (default: once) on a fresh process; a spec
  that still fails is reported in its record and, under ``strict``, as a
  :class:`RunFailure` — never silently dropped.
* **Artifacts & cache** — when given a ``results_dir``, every completed
  spec is written as a JSON record under ``results/<experiment>/runs/``
  (plus a sweep ``manifest.json``) and memoized in a content-addressed
  cache keyed on ``(spec, code version)``, so re-running a sweep only
  executes changed cells.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache, code_version
from repro.runner.records import RunRecord
from repro.runner.registry import resolve
from repro.runner.spec import RunSpec

#: default hard cap on one spec's wall time before the worker is killed
DEFAULT_TIMEOUT_S = 900.0

ProgressFn = Callable[[int, int, RunRecord], None]


class RunFailure(RuntimeError):
    """A sweep had specs that failed even after retry."""

    def __init__(self, records: List[RunRecord]):
        self.records = records
        lines = [f"{len(records)} spec(s) failed after retries:"]
        lines += [
            f"  {'/'.join(r.tags) or r.factory} [{r.spec_key[:16]}]: {r.error}"
            for r in records
        ]
        super().__init__("\n".join(lines))


@dataclass
class EngineEvent:
    """One noteworthy execution event (crash, timeout, retry, failure)."""

    spec_key: str
    kind: str          # "crash" | "exception" | "timeout" | "retry" | "failed"
    attempt: int
    detail: str = ""


def execute_spec(spec: RunSpec, seed: int, attempt: int = 0) -> Dict[str, Any]:
    """Resolve and invoke a spec's factory.  Runs inside the worker."""
    factory = resolve(spec.factory)
    params = spec.params_dict()
    params["_attempt"] = attempt
    return factory(params, seed, spec.warmup_ns, spec.measure_ns)


def _worker_main(conn, spec: RunSpec, seed: int, attempt: int) -> None:
    """Worker-process entry: run one spec, ship the outcome, exit."""
    try:
        started = time.perf_counter()
        measurements = execute_spec(spec, seed, attempt)
        conn.send(("ok", measurements, time.perf_counter() - started))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=20), 0.0))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Active:
    """Book-keeping for one in-flight worker process."""

    index: int
    attempt: int
    proc: Any
    deadline: Optional[float]


class RunEngine:
    """Executes spec lists; see the module docstring for the contract."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        global_seed: int = 0,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        retries: int = 1,
        results_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        strict: bool = True,
        progress: Optional[ProgressFn] = None,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.global_seed = global_seed
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.use_cache = use_cache and self.results_dir is not None
        self.strict = strict
        self.progress = progress
        self.events: List[EngineEvent] = []

    # ----------------------------------------------------------------- API
    def run(self, experiment: str, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute every spec; records come back in spec order."""
        self.events = []
        version = code_version()
        cache = ResultCache(self.results_dir) if self.use_cache else None
        records: List[Optional[RunRecord]] = [None] * len(specs)
        done_count = 0
        pending: List[int] = []

        for i, spec in enumerate(specs):
            hit = cache.get(spec.key, version) if cache is not None else None
            if hit is not None:
                record = RunRecord.from_json_dict(hit)
                record.tags = list(spec.tags)       # tags are not part of the key
                record.experiment = experiment
                record.cached = True
                records[i] = record
                done_count += 1
                self._emit_progress(done_count, len(specs), record)
            else:
                pending.append(i)

        def finish(i: int, record: RunRecord) -> None:
            nonlocal done_count
            records[i] = record
            done_count += 1
            if record.ok and cache is not None:
                cache.put(specs[i].key, version, record.to_json_dict())
            self._emit_progress(done_count, len(specs), record)

        if pending:
            if self.jobs == 1:
                for i in pending:
                    finish(i, self._run_serial(experiment, specs[i], version))
            else:
                self._run_parallel(experiment, specs, pending, version, finish)

        final = [r for r in records if r is not None]
        assert len(final) == len(specs)
        self._write_artifacts(experiment, specs, final)
        failed = [r for r in final if not r.ok]
        if failed and self.strict:
            raise RunFailure(failed)
        return final

    # -------------------------------------------------------------- serial
    def _run_serial(self, experiment: str, spec: RunSpec, version: str) -> RunRecord:
        """In-process execution (no subprocess, so no hang protection);
        exceptions still get the same retry budget as worker crashes."""
        record = RunRecord.for_spec(spec, self.global_seed, experiment, version)
        for attempt in range(self.retries + 1):
            try:
                started = time.perf_counter()
                measurements = execute_spec(spec, record.seed, attempt)
                return self._complete(record, measurements,
                                      time.perf_counter() - started, attempt + 1)
            except Exception:
                detail = traceback.format_exc(limit=20)
                self._note(spec, "exception", attempt, detail)
                if attempt < self.retries:
                    self._note(spec, "retry", attempt + 1)
        record.error = f"failed after {self.retries + 1} attempt(s): exception"
        record.attempts = self.retries + 1
        self._note(spec, "failed", self.retries, record.error)
        return record

    # ------------------------------------------------------------ parallel
    def _run_parallel(
        self,
        experiment: str,
        specs: Sequence[RunSpec],
        pending: List[int],
        version: str,
        finish: Callable[[int, RunRecord], None],
    ) -> None:
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        todo = deque((i, 0) for i in pending)
        active: Dict[Any, _Active] = {}
        failures: Dict[int, str] = {}

        def fail_or_retry(index: int, attempt: int, kind: str, detail: str) -> None:
            spec = specs[index]
            self._note(spec, kind, attempt, detail)
            if attempt < self.retries:
                self._note(spec, "retry", attempt + 1)
                todo.append((index, attempt + 1))
            else:
                failures[index] = kind
                record = RunRecord.for_spec(spec, self.global_seed, experiment, version)
                record.attempts = attempt + 1
                record.error = f"failed after {attempt + 1} attempt(s): {kind}"
                self._note(spec, "failed", attempt, record.error)
                finish(index, record)

        try:
            while todo or active:
                while todo and len(active) < self.jobs:
                    index, attempt = todo.popleft()
                    spec = specs[index]
                    seed = spec.derived_seed(self.global_seed)
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(child_conn, spec, seed, attempt),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()  # ours closes so worker exit yields EOF
                    timeout = (
                        spec.timeout_s if spec.timeout_s is not None else self.timeout_s
                    )
                    deadline = time.monotonic() + timeout if timeout else None
                    active[parent_conn] = _Active(index, attempt, proc, deadline)

                ready = mp_connection.wait(list(active), timeout=0.05)
                for conn in ready:
                    state = active.pop(conn)
                    msg: Optional[Tuple] = None
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        msg = None
                    conn.close()
                    state.proc.join(timeout=5.0)
                    spec = specs[state.index]
                    if msg is None:
                        fail_or_retry(
                            state.index, state.attempt, "crash",
                            f"worker exited with code {state.proc.exitcode}",
                        )
                    elif msg[0] == "ok":
                        record = RunRecord.for_spec(
                            spec, self.global_seed, experiment, version
                        )
                        finish(
                            state.index,
                            self._complete(record, msg[1], msg[2], state.attempt + 1),
                        )
                    else:
                        fail_or_retry(state.index, state.attempt, "exception", msg[1])

                now = time.monotonic()
                for conn, state in list(active.items()):
                    if state.deadline is None or now <= state.deadline:
                        continue
                    # a result may have raced in just before the deadline
                    if conn.poll():
                        continue
                    active.pop(conn)
                    state.proc.kill()
                    state.proc.join(timeout=5.0)
                    conn.close()
                    timeout = (
                        specs[state.index].timeout_s
                        if specs[state.index].timeout_s is not None
                        else self.timeout_s
                    )
                    fail_or_retry(
                        state.index, state.attempt, "timeout",
                        f"killed after {timeout:.1f}s",
                    )
        finally:
            for conn, state in active.items():
                state.proc.kill()
                state.proc.join(timeout=5.0)
                conn.close()

    # ------------------------------------------------------------- helpers
    def _complete(
        self, record: RunRecord, measurements: Dict[str, Any],
        wall_time_s: float, attempts: int,
    ) -> RunRecord:
        record.measurements = measurements
        record.wall_time_s = wall_time_s
        record.attempts = attempts
        record.events_executed = int(measurements.get("events_executed", 0))
        if wall_time_s > 0:
            record.events_per_sec = record.events_executed / wall_time_s
        return record

    def _note(self, spec: RunSpec, kind: str, attempt: int, detail: str = "") -> None:
        self.events.append(EngineEvent(spec.key, kind, attempt, detail))

    def _emit_progress(self, done: int, total: int, record: RunRecord) -> None:
        if self.progress is not None:
            self.progress(done, total, record)

    # ------------------------------------------------------------ artifacts
    def _write_artifacts(
        self, experiment: str, specs: Sequence[RunSpec], records: List[RunRecord]
    ) -> None:
        if self.results_dir is None:
            return
        out_dir = self.results_dir / experiment
        runs_dir = out_dir / "runs"
        runs_dir.mkdir(parents=True, exist_ok=True)
        for record in records:
            path = runs_dir / f"{record.spec_key[:16]}.json"
            path.write_text(json.dumps(record.to_json_dict(), indent=1))
        manifest = {
            "experiment": experiment,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "jobs": self.jobs,
            "global_seed": self.global_seed,
            "code_version": code_version(),
            "n_specs": len(specs),
            "cached": sum(1 for r in records if r.cached),
            "failed": sum(1 for r in records if not r.ok),
            "events": [
                {"spec": e.spec_key[:16], "kind": e.kind, "attempt": e.attempt}
                for e in self.events
            ],
            "runs": [
                {
                    "spec_key": r.spec_key,
                    "record": f"runs/{r.spec_key[:16]}.json",
                    "factory": r.factory,
                    "tags": r.tags,
                    "ok": r.ok,
                    "cached": r.cached,
                    "wall_time_s": round(r.wall_time_s, 4),
                    "events_per_sec": round(r.events_per_sec, 1),
                }
                for r in records
            ],
        }
        (out_dir / "manifest.json").write_text(json.dumps(manifest, indent=1))


def run_specs(
    experiment: str,
    specs: Sequence[RunSpec],
    engine: Optional[RunEngine] = None,
    **engine_kwargs,
) -> List[RunRecord]:
    """Convenience wrapper: run ``specs`` on ``engine`` (default: serial,
    artifact-free, cache-free — the library/testing configuration)."""
    if engine is None:
        engine_kwargs.setdefault("jobs", 1)
        engine_kwargs.setdefault("results_dir", None)
        engine = RunEngine(**engine_kwargs)
    return engine.run(experiment, specs)
