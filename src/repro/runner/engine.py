"""Parallel, fault-tolerant execution of :class:`RunSpec` lists.

The :class:`RunEngine` shards a sweep's independent cells across an
:class:`~repro.runner.executors.base.Executor` — in-process
(``jobs=1``), a local process pool, or a socket runner pool
(:mod:`repro.runner.executors.socketpool`).  The engine owns
*supervision*; the executor owns only *placement and transport*.
Guarantees:

* **Determinism** — every spec's scenario seed is derived from
  ``(global_seed, spec key)``, never from scheduling order or placement,
  so serial, parallel, and pooled sweeps produce bit-identical
  measurements.
* **Supervision** — a cell that crashes, raises, or exceeds the
  per-spec timeout is retried (default: once) on a fresh worker with
  bounded exponential backoff; a spec that exhausts its retry budget is
  *quarantined* — recorded as failed, listed in the manifest, and the
  rest of the matrix keeps running.  Under ``strict`` the quarantined
  specs still surface as a :class:`RunFailure` once the sweep finishes —
  never silently dropped, never aborting sibling cells.  Losing a pool
  *runner* is not a cell failure: the socket executor re-dispatches the
  lost cells internally without touching the retry budget.
* **Crash safety** — with a ``results_dir``, workers run inside a
  checkpoint scope: the simulator periodically snapshots its full state
  (:mod:`repro.resilience.checkpoint`) and a retried, resumed, or
  re-dispatched spec restarts from the latest snapshot instead of from
  scratch.  A ``sweep.json`` (the spec list) and an append-only
  ``journal.jsonl`` (per-spec status) are written up front so
  ``repro resume`` can reconstruct and finish an interrupted sweep.  The
  journal has exactly one writer, asserted with an exclusive lockfile
  (``journal.jsonl.lock``): a second engine pointed at the same sweep
  directory fails fast with :class:`JournalLockError` instead of
  interleaving ``seq`` numbers.  The lock is advisory and dies with the
  process, so a SIGKILLed sweep never wedges ``repro resume``.
* **Artifacts & cache** — when given a ``results_dir``, every completed
  spec is written (atomically: tmp + fsync + rename) as a JSON record
  under ``results/<experiment>/runs/`` (plus a sweep ``manifest.json``)
  and memoized in a content-addressed cache keyed on
  ``(spec, code version)``, so re-running a sweep only executes changed
  cells.
* **Honesty** — records carry ``timeout_enforced``: in-process execution
  (the local executor, or a drained socket pool) has no hang protection,
  and a cell that outlives its nominal timeout there emits a
  ``timeout_overrun`` warning event instead of silently pretending the
  cap was real.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.atomic import append_jsonl, atomic_write_json, read_jsonl
from repro.runner.cache import ResultCache, code_version
from repro.runner.executors.base import (
    CellTask,
    Executor,
    LocalExecutor,
    execute_spec,
)
from repro.runner.executors.process import ProcessExecutor
from repro.runner.records import RunRecord
from repro.runner.spec import RunSpec

__all__ = [
    "CELL_PHASES",
    "DEFAULT_TIMEOUT_S",
    "JOURNAL_SCHEMA_VERSION",
    "EngineEvent",
    "JournalLockError",
    "RunEngine",
    "RunFailure",
    "execute_spec",
    "run_specs",
]

#: default hard cap on one spec's wall time before the worker is killed
DEFAULT_TIMEOUT_S = 900.0
#: retry backoff: min(cap, base * 2**(attempt-1)) seconds before attempt N
DEFAULT_BACKOFF_BASE_S = 0.5
DEFAULT_BACKOFF_CAP_S = 30.0

#: sweep.json schema
SWEEP_SCHEMA_VERSION = 1
SWEEP_KIND = "repro-sweep"

#: journal.jsonl schema.  v2 adds to every entry a monotone ``seq`` (so a
#: tailing reader can detect gaps and order entries without trusting file
#: position), a wall-clock ``ts`` (epoch seconds), a lifecycle ``phase``
#: (``queued/running/retrying/quarantined/done/cached``), ``spec_start``
#: entries when a cell begins executing, and a ``progress`` payload on
#: completion entries (events executed, sim-time, events/sec — plus the
#: SelfProfiler rate when that instrumentation was on).  v1 journals
#: (no seq/ts/phase) remain readable by every consumer.  Pool-executed
#: sweeps additionally journal ``runner`` entries (fleet lifecycle:
#: registered/lost/redispatch/degraded) and stamp a ``runner`` identity
#: on ``spec_start``/``spec`` entries; non-pool consumers ignore both.
JOURNAL_SCHEMA_VERSION = 2

#: lifecycle phases a sweep cell moves through (journal ``phase`` values)
CELL_PHASES = ("queued", "running", "retrying", "quarantined", "done", "cached")

ProgressFn = Callable[[int, int, RunRecord], None]


def _next_journal_seq(path: Path) -> int:
    """First unused ``seq`` for a journal — continues the monotone
    sequence across resumed sweeps (v1 entries without ``seq`` count as
    position-only and are simply skipped over)."""
    if not path.exists():
        return 0
    entries, _ = read_jsonl(path)
    highest = -1
    for entry in entries:
        if isinstance(entry, dict) and isinstance(entry.get("seq"), int):
            highest = max(highest, entry["seq"])
    return highest + 1


class JournalLockError(RuntimeError):
    """A second engine tried to write a sweep's journal concurrently."""


def _acquire_journal_lock(path: Path) -> Optional[int]:
    """Take the exclusive advisory lock asserting single-writer journal
    ownership; returns the held fd.

    Uses ``flock``, so the lock evaporates when the holding process dies
    — a SIGKILLed sweep leaves a stale ``journal.jsonl.lock`` *file* but
    no held lock, and ``repro resume`` acquires it without ceremony.  On
    platforms without ``fcntl`` the lockfile is created but exclusion is
    best-effort only.
    """
    fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-Unix
        return fd
    try:
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        try:
            holder = os.read(fd, 64).decode("ascii", "replace").strip()
        except OSError:
            holder = ""
        os.close(fd)
        raise JournalLockError(
            f"{path}: held by pid {holder or 'unknown'} — another engine is "
            "already writing this sweep's journal; two writers would "
            "interleave seq numbers. Wait for it or point this run at a "
            "different --results-dir."
        ) from None
    os.ftruncate(fd, 0)
    os.write(fd, f"{os.getpid()}\n".encode())
    return fd


class RunFailure(RuntimeError):
    """A sweep had specs that failed even after retry."""

    def __init__(self, records: List[RunRecord]):
        self.records = records
        lines = [f"{len(records)} spec(s) failed after retries:"]
        lines += [
            f"  {'/'.join(r.tags) or r.factory} [{r.spec_key[:16]}]: {r.error}"
            for r in records
        ]
        super().__init__("\n".join(lines))


@dataclass
class EngineEvent:
    """One noteworthy execution event (crash, timeout, retry, failure,
    timeout-overrun warning)."""

    spec_key: str
    kind: str          # "crash" | "exception" | "timeout" | "retry" | "failed" | "timeout_overrun"
    attempt: int
    detail: str = ""
    backoff_s: float = 0.0


class RunEngine:
    """Executes spec lists; see the module docstring for the contract."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        global_seed: int = 0,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        retries: int = 1,
        results_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        strict: bool = True,
        progress: Optional[ProgressFn] = None,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        checkpoint_sim_ns: Optional[float] = None,
        checkpoint_wall_s: Optional[float] = None,
        executor: Optional[Executor] = None,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.global_seed = global_seed
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.use_cache = use_cache and self.results_dir is not None
        self.strict = strict
        self.progress = progress
        self.backoff_base_s = max(0.0, backoff_base_s)
        self.backoff_cap_s = max(0.0, backoff_cap_s)
        self.checkpoint_sim_ns = checkpoint_sim_ns
        self.checkpoint_wall_s = checkpoint_wall_s
        #: explicit execution backend; None picks local (jobs=1) or a
        #: process pool (jobs>1), which is the pre-executor behaviour
        self.executor = executor
        self.events: List[EngineEvent] = []
        #: spec keys quarantined (failed after full retry budget) last run
        self.quarantined: List[str] = []
        #: executor-level fleet events (runner registered/lost/...) last run
        self.runner_events: List[Dict[str, Any]] = []
        self._retry_hist: Dict[int, List[Dict[str, Any]]] = {}
        self._journal_path: Optional[Path] = None
        self._journal_seq = 0
        self._journal_lock_fd: Optional[int] = None
        self._executor_name = ""

    # ----------------------------------------------------------------- API
    def run(self, experiment: str, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute every spec; records come back in spec order."""
        self.events = []
        self.quarantined = []
        self.runner_events = []
        self._retry_hist = {}
        executor = self._resolve_executor()
        self._executor_name = executor.name
        version = code_version()
        cache = ResultCache(self.results_dir) if self.use_cache else None
        self._begin_artifacts(experiment, specs, version)
        try:
            records: List[Optional[RunRecord]] = [None] * len(specs)
            done_count = 0
            pending: List[int] = []

            for i, spec in enumerate(specs):
                hit = cache.get(spec.key, version) if cache is not None else None
                if hit is not None:
                    record = RunRecord.from_json_dict(hit)
                    record.tags = list(spec.tags)   # tags are not part of the key
                    record.experiment = experiment
                    record.cached = True
                    records[i] = record
                    done_count += 1
                    self._journal("spec", record)
                    self._emit_progress(done_count, len(specs), record)
                else:
                    pending.append(i)

            def finish(i: int, record: RunRecord) -> None:
                nonlocal done_count
                record.retries = list(self._retry_hist.get(i, []))
                record.timeout_s = self._effective_timeout(specs[i])
                records[i] = record
                done_count += 1
                if record.ok:
                    if cache is not None:
                        cache.put(specs[i].key, version, record.to_json_dict())
                    self._discard_checkpoints(specs[i])
                else:
                    record.quarantined = True
                    self.quarantined.append(record.spec_key)
                self._journal("spec", record)
                self._emit_progress(done_count, len(specs), record)

            if pending:
                self._run_pending(experiment, specs, pending, version, executor, finish)

            final = [r for r in records if r is not None]
            assert len(final) == len(specs)
            self._write_artifacts(experiment, specs, final)
            failed = [r for r in final if not r.ok]
            if failed and self.strict:
                raise RunFailure(failed)
            return final
        finally:
            self._release_journal_lock()

    # ---------------------------------------------------------- supervision
    def _resolve_executor(self) -> Executor:
        if self.executor is not None:
            return self.executor
        return LocalExecutor() if self.jobs == 1 else ProcessExecutor(self.jobs)

    def _effective_timeout(self, spec: RunSpec) -> Optional[float]:
        return spec.timeout_s if spec.timeout_s is not None else self.timeout_s

    def _backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based): bounded exponential."""
        if self.backoff_base_s <= 0.0 or attempt < 1:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1))

    def _note_retry(self, index: int, spec: RunSpec, attempt: int, cause: str) -> float:
        """Record a scheduled retry; returns its backoff delay."""
        backoff = self._backoff_s(attempt)
        self._retry_hist.setdefault(index, []).append(
            {"attempt": attempt, "cause": cause, "backoff_s": backoff}
        )
        self._note(spec, "retry", attempt, backoff_s=backoff)
        return backoff

    def _checkpoint_cfg(self) -> Optional[Dict[str, Any]]:
        """The checkpoint policy passed to workers (None = no scope)."""
        if self.results_dir is None:
            return None
        ckpt_dir = self.results_dir / "checkpoints"
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        return {
            "dir": str(ckpt_dir),
            "sim_ns": self.checkpoint_sim_ns,
            "wall_s": self.checkpoint_wall_s,
        }

    def _discard_checkpoints(self, spec: RunSpec) -> None:
        """A spec completed: its snapshots (all slots) are spent."""
        if self.results_dir is None:
            return
        ckpt_dir = self.results_dir / "checkpoints"
        for path in ckpt_dir.glob(f"{spec.short_key}.*.ckpt"):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------ execution loop
    def _run_pending(
        self,
        experiment: str,
        specs: Sequence[RunSpec],
        pending: List[int],
        version: str,
        executor: Executor,
        finish: Callable[[int, RunRecord], None],
    ) -> None:
        """Drive the executor until every pending cell has a record.

        The engine journals cell starts, applies the retry/backoff/
        quarantine policy to non-ok outcomes, and stamps execution
        provenance (runner identity, timeout honesty) on records; the
        executor decides where each cell runs.
        """
        ckpt = self._checkpoint_cfg()
        executor.start(self._on_executor_event)
        # (spec index, attempt, not-before monotonic time) — backoff keeps
        # a retried spec out of the launch loop without stalling siblings
        todo: List[Tuple[int, int, float]] = [(i, 0, 0.0) for i in pending]
        inflight: Dict[int, Tuple[int, int]] = {}    # task_id -> (index, attempt)
        next_task_id = 0

        def fail_or_retry(index: int, attempt: int, kind: str, detail: str) -> None:
            spec = specs[index]
            self._note(spec, kind, attempt, detail)
            if attempt < self.retries:
                backoff = self._note_retry(index, spec, attempt + 1, kind)
                todo.append((index, attempt + 1, time.monotonic() + backoff))  # wallclock-ok: retry backoff
            else:
                record = RunRecord.for_spec(spec, self.global_seed, experiment, version)
                record.attempts = attempt + 1
                record.error = f"failed after {attempt + 1} attempt(s): {kind}"
                record.timeout_enforced = executor.enforces_timeouts
                self._note(spec, "failed", attempt, record.error)
                finish(index, record)

        try:
            while todo or inflight:
                now = time.monotonic()  # wallclock-ok: retry backoff
                while todo and executor.free_slots() > 0:
                    slot = next(
                        (j for j, t in enumerate(todo) if t[2] <= now), None
                    )
                    if slot is None:
                        break  # everything launchable is backing off
                    index, attempt, _ = todo.pop(slot)
                    spec = specs[index]
                    task = CellTask(
                        task_id=next_task_id,
                        index=index,
                        spec=spec,
                        seed=spec.derived_seed(self.global_seed),
                        attempt=attempt,
                        ckpt=ckpt,
                        timeout_s=self._effective_timeout(spec),
                    )
                    next_task_id += 1
                    placement = executor.submit(task)
                    inflight[task.task_id] = (index, attempt)
                    self._journal_spec_start(spec, attempt, runner=placement)

                for out in executor.poll(0.05):
                    if out.task_id not in inflight:
                        continue  # duplicate / stale outcome
                    index, attempt = inflight.pop(out.task_id)
                    spec = specs[index]
                    if out.status == "ok":
                        if out.timeout_overrun_s > 0.0:
                            timeout = self._effective_timeout(spec)
                            self._note(
                                spec, "timeout_overrun", attempt,
                                f"cell ran {out.timeout_overrun_s:.1f}s past its "
                                f"unenforced {timeout:.1f}s timeout",
                            )
                        record = RunRecord.for_spec(
                            spec, self.global_seed, experiment, version
                        )
                        record.runner = out.runner
                        record.timeout_enforced = (
                            out.enforced if out.enforced is not None
                            else executor.enforces_timeouts
                        )
                        finish(
                            index,
                            self._complete(
                                record, out.measurements, out.wall_time_s,
                                attempt + 1, out.checkpoint_restores,
                            ),
                        )
                    else:
                        fail_or_retry(index, attempt, out.status, out.detail)
        finally:
            executor.close()

    def _on_executor_event(self, payload: Dict[str, Any]) -> None:
        """Executor-level fleet event (runner registered/lost/redispatch/
        degraded): journal it and keep it for the manifest."""
        self.runner_events.append(dict(payload))
        self._journal_emit({"kind": "runner", **payload}, durable=False)

    # ------------------------------------------------------------- helpers
    def _complete(
        self, record: RunRecord, measurements: Dict[str, Any],
        wall_time_s: float, attempts: int, checkpoint_restores: int = 0,
    ) -> RunRecord:
        record.measurements = measurements
        record.wall_time_s = wall_time_s
        record.attempts = attempts
        record.checkpoint_restores = checkpoint_restores
        record.events_executed = int(measurements.get("events_executed", 0))
        if wall_time_s > 0:
            record.events_per_sec = record.events_executed / wall_time_s
        return record

    def _note(
        self, spec: RunSpec, kind: str, attempt: int,
        detail: str = "", backoff_s: float = 0.0,
    ) -> None:
        event = EngineEvent(spec.key, kind, attempt, detail, backoff_s)
        self.events.append(event)
        entry = {
            "kind": "event",
            "spec_key": event.spec_key,
            "event": event.kind,
            "attempt": event.attempt,
            "backoff_s": event.backoff_s,
        }
        phase = {"retry": "retrying", "failed": "quarantined"}.get(kind)
        if phase is not None:
            entry["phase"] = phase
        self._journal_emit(entry, durable=False)

    def _emit_progress(self, done: int, total: int, record: RunRecord) -> None:
        if self.progress is not None:
            self.progress(done, total, record)

    # ------------------------------------------------------------ artifacts
    def _begin_artifacts(
        self, experiment: str, specs: Sequence[RunSpec], version: str
    ) -> None:
        """Persist the sweep definition *before* running anything, so an
        interrupted sweep can be reconstructed by ``repro resume``."""
        if self.results_dir is None:
            self._journal_path = None
            return
        out_dir = self.results_dir / experiment
        out_dir.mkdir(parents=True, exist_ok=True)
        # single-writer assertion first: refuse to touch a sweep another
        # live engine is writing
        self._journal_lock_fd = _acquire_journal_lock(out_dir / "journal.jsonl.lock")
        atomic_write_json(
            out_dir / "sweep.json",
            {
                "kind": SWEEP_KIND,
                "schema_version": SWEEP_SCHEMA_VERSION,
                "experiment": experiment,
                "global_seed": self.global_seed,
                "jobs": self.jobs,
                "executor": self._executor_name,
                "timeout_s": self.timeout_s,
                "retries": self.retries,
                "checkpoint_sim_ns": self.checkpoint_sim_ns,
                "checkpoint_wall_s": self.checkpoint_wall_s,
                "specs": [s.to_json_dict() for s in specs],
            },
        )
        self._journal_path = out_dir / "journal.jsonl"
        self._journal_seq = _next_journal_seq(self._journal_path)
        self._journal_emit(
            {
                "kind": "sweep_start",
                "experiment": experiment,
                "n_specs": len(specs),
                "global_seed": self.global_seed,
                "code_version": version,
                "executor": self._executor_name,
                "journal_schema": JOURNAL_SCHEMA_VERSION,
            },
        )

    def _release_journal_lock(self) -> None:
        """Drop journal ownership (the lock *file* stays — see
        :func:`_acquire_journal_lock`)."""
        if self._journal_lock_fd is not None:
            try:
                os.close(self._journal_lock_fd)
            except OSError:
                pass
            self._journal_lock_fd = None

    def _journal_emit(self, entry: Dict[str, Any], durable: bool = True) -> None:
        """Append one journal entry, stamping the v2 ``seq``/``ts`` pair.

        The engine is the journal's only writer (workers report over
        pipes or sockets; the lockfile enforces one engine per sweep
        dir), so the in-process counter is globally monotone; appends
        go through :func:`append_jsonl` so tailing readers never see a
        torn line except, transiently, the very last one.
        """
        if self._journal_path is None:
            return
        entry["seq"] = self._journal_seq
        entry["ts"] = round(time.time(), 6)
        self._journal_seq += 1
        append_jsonl(self._journal_path, entry, durable=durable)

    def _journal_spec_start(
        self, spec: RunSpec, attempt: int, runner: Optional[str] = None
    ) -> None:
        entry = {
            "kind": "spec_start",
            "spec_key": spec.key,
            "attempt": attempt,
            "phase": "running",
        }
        if runner is not None:
            entry["runner"] = runner
        self._journal_emit(entry, durable=False)

    def _journal(self, kind: str, record: RunRecord) -> None:
        if record.cached:
            phase = "cached"
        elif record.ok:
            phase = "done"
        else:
            phase = "quarantined"
        entry = {
            "kind": kind,
            "spec_key": record.spec_key,
            "phase": phase,
            "ok": record.ok,
            "cached": record.cached,
            "attempts": record.attempts,
            "checkpoint_restores": record.checkpoint_restores,
            "wall_time_s": round(record.wall_time_s, 4),
            "progress": record.progress_payload(),
        }
        if record.runner is not None:
            entry["runner"] = record.runner
        self._journal_emit(entry, durable=False)

    def _write_artifacts(
        self, experiment: str, specs: Sequence[RunSpec], records: List[RunRecord]
    ) -> None:
        if self.results_dir is None:
            return
        out_dir = self.results_dir / experiment
        runs_dir = out_dir / "runs"
        runs_dir.mkdir(parents=True, exist_ok=True)
        for record in records:
            atomic_write_json(
                runs_dir / f"{record.spec_key[:16]}.json", record.to_json_dict()
            )
        manifest = {
            "experiment": experiment,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "jobs": self.jobs,
            "executor": self._executor_name,
            "global_seed": self.global_seed,
            "code_version": code_version(),
            "n_specs": len(specs),
            "cached": sum(1 for r in records if r.cached),
            "failed": sum(1 for r in records if not r.ok),
            "quarantined": list(self.quarantined),
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "runner_events": list(self.runner_events),
            "events": [
                {
                    "spec": e.spec_key[:16],
                    "kind": e.kind,
                    "attempt": e.attempt,
                    "backoff_s": e.backoff_s,
                }
                for e in self.events
            ],
            "runs": [
                {
                    "spec_key": r.spec_key,
                    "record": f"runs/{r.spec_key[:16]}.json",
                    "factory": r.factory,
                    "tags": r.tags,
                    "ok": r.ok,
                    "cached": r.cached,
                    "attempts": r.attempts,
                    "retries": r.retries,
                    "checkpoint_restores": r.checkpoint_restores,
                    "runner": r.runner,
                    "wall_time_s": round(r.wall_time_s, 4),
                    "events_per_sec": round(r.events_per_sec, 1),
                }
                for r in records
            ],
        }
        atomic_write_json(out_dir / "manifest.json", manifest)
        self._journal_emit(
            {
                "kind": "sweep_end",
                "n_specs": len(specs),
                "failed": sum(1 for r in records if not r.ok),
                "quarantined": len(self.quarantined),
            },
        )


def run_specs(
    experiment: str,
    specs: Sequence[RunSpec],
    engine: Optional[RunEngine] = None,
    **engine_kwargs,
) -> List[RunRecord]:
    """Convenience wrapper: run ``specs`` on ``engine`` (default: serial,
    artifact-free, cache-free — the library/testing configuration)."""
    if engine is None:
        engine_kwargs.setdefault("jobs", 1)
        engine_kwargs.setdefault("results_dir", None)
        engine = RunEngine(**engine_kwargs)
    return engine.run(experiment, specs)
