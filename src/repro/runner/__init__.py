"""Declarative experiment execution.

``RunSpec`` (what to run) → ``RunEngine`` + an ``Executor`` (how:
in-process, local process pool, or socket runner pool — cached,
fault-tolerant) → ``RunRecord`` (structured JSON artifact) → each
experiment module's pure ``reduce``.  See ``docs/RUNNER.md``.
"""

from repro.runner.cache import ResultCache, code_version
from repro.runner.engine import (
    CELL_PHASES,
    DEFAULT_TIMEOUT_S,
    JOURNAL_SCHEMA_VERSION,
    EngineEvent,
    JournalLockError,
    RunEngine,
    RunFailure,
    execute_spec,
    run_specs,
)
from repro.runner.executors import (
    CellOutcome,
    CellTask,
    Executor,
    LocalExecutor,
    ProcessExecutor,
    SocketExecutor,
    make_executor,
)
from repro.runner.records import (
    RunRecord,
    index_by_tags,
    scenario_result_from_dict,
    scenario_result_to_dict,
)
from repro.runner.registry import FACTORIES, register, resolve
from repro.runner.spec import RunSpec, canonical_params

__all__ = [
    "CELL_PHASES",
    "DEFAULT_TIMEOUT_S",
    "CellOutcome",
    "CellTask",
    "EngineEvent",
    "Executor",
    "JOURNAL_SCHEMA_VERSION",
    "JournalLockError",
    "FACTORIES",
    "LocalExecutor",
    "ProcessExecutor",
    "ResultCache",
    "RunEngine",
    "SocketExecutor",
    "make_executor",
    "RunFailure",
    "RunRecord",
    "RunSpec",
    "canonical_params",
    "code_version",
    "execute_spec",
    "index_by_tags",
    "register",
    "resolve",
    "run_specs",
    "scenario_result_from_dict",
    "scenario_result_to_dict",
]
