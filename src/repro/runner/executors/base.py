"""The executor protocol: placement and transport for sweep cells.

The :class:`~repro.runner.engine.RunEngine` owns *supervision* — retry
budgets, backoff, quarantine, the journal, records, the cache.  What it
delegates is *where a cell runs and how its outcome travels back*: that
is an :class:`Executor`.

The contract is deliberately tiny so every execution backend (in-process,
local process pool, remote socket pool) looks the same to the engine:

* ``start(notify)`` — acquire resources; ``notify`` is the engine's
  journal hook for executor-level events (runner registration/loss).
* ``free_slots()`` — how many more :class:`CellTask`\\ s may be submitted
  right now.
* ``submit(task)`` — place one cell; returns a placement label (runner
  identity) for the journal, or ``None`` when placement has no name.
* ``poll(timeout_s)`` — outcomes that completed since the last poll,
  waiting at most ``timeout_s`` when none are ready.
* ``close()`` — tear down (kill stragglers, close connections).

Executors never retry: a lost or failed cell comes back as a
:class:`CellOutcome` with a non-``ok`` status and the engine decides.
The one exception is transport-level re-dispatch in the socket pool —
losing a *runner* is not the cell's fault, so the coordinator replays
lost cells onto surviving runners without consuming the engine's retry
budget (see :mod:`repro.runner.executors.socketpool`).

Determinism is executor-independent by construction: a cell's scenario
seed derives from ``(global_seed, spec key)`` before submission, so the
same spec produces bit-identical measurements wherever it executes.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runner.registry import resolve
from repro.runner.spec import RunSpec

#: outcome states an executor may report (mirrors EngineEvent kinds)
OUTCOME_STATES = ("ok", "exception", "crash", "timeout")

#: signature of the engine's executor-event journal hook
NotifyFn = Callable[[Dict[str, Any]], None]


def execute_spec(spec: RunSpec, seed: int, attempt: int = 0) -> Dict[str, Any]:
    """Resolve and invoke a spec's factory.  Runs wherever the cell runs."""
    factory = resolve(spec.factory)
    params = spec.params_dict()
    params["_attempt"] = attempt
    return factory(params, seed, spec.warmup_ns, spec.measure_ns)


def execute_scoped(
    spec: RunSpec, seed: int, attempt: int, ckpt: Optional[Dict[str, Any]]
) -> Tuple[Dict[str, Any], int]:
    """Run one spec, optionally inside a checkpoint scope.

    Returns ``(measurements, checkpoint_restores)``.  ``ckpt`` is the
    engine's checkpoint policy: ``{"dir", "sim_ns", "wall_s"}`` — with
    both intervals None the scope is restore-only (leftover snapshots
    from a killed run are consumed, no new ones written).
    """
    if ckpt is None:
        return execute_spec(spec, seed, attempt), 0
    from repro.resilience.checkpoint import checkpoint_scope

    with checkpoint_scope(
        Path(ckpt["dir"]),
        spec.key,
        every_sim_ns=ckpt.get("sim_ns"),
        every_wall_s=ckpt.get("wall_s"),
    ) as cctx:
        measurements = execute_spec(spec, seed, attempt)
    return measurements, cctx.restores


@dataclass
class CellTask:
    """One placement request: everything a backend needs to run a cell."""

    task_id: int                     # unique within one engine run
    index: int                       # position in the sweep's spec list
    spec: RunSpec
    seed: int                        # derived seed, computed by the engine
    attempt: int                     # 0-based supervision attempt
    ckpt: Optional[Dict[str, Any]]   # checkpoint policy, or None
    timeout_s: Optional[float]       # wall-clock cap, or None


@dataclass
class CellOutcome:
    """What came back for one :class:`CellTask`."""

    task_id: int
    status: str                      # one of OUTCOME_STATES
    measurements: Optional[Dict[str, Any]] = None
    wall_time_s: float = 0.0
    checkpoint_restores: int = 0
    detail: str = ""                 # traceback / diagnosis for failures
    runner: Optional[str] = None     # identity of whoever executed the cell
    #: wall seconds the cell ran *past* an unenforced timeout (in-process
    #: execution only — honesty marker, not a failure)
    timeout_overrun_s: float = 0.0
    #: per-outcome override of the executor's ``enforces_timeouts`` (the
    #: socket pool's drained-fleet fallback runs cells in-process, where
    #: the timeout is *not* enforced even though the pool's normally is)
    enforced: Optional[bool] = None


def run_task_inline(task: CellTask, runner: Optional[str] = None) -> CellOutcome:
    """Execute a task synchronously in this process.

    Shared by :class:`LocalExecutor` and the socket pool's drained-fleet
    fallback.  No hang protection: an unenforced timeout is *measured*
    and reported via ``timeout_overrun_s`` instead of killing anything.
    """
    started = time.perf_counter()  # wallclock-ok: run wall-time metering
    try:
        measurements, restores = execute_scoped(
            task.spec, task.seed, task.attempt, task.ckpt
        )
    except Exception:
        return CellOutcome(
            task_id=task.task_id,
            status="exception",
            detail=traceback.format_exc(limit=20),
            runner=runner,
            enforced=False,
        )
    wall = time.perf_counter() - started  # wallclock-ok: run wall-time metering
    overrun = 0.0
    if task.timeout_s is not None and wall > task.timeout_s:
        overrun = wall - task.timeout_s
    return CellOutcome(
        task_id=task.task_id,
        status="ok",
        measurements=measurements,
        wall_time_s=wall,
        checkpoint_restores=restores,
        runner=runner,
        timeout_overrun_s=overrun,
        enforced=False,
    )


class Executor:
    """Base class / protocol; see the module docstring for the contract."""

    #: short backend name, recorded in sweep.json and the manifest
    name = "abstract"
    #: whether a cell exceeding ``timeout_s`` is actually killed.  The
    #: engine stamps this on every executed record as ``timeout_enforced``
    #: so artifacts never imply hang protection that is not there.
    enforces_timeouts = True

    def start(self, notify: NotifyFn) -> None:  # pragma: no cover - interface
        self._notify = notify

    def free_slots(self) -> int:
        raise NotImplementedError

    def submit(self, task: CellTask) -> Optional[str]:
        raise NotImplementedError

    def poll(self, timeout_s: float) -> List[CellOutcome]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        pass

    def notify(self, payload: Dict[str, Any]) -> None:
        hook = getattr(self, "_notify", None)
        if hook is not None:
            hook(payload)


class LocalExecutor(Executor):
    """Today's in-process path: one cell at a time, no subprocesses.

    Kept for debugging (plain tracebacks, no fork) and as the degradation
    target when a socket fleet drains.  There is **no hang protection**:
    ``timeout_s`` is recorded but not enforced, which the engine surfaces
    as ``timeout_enforced: false`` on records plus a ``timeout_overrun``
    journal event when a cell runs past its cap.
    """

    name = "local"
    enforces_timeouts = False

    def __init__(self) -> None:
        self._queued: List[CellTask] = []

    def start(self, notify: NotifyFn) -> None:
        self._notify = notify
        self._queued = []

    def free_slots(self) -> int:
        return 0 if self._queued else 1

    def submit(self, task: CellTask) -> Optional[str]:
        # execution is deferred to poll() so the engine journals the
        # cell's spec_start *before* the cell runs, exactly like the
        # subprocess backends
        self._queued.append(task)
        return None

    def poll(self, timeout_s: float) -> List[CellOutcome]:
        if not self._queued:
            if timeout_s > 0:
                time.sleep(timeout_s)
            return []
        task = self._queued.pop(0)
        return [run_task_inline(task)]

    def close(self) -> None:
        self._queued = []
