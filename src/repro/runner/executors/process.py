"""ProcessExecutor: the local multiprocessing pool.

This is the former ``RunEngine._run_parallel`` transport, extracted
behind the :class:`~repro.runner.executors.base.Executor` protocol.
Each cell runs in its own forked worker with a one-shot pipe back to
the coordinator, which gives real crash isolation (a segfaulting C
extension kills the worker, not the sweep) and enforceable wall-clock
timeouts (the coordinator SIGKILLs a worker past its deadline).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.executors.base import CellOutcome, CellTask, Executor, NotifyFn, execute_scoped
from repro.runner.spec import RunSpec


def _worker_main(
    conn,
    spec: RunSpec,
    seed: int,
    attempt: int,
    ckpt: Optional[Dict[str, Any]] = None,
) -> None:
    """Subprocess entry point: run one spec, ship the result back.

    Shared with the socket runner (:mod:`.socketpool`), whose serve loop
    forks the same worker per task for crash isolation.
    """
    try:
        started = time.perf_counter()  # wallclock-ok: run wall-time metering
        measurements, restores = execute_scoped(spec, seed, attempt, ckpt)
        conn.send(("ok", measurements, time.perf_counter() - started, restores))  # wallclock-ok: run wall-time metering
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=20), 0.0, 0))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class ProcessExecutor(Executor):
    """Up to ``jobs`` concurrent forked workers on this host."""

    name = "process"
    enforces_timeouts = True

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, int(jobs))
        # conn -> (task, process, deadline-or-None)
        self._active: Dict[Any, Tuple[CellTask, Any, Optional[float]]] = {}
        self._ctx = None

    def start(self, notify: NotifyFn) -> None:
        self._notify = notify
        # fork keeps the registry (and any test-local factories) visible
        # to workers; spawn is the fallback where fork is unavailable
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._active = {}

    def free_slots(self) -> int:
        return self.jobs - len(self._active)

    def submit(self, task: CellTask) -> Optional[str]:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, task.spec, task.seed, task.attempt, task.ckpt),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = None
        if task.timeout_s is not None:
            # wallclock-ok: timeout deadline
            deadline = time.monotonic() + task.timeout_s
        self._active[parent_conn] = (task, proc, deadline)
        return None

    def poll(self, timeout_s: float) -> List[CellOutcome]:
        if not self._active:
            if timeout_s > 0:
                time.sleep(timeout_s)
            return []
        outcomes: List[CellOutcome] = []
        ready = mp_connection.wait(list(self._active), timeout=timeout_s)
        for conn in ready:
            task, proc, _ = self._active.pop(conn)
            msg: Optional[Tuple] = None
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                msg = None
            conn.close()
            proc.join(timeout=5.0)
            if msg is None:
                outcomes.append(
                    CellOutcome(
                        task_id=task.task_id,
                        status="crash",
                        detail=f"worker exited with code {proc.exitcode}",
                    )
                )
            elif msg[0] == "ok":
                restores = msg[3] if len(msg) > 3 else 0
                outcomes.append(
                    CellOutcome(
                        task_id=task.task_id,
                        status="ok",
                        measurements=msg[1],
                        wall_time_s=msg[2],
                        checkpoint_restores=restores,
                    )
                )
            else:
                outcomes.append(
                    CellOutcome(task_id=task.task_id, status="exception", detail=msg[1])
                )
        now = time.monotonic()  # wallclock-ok: timeout deadline
        for conn, (task, proc, deadline) in list(self._active.items()):
            if deadline is None or now <= deadline:
                continue
            # a result may have raced in just before the deadline
            if conn.poll():
                continue
            del self._active[conn]
            proc.kill()
            proc.join(timeout=5.0)
            conn.close()
            outcomes.append(
                CellOutcome(
                    task_id=task.task_id,
                    status="timeout",
                    detail=f"killed after {task.timeout_s:.1f}s",
                )
            )
        return outcomes

    def close(self) -> None:
        for conn, (_, proc, _) in self._active.items():
            proc.kill()
            proc.join(timeout=5.0)
            conn.close()
        self._active = {}
