"""SocketExecutor + ``repro runner serve``: a fault-tolerant runner pool.

The distributed half of ROADMAP item 3.  A *runner* is a long-lived
process started with ``repro runner serve`` that listens on a TCP port;
the *coordinator* (a :class:`SocketExecutor` inside the sweep's
``RunEngine``) connects to a fixed list of runners and shards cells
across them.

Wire format — newline-delimited JSON over TCP, one object per line:

===============  ==========  ==============================================
message          direction   fields
===============  ==========  ==============================================
``hello``        C → R       ``protocol``, ``heartbeat_s``
``register``     R → C       ``protocol``, ``runner_id``, ``slots``, ``pid``
``run``          C → R       ``task_id``, ``spec`` (RunSpec JSON), ``seed``,
                             ``attempt``, ``ckpt``, ``timeout_s``
``result``       R → C       ``task_id``, ``status``, ``measurements``,
                             ``wall_time_s``, ``checkpoint_restores``,
                             ``detail``
``heartbeat``    R → C       ``runner_id``, ``inflight``
``shutdown``     C → R       ``reason``
===============  ==========  ==============================================

Failure model.  A runner is declared **lost** when its connection EOFs
or errors (a SIGKILLed runner closes the socket immediately), or when no
heartbeat arrives for a full *lease* (default ``3 × heartbeat_s`` —
covers hangs and network partitions where the socket stays open), or
when a cell is still unreported well past its enforced timeout.  Cells
in flight on a lost runner are **re-dispatched** to surviving runners
with bounded exponential backoff; because a cell's seed derives from
``(global_seed, spec key)`` and checkpoints are content-addressed on the
spec key, re-execution anywhere — from a PR-5 checkpoint when one is
visible on the results filesystem, from scratch otherwise — produces
bit-identical measurements.  Re-dispatch is transport-level repair and
does **not** consume the engine's retry budget; only a cell that
*itself* fails (exception / crash / timeout inside a healthy runner, or
a cell exceeding the re-dispatch cap) surfaces to the engine's
retry/quarantine supervision.  When the fleet drains to zero live
runners the coordinator degrades to in-process execution so the sweep
still completes (hang protection is lost there and records say so via
``timeout_enforced``).

Runners execute each cell in a forked child process (the same
``_worker_main`` as :class:`~repro.runner.executors.process.ProcessExecutor`),
so a crashing cell kills the child, not the runner, and runner-side
timeouts are enforced by killing the child.  Checkpoint handoff between
runners requires a shared results filesystem; without one the cell
simply re-runs from its derived seed — slower, never wrong.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import socket
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.executors.base import (
    CellOutcome,
    CellTask,
    Executor,
    NotifyFn,
    run_task_inline,
)
from repro.runner.executors.process import _worker_main
from repro.runner.spec import RunSpec

PROTOCOL_VERSION = 1

#: coordinator defaults (overridable per SocketExecutor)
DEFAULT_HEARTBEAT_S = 1.0
DEFAULT_LEASE_FACTOR = 3.0
DEFAULT_MAX_REDISPATCH = 3
DEFAULT_REDISPATCH_BACKOFF_S = 0.25
DEFAULT_CONNECT_TIMEOUT_S = 10.0

_RECV_CHUNK = 1 << 16


class _LineChannel:
    """Newline-delimited JSON over one blocking TCP socket.

    Reads are select-driven: callers only invoke :meth:`recv_ready`
    after the socket polled readable, and it issues exactly one
    ``recv()`` — partial lines stay buffered until the next readiness.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buf = b""

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, obj: Dict[str, Any]) -> None:
        line = json.dumps(obj, separators=(",", ":")).encode() + b"\n"
        self.sock.sendall(line)

    def _split(self) -> List[Dict[str, Any]]:
        msgs = []
        while b"\n" in self._buf:
            line, self._buf = self._buf.split(b"\n", 1)
            if line.strip():
                msgs.append(json.loads(line))
        return msgs

    def recv_ready(self) -> Optional[List[Dict[str, Any]]]:
        """One recv's worth of complete messages; ``None`` on EOF/error."""
        try:
            data = self.sock.recv(_RECV_CHUNK)
        except OSError:
            return None
        if not data:
            return None
        self._buf += data
        return self._split()

    def recv_one(self, timeout_s: float) -> Optional[Dict[str, Any]]:
        """Block up to ``timeout_s`` for one message (handshake only)."""
        deadline = time.monotonic() + timeout_s  # wallclock-ok: handshake deadline
        while True:
            msgs = self._split()
            if msgs:
                return msgs[0]
            remaining = deadline - time.monotonic()  # wallclock-ok: handshake deadline
            if remaining <= 0:
                return None
            self.sock.settimeout(remaining)
            try:
                data = self.sock.recv(_RECV_CHUNK)
            except (socket.timeout, OSError):
                return None
            finally:
                self.sock.settimeout(None)
            if not data:
                return None
            self._buf += data

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


@dataclass
class _Runner:
    """Coordinator-side view of one registered runner."""

    runner_id: str
    addr: str
    chan: _LineChannel
    slots: int
    pid: int
    alive: bool = True
    last_heard: float = 0.0                       # monotonic
    inflight: Dict[int, CellTask] = field(default_factory=dict)
    dispatched_at: Dict[int, float] = field(default_factory=dict)

    def load(self) -> float:
        return len(self.inflight) / max(1, self.slots)


class SocketExecutor(Executor):
    """Coordinator for a fixed fleet of ``repro runner serve`` runners.

    ``runners`` is a list of ``host:port`` addresses.  The fleet is
    fixed for one engine run — runners that die are never re-admitted
    mid-sweep (a fresh ``run()`` reconnects from scratch).
    """

    name = "socket"
    enforces_timeouts = True

    def __init__(
        self,
        runners: List[str],
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        lease_s: Optional[float] = None,
        max_redispatch: int = DEFAULT_MAX_REDISPATCH,
        redispatch_backoff_s: float = DEFAULT_REDISPATCH_BACKOFF_S,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    ) -> None:
        self.addrs = [a.strip() for a in runners if a.strip()]
        if not self.addrs:
            raise ValueError("SocketExecutor needs at least one runner address")
        self.heartbeat_s = heartbeat_s
        self.lease_s = lease_s if lease_s is not None else DEFAULT_LEASE_FACTOR * heartbeat_s
        self.max_redispatch = max(0, max_redispatch)
        self.redispatch_backoff_s = max(0.0, redispatch_backoff_s)
        self.connect_timeout_s = connect_timeout_s
        self._runners: List[_Runner] = []
        self._tasks: Dict[int, CellTask] = {}
        self._redispatches: Dict[int, int] = {}
        self._pending: List[Tuple[CellTask, float]] = []   # (task, not-before)
        self._inline: List[CellTask] = []                  # degraded-mode queue
        self._buffered: List[CellOutcome] = []
        self._done: set = set()
        self._degraded = False

    # ------------------------------------------------------------ lifecycle
    def start(self, notify: NotifyFn) -> None:
        self._notify = notify
        self._runners = []
        self._tasks = {}
        self._redispatches = {}
        self._pending = []
        self._inline = []
        self._buffered = []
        self._done = set()
        self._degraded = False
        for addr in self.addrs:
            runner = self._connect(addr)
            if runner is not None:
                self._runners.append(runner)
        if not self._runners:
            raise RuntimeError(
                f"no runners reachable at {', '.join(self.addrs)} — "
                "start them with `repro runner serve`"
            )

    def _connect(self, addr: str) -> Optional[_Runner]:
        host, _, port = addr.rpartition(":")
        try:
            sock = socket.create_connection((host, int(port)), timeout=self.connect_timeout_s)
        except OSError as exc:
            self.notify({"event": "unreachable", "addr": addr, "detail": str(exc)})
            return None
        sock.settimeout(None)
        chan = _LineChannel(sock)
        try:
            chan.send(
                {
                    "kind": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "heartbeat_s": self.heartbeat_s,
                }
            )
            reg = chan.recv_one(self.connect_timeout_s)
        except OSError:
            reg = None
        if (
            reg is None
            or reg.get("kind") != "register"
            or reg.get("protocol") != PROTOCOL_VERSION
        ):
            self.notify({"event": "unreachable", "addr": addr, "detail": f"bad handshake: {reg!r}"})
            chan.close()
            return None
        runner = _Runner(
            runner_id=str(reg.get("runner_id", addr)),
            addr=addr,
            chan=chan,
            slots=max(1, int(reg.get("slots", 1))),
            pid=int(reg.get("pid", 0)),
            last_heard=time.monotonic(),  # wallclock-ok: lease bookkeeping
        )
        self.notify(
            {
                "event": "registered",
                "runner": runner.runner_id,
                "addr": addr,
                "slots": runner.slots,
                "pid": runner.pid,
            }
        )
        return runner

    def close(self) -> None:
        for runner in self._runners:
            if runner.alive:
                try:
                    runner.chan.send({"kind": "shutdown", "reason": "sweep complete"})
                except OSError:
                    pass
                runner.chan.close()
        self._runners = []

    # ------------------------------------------------------------ placement
    def _live(self) -> List[_Runner]:
        return [r for r in self._runners if r.alive]

    def free_slots(self) -> int:
        live = self._live()
        if not live:
            # degraded: one-at-a-time in-process, like LocalExecutor
            return 0 if (self._inline or self._pending) else 1
        free = sum(max(0, r.slots - len(r.inflight)) for r in live)
        return max(0, free - len(self._pending))

    def submit(self, task: CellTask) -> Optional[str]:
        self._tasks[task.task_id] = task
        return self._dispatch(task)

    def _dispatch(self, task: CellTask) -> Optional[str]:
        """Place one task on the least-loaded live runner.  Fleet gone →
        queue for in-process execution; fleet merely saturated (a runner
        died while its peers were busy) → park until a slot frees."""
        while True:
            live = self._live()
            if not live:
                self._enter_degraded()
                self._inline.append(task)
                return "local"
            candidates = sorted(
                (r for r in live if len(r.inflight) < r.slots),
                key=lambda r: (r.load(), r.addr),
            )
            if not candidates:
                # wallclock-ok: retried on the next poll tick
                self._pending.append((task, time.monotonic()))
                return None
            runner = candidates[0]
            msg = {
                "kind": "run",
                "task_id": task.task_id,
                "spec": task.spec.to_json_dict(),
                "seed": task.seed,
                "attempt": task.attempt,
                "ckpt": task.ckpt,
                "timeout_s": task.timeout_s,
            }
            try:
                runner.chan.send(msg)
            except OSError:
                self._lose(runner, "send failed")
                continue
            runner.inflight[task.task_id] = task
            # wallclock-ok: overdue-cell backstop
            runner.dispatched_at[task.task_id] = time.monotonic()
            return runner.runner_id

    def _enter_degraded(self) -> None:
        if not self._degraded:
            self._degraded = True
            self.notify(
                {
                    "event": "degraded",
                    "detail": "fleet drained to zero live runners; "
                    "continuing in-process without hang protection",
                }
            )

    # -------------------------------------------------------------- failure
    def _lose(self, runner: _Runner, reason: str) -> None:
        if not runner.alive:
            return
        runner.alive = False
        runner.chan.close()
        orphans = list(runner.inflight.values())
        runner.inflight.clear()
        runner.dispatched_at.clear()
        self.notify(
            {
                "event": "lost",
                "runner": runner.runner_id,
                "reason": reason,
                "inflight": len(orphans),
            }
        )
        now = time.monotonic()  # wallclock-ok: redispatch backoff
        for task in orphans:
            if task.task_id in self._done:
                continue
            n = self._redispatches.get(task.task_id, 0) + 1
            self._redispatches[task.task_id] = n
            if n > self.max_redispatch:
                self._buffered.append(
                    CellOutcome(
                        task_id=task.task_id,
                        status="crash",
                        detail=(
                            f"runner pool lost this cell {n} times "
                            f"(last: {runner.runner_id} {reason}); "
                            "re-dispatch budget exhausted"
                        ),
                        runner=runner.runner_id,
                    )
                )
            else:
                backoff = min(30.0, self.redispatch_backoff_s * 2 ** (n - 1))
                self._pending.append((task, now + backoff))

    # ---------------------------------------------------------------- poll
    def poll(self, timeout_s: float) -> List[CellOutcome]:
        outcomes: List[CellOutcome] = []
        now = time.monotonic()  # wallclock-ok: scheduling clock

        # re-dispatch lost/parked cells whose backoff has elapsed; swap the
        # queue out first — _dispatch/_lose may append to it as we go
        pending = self._pending
        self._pending = []
        for task, not_before in pending:
            if not_before > now:
                self._pending.append((task, not_before))
                continue
            target = self._dispatch(task)
            if target is not None and self._redispatches.get(task.task_id):
                self.notify(
                    {
                        "event": "redispatch",
                        "spec_key": task.spec.key,
                        "attempt": task.attempt,
                        "runner": target,
                        "n": self._redispatches[task.task_id],
                    }
                )

        # degraded mode: execute one queued cell in-process per poll
        if self._inline and not self._live():
            task = self._inline.pop(0)
            out = run_task_inline(task, runner="local")
            self._done.add(task.task_id)
            outcomes.append(out)

        # drain runner sockets
        live = self._live()
        if live:
            chans = {r.chan.sock: r for r in live}
            try:
                ready = mp_connection.wait(list(chans), timeout=timeout_s)
            except OSError:
                ready = []
            for sock in ready:
                runner = chans[sock]
                msgs = runner.chan.recv_ready()
                if msgs is None:
                    self._lose(runner, "connection lost")
                    continue
                runner.last_heard = time.monotonic()  # wallclock-ok: lease bookkeeping
                for msg in msgs:
                    self._handle(runner, msg, outcomes)
        elif not outcomes and not self._inline and not self._pending:
            if timeout_s > 0:
                time.sleep(timeout_s)

        # lease expiry + overdue-cell backstop
        now = time.monotonic()  # wallclock-ok: lease bookkeeping
        for runner in self._live():
            if now - runner.last_heard > self.lease_s:
                self._lose(runner, f"lease expired ({self.lease_s:.1f}s without heartbeat)")
                continue
            for task_id, at in list(runner.dispatched_at.items()):
                task = runner.inflight.get(task_id)
                if task is None or task.timeout_s is None:
                    continue
                if now - at > task.timeout_s + 2 * self.lease_s:
                    self._lose(runner, "cell overdue past enforced timeout")
                    break

        outcomes.extend(self._buffered)
        self._buffered = []
        return outcomes

    def _handle(self, runner: _Runner, msg: Dict[str, Any], outcomes: List[CellOutcome]) -> None:
        kind = msg.get("kind")
        if kind == "heartbeat":
            return
        if kind != "result":
            return
        task_id = msg.get("task_id")
        if task_id in self._done or task_id not in runner.inflight:
            return
        runner.inflight.pop(task_id, None)
        runner.dispatched_at.pop(task_id, None)
        self._done.add(task_id)
        outcomes.append(
            CellOutcome(
                task_id=task_id,
                status=msg.get("status", "crash"),
                measurements=msg.get("measurements"),
                wall_time_s=float(msg.get("wall_time_s", 0.0)),
                checkpoint_restores=int(msg.get("checkpoint_restores", 0)),
                detail=msg.get("detail", ""),
                runner=runner.runner_id,
            )
        )


# --------------------------------------------------------------------------
# runner side: `repro runner serve`
# --------------------------------------------------------------------------


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    slots: int = 1,
    runner_id: Optional[str] = None,
    once: bool = False,
) -> int:
    """Run a runner: listen, serve one coordinator session at a time.

    Prints ``repro-runner <id> listening on <host>:<port> (slots=N)`` on
    startup so wrappers (tests, CI) can scrape the bound port when
    ``port=0``.  Returns 0; runs until interrupted unless ``once``.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    bound_port = listener.getsockname()[1]
    rid = runner_id or f"{socket.gethostname()}:{bound_port}"
    print(
        f"repro-runner {rid} listening on {host}:{bound_port} (slots={slots})",
        flush=True,
    )
    try:
        while True:
            conn, addr = listener.accept()
            print(f"repro-runner {rid}: coordinator connected from {addr[0]}:{addr[1]}", flush=True)
            _serve_session(conn, rid, slots)
            print(f"repro-runner {rid}: session ended", flush=True)
            if once:
                break
    except KeyboardInterrupt:
        pass
    finally:
        listener.close()
    return 0


@dataclass
class _Child:
    """Runner-side book-keeping for one executing cell."""

    task_id: int
    proc: Any
    conn: Any
    deadline: Optional[float]
    timeout_s: Optional[float]


def _serve_session(sock: socket.socket, rid: str, slots: int) -> None:
    """One coordinator session: handshake, then run cells until EOF or
    shutdown.  Cells execute in forked children so a crashing or hung
    cell never takes the runner down."""
    chan = _LineChannel(sock)
    hello = chan.recv_one(DEFAULT_CONNECT_TIMEOUT_S)
    if hello is None or hello.get("kind") != "hello" or hello.get("protocol") != PROTOCOL_VERSION:
        chan.close()
        return
    heartbeat_s = float(hello.get("heartbeat_s", DEFAULT_HEARTBEAT_S))
    chan.send(
        {
            "kind": "register",
            "protocol": PROTOCOL_VERSION,
            "runner_id": rid,
            "slots": slots,
            "pid": os.getpid(),
        }
    )
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    children: List[_Child] = []
    next_hb = time.monotonic() + heartbeat_s  # wallclock-ok: heartbeat cadence
    try:
        while True:
            now = time.monotonic()  # wallclock-ok: heartbeat cadence
            if now >= next_hb:
                try:
                    chan.send(
                        {"kind": "heartbeat", "runner_id": rid, "inflight": len(children)}
                    )
                except OSError:
                    return  # coordinator gone
                next_hb = now + heartbeat_s
            waitables: List[Any] = [sock] + [c.conn for c in children]
            try:
                ready = mp_connection.wait(waitables, timeout=min(0.2, heartbeat_s / 2))
            except OSError:
                return
            if sock in ready:
                msgs = chan.recv_ready()
                if msgs is None:
                    return  # coordinator gone (EOF)
                for msg in msgs:
                    kind = msg.get("kind")
                    if kind == "run":
                        children.append(_launch(ctx, msg))
                    elif kind == "shutdown":
                        return
            for child in [c for c in children if c.conn in ready]:
                result = _reap(child)
                children.remove(child)
                try:
                    chan.send(result)
                except OSError:
                    return
            now = time.monotonic()  # wallclock-ok: timeout deadline
            for child in list(children):
                if child.deadline is None or now <= child.deadline:
                    continue
                if child.conn.poll():
                    continue  # result raced in just before the deadline
                children.remove(child)
                child.proc.kill()
                child.proc.join(timeout=5.0)
                child.conn.close()
                try:
                    chan.send(
                        {
                            "kind": "result",
                            "task_id": child.task_id,
                            "status": "timeout",
                            "detail": f"killed after {child.timeout_s:.1f}s",
                        }
                    )
                except OSError:
                    return
    finally:
        for child in children:
            child.proc.kill()
            child.proc.join(timeout=5.0)
            child.conn.close()
        chan.close()


def _launch(ctx, msg: Dict[str, Any]) -> _Child:
    spec = RunSpec.from_json_dict(msg["spec"])
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_worker_main,
        args=(child_conn, spec, int(msg["seed"]), int(msg["attempt"]), msg.get("ckpt")),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    timeout_s = msg.get("timeout_s")
    deadline = None
    if timeout_s is not None:
        deadline = time.monotonic() + float(timeout_s)  # wallclock-ok: timeout deadline
    return _Child(int(msg["task_id"]), proc, parent_conn, deadline, timeout_s)


def _reap(child: _Child) -> Dict[str, Any]:
    """Collect a finished child's one-shot message as a result payload."""
    msg: Optional[Tuple] = None
    try:
        msg = child.conn.recv()
    except (EOFError, OSError):
        msg = None
    child.conn.close()
    child.proc.join(timeout=5.0)
    if msg is None:
        return {
            "kind": "result",
            "task_id": child.task_id,
            "status": "crash",
            "detail": f"cell worker exited with code {child.proc.exitcode}",
        }
    if msg[0] == "ok":
        return {
            "kind": "result",
            "task_id": child.task_id,
            "status": "ok",
            "measurements": msg[1],
            "wall_time_s": msg[2],
            "checkpoint_restores": msg[3] if len(msg) > 3 else 0,
        }
    return {
        "kind": "result",
        "task_id": child.task_id,
        "status": "exception",
        "detail": msg[1],
    }
