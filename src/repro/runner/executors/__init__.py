"""Pluggable execution backends for the RunEngine.

See :mod:`repro.runner.executors.base` for the protocol.  The engine
picks a default from its ``jobs`` setting (``jobs=1`` → local,
otherwise a process pool); :func:`make_executor` maps CLI names to
instances.
"""

from __future__ import annotations

from typing import List, Optional

from repro.runner.executors.base import (
    OUTCOME_STATES,
    CellOutcome,
    CellTask,
    Executor,
    LocalExecutor,
    execute_scoped,
    execute_spec,
    run_task_inline,
)
from repro.runner.executors.process import ProcessExecutor
from repro.runner.executors.socketpool import PROTOCOL_VERSION, SocketExecutor, serve

#: CLI names accepted by ``--executor``
EXECUTOR_NAMES = ("auto", "local", "process", "socket")


def make_executor(
    name: str,
    jobs: int = 1,
    runners: Optional[List[str]] = None,
    **socket_kwargs,
) -> Optional[Executor]:
    """Build an executor from its CLI name.

    ``auto`` returns None — the engine then picks local/process from its
    ``jobs`` setting, today's behaviour.  ``socket`` requires ``runners``
    (a list of ``host:port``); extra kwargs go to :class:`SocketExecutor`.
    """
    if name == "auto":
        if runners:
            name = "socket"
        else:
            return None
    if name == "local":
        return LocalExecutor()
    if name == "process":
        return ProcessExecutor(jobs=jobs)
    if name == "socket":
        if not runners:
            raise ValueError("--executor socket requires --runners host:port[,host:port...]")
        return SocketExecutor(runners, **socket_kwargs)
    raise ValueError(f"unknown executor {name!r} (expected one of {EXECUTOR_NAMES})")


__all__ = [
    "OUTCOME_STATES",
    "PROTOCOL_VERSION",
    "EXECUTOR_NAMES",
    "CellOutcome",
    "CellTask",
    "Executor",
    "LocalExecutor",
    "ProcessExecutor",
    "SocketExecutor",
    "execute_scoped",
    "execute_spec",
    "make_executor",
    "run_task_inline",
    "serve",
]
