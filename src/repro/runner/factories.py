"""Built-in scenario factories: named, parameterized simulator runs.

Each factory is a pure function of ``(params, seed, windows)`` returning
a JSON-safe measurement dict — the property the engine's cache and the
serial-vs-parallel determinism guarantee both rest on.  Workload modules
are imported here (never the other way around), so factories can be
resolved inside freshly spawned worker processes.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from typing import Any, Dict, Optional

from repro.netstack.costs import DEFAULT_COSTS, CostModel


def costs_to_overrides(costs: Optional[CostModel]) -> Optional[Dict[str, Any]]:
    """Serialize a cost model into a spec-embeddable override dict."""
    if costs is None:
        return None
    return asdict(costs)


def costs_from_params(params: Dict[str, Any]) -> Optional[CostModel]:
    """Rebuild the cost model from ``params['cost_overrides']`` (or None)."""
    overrides = params.get("cost_overrides")
    if not overrides:
        return None
    int_fields = {
        name
        for name, f in CostModel.__dataclass_fields__.items()
        if f.type == "int" or isinstance(getattr(DEFAULT_COSTS, name), int)
    }
    clean = {
        k: (int(v) if k in int_fields and not isinstance(v, dict) else v)
        for k, v in overrides.items()
    }
    return DEFAULT_COSTS.with_overrides(**clean)


def _scenario_measurements(res) -> Dict[str, Any]:
    from repro.runner.records import scenario_result_to_dict

    return scenario_result_to_dict(res)


# ------------------------------------------------------------------ sockperf
def sockperf_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """One Fig. 4a / 8a cell: single-flow sockperf for one system."""
    from repro.workloads.sockperf import run_single_flow

    res = run_single_flow(
        params["system"],
        params["proto"],
        int(params["size"]),
        costs=costs_from_params(params),
        seed=seed,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        batch_size=int(params.get("batch_size", 256)),
        n_split_cores=int(params.get("n_split_cores", 2)),
        interval_ns=params.get("interval_ns"),
        faults=params.get("faults"),
        obs=params.get("obs"),
        selfprof=params.get("selfprof"),
        migration=params.get("migration"),
        hist=params.get("hist", True),
    )
    return _scenario_measurements(res)


def sockperf_loaded_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """One Fig. 9 open-loop cell: probe goodput capacity, then replay at
    ``load_factor`` of it and sample latency there (both phases inside one
    spec so the cell stays a pure function of its parameters)."""
    from repro.workloads.sockperf import CLIENTS, run_single_flow

    system = params["system"]
    proto = params["proto"]
    size = int(params["size"])
    batch = int(params.get("batch_size", 256))
    load_factor = float(params.get("load_factor", 0.9))
    costs = costs_from_params(params)
    probe = run_single_flow(
        system, proto, size, costs=costs, seed=seed,
        warmup_ns=warmup_ns, measure_ns=measure_ns, batch_size=batch,
    )
    cap = max(probe.throughput_gbps, 1e-3)
    per_client_gbps = cap * load_factor / CLIENTS[proto]
    interval_ns = size * 8.0 / per_client_gbps
    res = run_single_flow(
        system, proto, size, costs=costs, seed=seed,
        warmup_ns=warmup_ns, measure_ns=measure_ns, batch_size=batch,
        interval_ns=interval_ns,
    )
    out = _scenario_measurements(res)
    out["probe_gbps"] = cap
    out["events_executed"] += probe.events_executed
    return out


# ----------------------------------------------------------------- multiflow
def multiflow_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """One Fig. 10 / Fig. 12 cell: N concurrent overlay TCP flows."""
    from repro.workloads.multiflow import run_multiflow

    res = run_multiflow(
        params["system"],
        int(params["n_flows"]),
        int(params["size"]),
        costs=costs_from_params(params),
        seed=seed,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        placement=params.get("placement", "least-loaded"),
        faults=params.get("faults"),
        obs=params.get("obs"),
        selfprof=params.get("selfprof"),
        hist=params.get("hist", True),
    )
    return _scenario_measurements(res)


# ----------------------------------------------------------------- memcached
def memcached_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """One Fig. 13 bar group: data-caching latency for one client count."""
    from repro.workloads.memcached import run_memcached

    from repro.runner.records import latency_to_dict

    res = run_memcached(
        params["system"],
        int(params["n_clients"]),
        costs=costs_from_params(params),
        seed=seed,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
    )
    return {
        "kind": "memcached",
        "system": res.system,
        "n_clients": res.n_clients,
        "latency": latency_to_dict(res.latency),
        "requests_per_sec": res.requests_per_sec,
        "cpu_utilization": list(res.cpu_utilization),
        "events_executed": res.events_executed,
    }


# ---------------------------------------------------------------- webserving
def webserving_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """One Fig. 11 system: CloudSuite Web Serving under N closed-loop users."""
    from repro.workloads.webserving import OP_TYPES, WebServingBenchmark

    bench = WebServingBenchmark(
        params["system"],
        n_users=int(params["n_users"]),
        costs=costs_from_params(params),
        seed=seed,
    )
    res = bench.run(warmup_ns=warmup_ns, measure_ns=measure_ns)
    per_op = {
        op.name: {
            "issued": res.per_op[op.name].issued,
            "completed": res.per_op[op.name].completed,
            "success": res.per_op[op.name].success,
            "success_per_sec": res.success_ops_per_sec(op.name),
            "mean_response_us": res.mean_response_us(op.name),
            "mean_delay_us": res.mean_delay_us(op.name),
        }
        for op in OP_TYPES
    }
    return {
        "kind": "webserving",
        "system": res.system,
        "n_users": res.n_users,
        "window_s": res.window_s,
        "per_op": per_op,
        "total_success_per_sec": res.total_success_per_sec(),
        "events_executed": bench.sim.events_executed,
    }


# -------------------------------------------------------------- test doubles
def _echo_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """Deterministic no-simulation factory for engine unit tests."""
    return {
        "kind": "echo",
        "value": params.get("value"),
        "seed": seed,
        "warmup_ns": warmup_ns,
        "measure_ns": measure_ns,
        "attempt": params.get("_attempt", 0),
        "pid": os.getpid(),
        "events_executed": 0,
    }


def _crashy_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """Dies (hard exit or exception) until attempt >= ``fail_attempts``."""
    attempt = int(params.get("_attempt", 0))
    if attempt < int(params.get("fail_attempts", 1)):
        if params.get("mode", "exit") == "exit":
            os._exit(17)
        raise RuntimeError("injected failure")
    return _echo_factory(params, seed, warmup_ns, measure_ns)


def _sleepy_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """Hangs for ``sleep_s`` until attempt >= ``hang_attempts``."""
    attempt = int(params.get("_attempt", 0))
    if attempt < int(params.get("hang_attempts", 1)):
        time.sleep(float(params.get("sleep_s", 60.0)))
    return _echo_factory(params, seed, warmup_ns, measure_ns)
