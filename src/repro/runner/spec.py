"""Declarative run specifications.

A :class:`RunSpec` names *one* independent simulator run: which scenario
factory to build (by registry name), its parameters, the measurement
windows, and a base seed.  Specs are frozen, hashable, and canonical —
two specs built from the same logical inputs compare equal regardless of
parameter ordering — so they can key caches and derive per-run seeds.

Experiment modules produce lists of specs (``specs(quick)``); the
:mod:`repro.runner.engine` executes them serially or on a process pool
and hands the records back to the module's pure ``reduce``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

#: params are stored canonically as a sorted tuple of (key, value) pairs
ParamItems = Tuple[Tuple[str, Any], ...]


def _canonical_value(value: Any) -> Any:
    """Recursively freeze a parameter value into a hashable canonical form."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _canonical_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"RunSpec params must be JSON-like (str/int/float/bool/None/list/dict), "
        f"got {type(value).__name__}: {value!r}"
    )


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_canonical_value` for dict-valued parameters."""
    if isinstance(value, tuple):
        if value and all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            return {k: _thaw(v) for k, v in value}
        return [_thaw(v) for v in value]
    return value


def canonical_params(params: Optional[Mapping[str, Any]]) -> ParamItems:
    """Sorted, frozen (key, value) items for a parameter mapping."""
    if not params:
        return ()
    return tuple(sorted((str(k), _canonical_value(v)) for k, v in params.items()))


@dataclass(frozen=True)
class RunSpec:
    """One independent cell of an experiment sweep.

    ``factory`` names a registered scenario factory
    (:mod:`repro.runner.registry`); ``params`` are its keyword arguments in
    canonical frozen form (build specs with :meth:`make` to pass a plain
    dict).  ``tags`` are presentation metadata for humans and manifests;
    they do not participate in the spec key, so re-tagging a sweep never
    invalidates its cache.
    """

    factory: str
    params: ParamItems = ()
    seed: int = 0
    warmup_ns: float = 2_000_000.0
    measure_ns: float = 8_000_000.0
    tags: Tuple[str, ...] = ()
    timeout_s: Optional[float] = field(default=None, compare=False)

    @classmethod
    def make(
        cls,
        factory: str,
        params: Optional[Mapping[str, Any]] = None,
        *,
        seed: int = 0,
        warmup_ns: float = 2_000_000.0,
        measure_ns: float = 8_000_000.0,
        tags: Tuple[str, ...] = (),
        timeout_s: Optional[float] = None,
    ) -> "RunSpec":
        return cls(
            factory=factory,
            params=canonical_params(params),
            seed=seed,
            # windows enter the content key via json.dumps, where 100000
            # and 100000.0 serialize differently — normalize to float so
            # a sweep.json round trip cannot shift a spec's key
            warmup_ns=float(warmup_ns),
            measure_ns=float(measure_ns),
            tags=tuple(str(t) for t in tags),
            timeout_s=timeout_s,
        )

    # --------------------------------------------------------------- views
    def params_dict(self) -> Dict[str, Any]:
        """The parameters as a plain dict (nested dicts/lists thawed)."""
        return {k: _thaw(v) for k, v in self.params}

    def with_windows(self, warmup_ns: float, measure_ns: float) -> "RunSpec":
        return replace(
            self, warmup_ns=float(warmup_ns), measure_ns=float(measure_ns)
        )

    # ------------------------------------------------------------- JSON IO
    def to_json_dict(self) -> Dict[str, Any]:
        """Everything needed to rebuild this spec (for ``sweep.json``)."""
        return {
            "factory": self.factory,
            "params": self.params_dict(),
            "seed": self.seed,
            "warmup_ns": self.warmup_ns,
            "measure_ns": self.measure_ns,
            "tags": list(self.tags),
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_json_dict`; key-stable round trip."""
        return cls.make(
            data["factory"],
            data.get("params") or None,
            seed=int(data.get("seed", 0)),
            warmup_ns=float(data.get("warmup_ns", 2_000_000.0)),
            measure_ns=float(data.get("measure_ns", 8_000_000.0)),
            tags=tuple(data.get("tags", ())),
            timeout_s=data.get("timeout_s"),
        )

    # ---------------------------------------------------------------- keys
    @property
    def key(self) -> str:
        """Content hash of everything that determines the run's outcome."""
        payload = json.dumps(
            {
                "factory": self.factory,
                "params": self.params,
                "seed": self.seed,
                "warmup_ns": self.warmup_ns,
                "measure_ns": self.measure_ns,
            },
            sort_keys=True,
            default=list,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def short_key(self) -> str:
        return self.key[:16]

    def derived_seed(self, global_seed: int) -> int:
        """Deterministic per-spec seed from ``(global_seed, spec key)``.

        Independent of execution order and of which process runs the spec,
        so serial and parallel sweeps are bit-identical; changing the
        global seed re-seeds every cell.
        """
        digest = hashlib.sha256(
            f"{global_seed}:{self.seed}:{self.key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") % (2**32)

    def describe(self) -> str:
        """A short human-readable label (tags if present, else factory+key)."""
        if self.tags:
            return "/".join(self.tags)
        return f"{self.factory}:{self.short_key}"
