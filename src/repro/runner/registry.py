"""Scenario-factory registry.

Factories are referenced by *name* inside :class:`RunSpec` and resolved
lazily from dotted ``"module:function"`` paths, so spec construction
never imports workload code (keeping specs cheap and picklable) and
worker processes import only what they execute.

A factory has the signature::

    factory(params: dict, seed: int, warmup_ns: float, measure_ns: float)
        -> dict   # JSON-safe measurements

The engine injects ``params["_attempt"]`` (0-based retry counter) before
each call; factories that do not care simply ignore it.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict

Factory = Callable[..., Dict[str, Any]]

#: name -> "module:function" dotted path
FACTORIES: Dict[str, str] = {
    "sockperf": "repro.runner.factories:sockperf_factory",
    "sockperf_loaded": "repro.runner.factories:sockperf_loaded_factory",
    "multiflow": "repro.runner.factories:multiflow_factory",
    "memcached": "repro.runner.factories:memcached_factory",
    "webserving": "repro.runner.factories:webserving_factory",
    "mflow_extension": "repro.experiments.extensions:extension_factory",
    # test doubles (used by the runner's own test-suite)
    "_test_echo": "repro.runner.factories:_echo_factory",
    "_test_crashy": "repro.runner.factories:_crashy_factory",
    "_test_sleepy": "repro.runner.factories:_sleepy_factory",
}


def register(name: str, dotted_path: str) -> None:
    """Register (or override) a factory under ``name``."""
    if ":" not in dotted_path:
        raise ValueError(f"expected 'module:function', got {dotted_path!r}")
    FACTORIES[name] = dotted_path


def resolve(name: str) -> Factory:
    """Import and return the factory registered under ``name``."""
    try:
        dotted = FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario factory {name!r}; registered: {sorted(FACTORIES)}"
        ) from None
    module_name, _, attr = dotted.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)
