"""Structured run artifacts.

A :class:`RunRecord` is the JSON-serializable outcome of executing one
:class:`~repro.runner.spec.RunSpec`: the spec identity, the measurements
the factory produced, execution metadata (wall time, simulator events,
attempts), and an error field for runs that failed after retry.  Records
are what the engine caches, what ``results/<experiment>/`` stores on
disk, and what experiment ``reduce`` functions consume.

Measurement payloads are plain dicts; the helpers here convert the
simulator's result objects to and from that form so reducers can keep
working with the familiar :class:`ScenarioResult` API.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.metrics.summary import LatencySummary
from repro.workloads.scenario import ScenarioResult

from repro.runner.spec import RunSpec


# ------------------------------------------------------- result serialization
def latency_to_dict(latency: LatencySummary) -> Dict[str, float]:
    return latency.to_dict()


def latency_from_dict(data: Dict[str, float]) -> LatencySummary:
    return LatencySummary.from_dict(data)


def scenario_result_to_dict(res: ScenarioResult) -> Dict[str, Any]:
    """Flatten a :class:`ScenarioResult` into a JSON-safe measurement dict.

    The ``obs`` payload is included only when the run was instrumented, so
    uninstrumented measurement dicts are byte-identical to pre-obs builds
    (cache-key and result-hash stability).
    """
    out = {
        "kind": "scenario",
        "throughput_gbps": res.throughput_gbps,
        "messages_delivered": res.messages_delivered,
        "latency": latency_to_dict(res.latency),
        "cpu_utilization": list(res.cpu_utilization),
        "cpu_breakdown": [dict(b) for b in res.cpu_breakdown],
        "counters": dict(res.counters),
        "drops": dict(res.drops),
        "ooo_arrivals": res.ooo_arrivals,
        "window_ns": res.window_ns,
        "events_executed": res.events_executed,
        "fault_plan": res.fault_plan,
        "fault_counters": dict(res.fault_counters),
        "degradation_events": [dict(e) for e in res.degradation_events],
        "conservation_checks": res.conservation_checks,
        "conservation_violations": res.conservation_violations,
    }
    if res.obs is not None:
        out["obs"] = dict(res.obs)
    if res.selfprof is not None:
        out["selfprof"] = dict(res.selfprof)
    if res.migration is not None:
        out["migration"] = dict(res.migration)
    if res.health_counts:
        out["health_counts"] = {k: dict(v) for k, v in res.health_counts.items()}
    if res.hist is not None:
        out["hist"] = dict(res.hist)
    return out


def scenario_result_from_dict(data: Dict[str, Any]) -> ScenarioResult:
    return ScenarioResult(
        throughput_gbps=float(data["throughput_gbps"]),
        messages_delivered=int(data["messages_delivered"]),
        latency=latency_from_dict(data["latency"]),
        cpu_utilization=[float(u) for u in data["cpu_utilization"]],
        cpu_breakdown=[dict(b) for b in data["cpu_breakdown"]],
        counters={k: int(v) for k, v in data.get("counters", {}).items()},
        drops={k: int(v) for k, v in data.get("drops", {}).items()},
        ooo_arrivals=int(data.get("ooo_arrivals", 0)),
        window_ns=float(data.get("window_ns", 0.0)),
        events_executed=int(data.get("events_executed", 0)),
        fault_plan=str(data.get("fault_plan", "")),
        fault_counters={
            k: int(v) for k, v in data.get("fault_counters", {}).items()
        },
        degradation_events=[dict(e) for e in data.get("degradation_events", [])],
        conservation_checks=int(data.get("conservation_checks", 0)),
        conservation_violations=int(data.get("conservation_violations", 0)),
        obs=data.get("obs"),
        selfprof=data.get("selfprof"),
        migration=data.get("migration"),
        health_counts={
            k: dict(v) for k, v in data.get("health_counts", {}).items()
        },
        hist=data.get("hist"),
    )


# --------------------------------------------------------------- run records
@dataclass
class RunRecord:
    """Everything one executed (or cached, or failed) spec leaves behind."""

    spec_key: str
    factory: str
    params: Dict[str, Any]
    tags: List[str]
    seed: int                    # effective (derived) scenario seed
    global_seed: int
    warmup_ns: float
    measure_ns: float
    code_version: str = ""
    experiment: str = ""
    measurements: Optional[Dict[str, Any]] = None
    wall_time_s: float = 0.0
    events_executed: int = 0
    events_per_sec: float = 0.0
    attempts: int = 1
    cached: bool = False
    error: Optional[str] = None
    timeout_s: Optional[float] = None
    #: whether ``timeout_s`` was actually enforced (a worker past the cap
    #: gets killed) or merely recorded.  In-process execution — the local
    #: executor, or a socket pool degraded to it — has no hang
    #: protection, and its records say so instead of implying it.
    timeout_enforced: Optional[bool] = None
    retries: List[Dict[str, Any]] = field(default_factory=list)
    checkpoint_restores: int = 0
    quarantined: bool = False
    #: identity of the pool runner that executed the cell (socket
    #: executor; None for local/process execution)
    runner: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.measurements is not None

    # ------------------------------------------------------------ accessors
    def scenario_result(self) -> ScenarioResult:
        """Reconstruct the :class:`ScenarioResult` for scenario-kind records."""
        if not self.ok:
            raise ValueError(f"record {self.spec_key[:16]} failed: {self.error}")
        assert self.measurements is not None
        if self.measurements.get("kind") != "scenario":
            raise ValueError(
                f"record {self.spec_key[:16]} holds "
                f"{self.measurements.get('kind')!r} measurements, not a scenario"
            )
        return scenario_result_from_dict(self.measurements)

    def latency(self) -> LatencySummary:
        assert self.measurements is not None
        return latency_from_dict(self.measurements["latency"])

    def progress_payload(self) -> Dict[str, Any]:
        """The completion progress block journaled on v2 ``spec`` entries.

        Consumed by ``repro top`` / ``repro metrics`` via the journal, so
        keys here are part of the journal schema (see OBSERVABILITY.md).
        """
        progress: Dict[str, Any] = {
            "events_executed": self.events_executed,
            "events_per_sec": round(self.events_per_sec, 1),
        }
        measurements = self.measurements or {}
        if measurements.get("window_ns"):
            progress["sim_ns"] = measurements["window_ns"]
        selfprof = measurements.get("selfprof") or {}
        if selfprof.get("events_per_sec"):
            progress["selfprof_events_per_sec"] = round(
                selfprof["events_per_sec"], 1
            )
        return progress

    # -------------------------------------------------------------- JSON IO
    def to_json_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(**data)

    @classmethod
    def for_spec(
        cls, spec: RunSpec, global_seed: int, experiment: str = "", code_version: str = ""
    ) -> "RunRecord":
        """An empty record pre-filled with the spec's identity."""
        return cls(
            spec_key=spec.key,
            factory=spec.factory,
            params=spec.params_dict(),
            tags=list(spec.tags),
            seed=spec.derived_seed(global_seed),
            global_seed=global_seed,
            warmup_ns=spec.warmup_ns,
            measure_ns=spec.measure_ns,
            experiment=experiment,
            code_version=code_version,
        )


def index_by_tags(records: List[RunRecord]) -> Dict[tuple, RunRecord]:
    """Look-up table from a record's tag tuple to the record."""
    return {tuple(r.tags): r for r in records}
