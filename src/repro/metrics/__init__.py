"""Measurement infrastructure: counters, latency distributions, throughput
windows and per-core utilization reporting."""

from repro.metrics.telemetry import Telemetry
from repro.metrics.summary import percentile, summarize_latencies, LatencySummary

__all__ = ["Telemetry", "percentile", "summarize_latencies", "LatencySummary"]
