"""Run-wide counters and sample collections.

One :class:`Telemetry` instance is threaded through a simulation run.
Counters are plain named integers; observations are named sample lists
(latencies, queue depths) reduced to percentiles at reporting time.

A *measurement window* separates warmup from steady state: samples and
delivery counters recorded before :meth:`start_window` is called are
excluded from windowed statistics.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.sim.engine import Simulator

#: default per-name sample-list bound (see ``Telemetry.sample_cap``)
DEFAULT_SAMPLE_CAP = 100_000


class Telemetry:
    """Counters + sample streams with warmup-aware windowing."""

    def __init__(
        self,
        sim: Simulator,
        record_prewindow: bool = False,
        sample_cap: int = DEFAULT_SAMPLE_CAP,
        sample_seed: int = 0,
    ):
        """``record_prewindow=True`` keeps samples observed before any
        measurement window is opened.  The default (``False``) matches the
        experiment harnesses, which treat everything before
        :meth:`start_window` as warmup — but standalone/unit users that never
        open a window would otherwise silently lose every sample.

        ``sample_cap`` bounds each named sample list: past it, observations
        degrade to reservoir sampling (Algorithm R) on a dedicated PRNG
        seeded from ``sample_seed``, so heavy runs stay O(cap) in memory.
        Below the cap behavior is exact — every sample is kept in order and
        no randomness is consumed, so capped and uncapped runs are
        indistinguishable until a list actually overflows.  The kept set is
        a pure function of (seed, observation sequence): jobs-invariant
        across serial and parallel sweeps.
        """
        if sample_cap < 1:
            raise ValueError(f"sample_cap must be >= 1, got {sample_cap}")
        self.sim = sim
        self.counters: Dict[str, int] = {}
        self.samples: Dict[str, List[float]] = {}
        self.sample_cap = sample_cap
        self.sample_seed = sample_seed
        self._sample_rng = random.Random(sample_seed ^ 0xC0FFEE)
        self._samples_seen: Dict[str, int] = {}
        self._window_start: Optional[float] = None
        self._window_counters: Dict[str, int] = {}
        self.recording = True
        self.record_prewindow = record_prewindow

    # ----------------------------------------------------------- counters
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # ------------------------------------------------------------- samples
    def observe(self, name: str, value: float) -> None:
        """Record one sample.

        Samples seen while no measurement window is open count as warmup and
        are dropped unless the instance was built with
        ``record_prewindow=True`` (note that :meth:`start_window` still
        clears everything recorded so far when it opens the window).
        """
        if not self.recording:
            return
        if self._window_start is None and not self.record_prewindow:
            return
        lst = self.samples.setdefault(name, [])
        seen = self._samples_seen.get(name, 0) + 1
        self._samples_seen[name] = seen
        if len(lst) < self.sample_cap:
            lst.append(value)
            return
        # Algorithm R: each of the `seen` observations survives with
        # probability sample_cap / seen
        j = self._sample_rng.randrange(seen)
        if j < self.sample_cap:
            lst[j] = value

    def sample_list(self, name: str) -> List[float]:
        return self.samples.get(name, [])

    # -------------------------------------------------------------- window
    def start_window(self) -> None:
        """Open the measurement window at the current sim time."""
        self._window_start = self.sim.now
        self._window_counters = dict(self.counters)
        self.samples.clear()
        # restart reservoir state so windowed sampling is a pure function
        # of the in-window observation sequence (prewindow traffic volume
        # must not influence which measured samples survive)
        self._samples_seen.clear()
        self._sample_rng = random.Random(self.sample_seed ^ 0xC0FFEE)

    @property
    def window_open(self) -> bool:
        return self._window_start is not None

    @property
    def window_elapsed_ns(self) -> float:
        if self._window_start is None:
            return 0.0
        return self.sim.now - self._window_start

    def window_count(self, name: str) -> int:
        """Counter delta since the window opened (total count if no window)."""
        total = self.counters.get(name, 0)
        if self._window_start is None:
            return total
        return total - self._window_counters.get(name, 0)

    def window_rate_gbps(self, bytes_counter: str) -> float:
        """Delivered-bytes counter over the window, as Gbps."""
        elapsed = self.window_elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.window_count(bytes_counter) * 8.0 / elapsed
