"""Reduction of raw samples to the statistics the paper reports."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Mapping, Sequence

import numpy as np


def percentile(samples: Sequence[float], pct: float) -> float:
    """The ``pct``-th percentile of ``samples`` (0 for an empty set)."""
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=float), pct))


@dataclass(frozen=True)
class LatencySummary:
    """The latency statistics used in Figures 9 and 13."""

    count: int
    mean_us: float
    p50_us: float
    p99_us: float
    max_us: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_us:.1f}us "
            f"p50={self.p50_us:.1f}us p99={self.p99_us:.1f}us max={self.max_us:.1f}us"
        )

    # JSON round-trip for run-record measurement payloads
    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "LatencySummary":
        return cls(
            count=int(data["count"]),
            mean_us=float(data["mean_us"]),
            p50_us=float(data["p50_us"]),
            p99_us=float(data["p99_us"]),
            max_us=float(data["max_us"]),
        )


def summarize_latencies(samples_ns: Sequence[float]) -> LatencySummary:
    """Collapse nanosecond latency samples into a microsecond summary."""
    if len(samples_ns) == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(samples_ns, dtype=float) / 1_000.0
    return LatencySummary(
        count=len(arr),
        mean_us=float(arr.mean()),
        p50_us=float(np.percentile(arr, 50)),
        p99_us=float(np.percentile(arr, 99)),
        max_us=float(arr.max()),
    )
