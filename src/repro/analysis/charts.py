"""Dependency-free ASCII charts for experiment reports.

The experiment harness prints tables; these helpers add quick visual
shape checks (who wins, where the knee is) without any plotting
dependency — useful in EXPERIMENTS.md and terminal output.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple


def bar_chart(
    data: Dict[str, float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not data:
        raise ValueError("bar_chart needs at least one value")
    peak = max(data.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in data)
    lines = [title] if title else []
    for label, value in data.items():
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label:>{label_w}} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series is a list of (x, y) points; series are drawn with
    distinct markers in insertion order.
    """
    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ValueError("line_chart needs at least one point")
    markers = "*o+x@%&"
    xs = [p[0] for pts in series.values() for p in pts]
    ys = [p[1] for pts in series.values() for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = [title] if title else []
    lines.append(f"{y_hi:.1f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * len(f"{y_hi:.1f} ") + "┤" + "".join(row))
    lines.append(f"{y_lo:.1f} ┤" + "".join(grid[-1]))
    lines.append(
        " " * len(f"{y_hi:.1f} ")
        + "└"
        + "─" * width
        + f"  x: {x_lo:g}..{x_hi:g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)
