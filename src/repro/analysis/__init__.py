"""Analysis companions to the simulator.

* :mod:`repro.analysis.bottleneck` — a closed-form bottleneck model that
  predicts each scheme's single-flow throughput ceiling directly from the
  cost model (the back-of-envelope the calibration is built on); used to
  cross-validate the simulator and to explain results;
* :mod:`repro.analysis.charts` — dependency-free ASCII bar/line charts
  for experiment reports;
* :mod:`repro.analysis.conservation` — end-to-end packet-conservation
  checks (sent = delivered + dropped + in-flight) used by the
  integration tests.
"""

from repro.analysis.bottleneck import BottleneckModel, StageLoad
from repro.analysis.charts import bar_chart, line_chart
from repro.analysis.conservation import ConservationReport, check_conservation

__all__ = [
    "BottleneckModel",
    "StageLoad",
    "bar_chart",
    "line_chart",
    "ConservationReport",
    "check_conservation",
]
