"""Packet-conservation accounting.

A simulation step can lose packets only at explicitly-counted places:
the NIC ring, per-core backlog limits, UDP reassembly eviction, or by
still being in flight when the run stops.  ``check_conservation``
reconciles a finished scenario's counters against what the senders put
on the wire and reports any unexplained gap — the integration tests
require the gap to be zero-ish (bounded by in-flight slack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ConservationReport:
    """Reconciliation of one run's wire packets."""

    sent_packets: int
    received_at_nic: int
    ring_drops: int
    backlog_drops: int
    delivered_segments: int
    in_flight_estimate: int
    #: packets consumed by explicitly-counted fault sinks after the NIC:
    #: branch-blackout drops and duplicate segments absorbed by TCP
    fault_drops: int = 0

    @property
    def accounted(self) -> int:
        return (
            self.delivered_segments
            + self.ring_drops
            + self.backlog_drops
            + self.fault_drops
        )

    @property
    def unaccounted(self) -> int:
        """Packets neither delivered, dropped, nor at the NIC boundary.

        These are legitimately in flight inside the pipeline (queued work,
        GRO holds, merge buffers, OOO queues) when the run stops.
        """
        return self.received_at_nic - self.accounted

    def ok(self, slack: int = 0) -> bool:
        """True when every packet is accounted for, within ``slack``
        allowed in-flight packets."""
        if self.unaccounted < 0:
            return False  # delivered more than arrived: double counting!
        return self.unaccounted <= max(slack, self.in_flight_estimate)


def check_conservation(
    counters: Dict[str, int],
    sent_packets: int,
    proto: str,
    in_flight_estimate: int = 4096,
) -> ConservationReport:
    """Build a :class:`ConservationReport` from scenario counters.

    ``sent_packets`` is the wire-packet count the senders produced
    (fragments, not messages).  Delivered segments come from the
    protocol-specific counters; for UDP the receive-stage segment count
    is used because datagram reassembly legitimately discards fragments
    of incomplete datagrams after counting them.
    """
    if proto == "tcp":
        delivered = counters.get("tcp_delivered_segments", 0)
        # duplicate segments (fault-injected: TCP has no retransmission
        # here) arrive at the NIC but are absorbed before delivery
        fault_drops = counters.get("tcp_dup_segments", 0)
    elif proto == "udp":
        delivered = counters.get("udp_rcv_segments", 0)
        fault_drops = 0
    else:
        raise ValueError(f"unknown proto {proto!r}")
    # a blacked-out branch swallows packets after they cleared the NIC
    fault_drops += counters.get("fault_branch_blackout", 0)
    return ConservationReport(
        sent_packets=sent_packets,
        received_at_nic=counters.get("nic_rx_packets", 0)
        + counters.get("nic_ring_drops", 0),
        ring_drops=counters.get("nic_ring_drops", 0),
        backlog_drops=counters.get("backlog_drops", 0),
        delivered_segments=delivered,
        in_flight_estimate=in_flight_estimate,
        fault_drops=fault_drops,
    )
