"""Closed-form bottleneck analysis of the receive path.

For a single elephant flow, each scheme's throughput ceiling is set by
its most-loaded core:  ``throughput = payload_bits / max_core(ns per
packet charged to that core)``.  This module computes that ceiling
directly from a :class:`~repro.netstack.costs.CostModel` and a stage→
core assignment — no simulation — which serves three purposes:

* documents *why* the calibration produces the paper's shape (the same
  arithmetic as DESIGN.md's calibration notes, executable);
* cross-validates the simulator: the measured throughput must come in at
  or slightly below the analytic ceiling (queueing and jitter only ever
  subtract);
* lets users predict the effect of cost changes before running sweeps.

The model deliberately ignores queueing dynamics, drops and reassembly
stalls; it is an upper bound, not a replacement for simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netstack.costs import CostModel
from repro.netstack.packet import MAX_SEGMENT_PAYLOAD

#: receive-path stages in order, with their per-unit cost attribute and
#: whether the cost is charged per wire packet or per (GRO-merged) skb
_OVERLAY_STAGES = [
    ("driver_poll", "driver_poll_per_pkt_ns", "packet"),
    ("skb_alloc", "skb_alloc_ns", "packet"),
    ("gro", "gro_per_seg_ns", "packet"),
    ("ip_outer", "ip_rcv_ns", "skb"),
    ("udp_outer", "udp_rcv_outer_ns", "skb"),
    ("vxlan", "vxlan_decap_ns", "skb"),
    ("bridge", "bridge_fwd_ns", "skb"),
    ("veth_xmit", "veth_xmit_ns", "skb"),
    ("veth_rx", "veth_rx_ns", "skb"),
    ("ip_inner", "ip_rcv_inner_ns", "skb"),
]

_NATIVE_STAGES = [
    ("driver_poll", "driver_poll_per_pkt_ns", "packet"),
    ("skb_alloc", "skb_alloc_ns", "packet"),
    ("gro", "gro_per_seg_ns", "packet"),
    ("ip_rcv", "ip_rcv_ns", "skb"),
]

_TRANSPORT = {
    "tcp": [("tcp_rcv", "tcp_rcv_ns", "skb")],
    "udp": [("udp_rcv", "udp_rcv_ns", "skb")],
}


@dataclass
class StageLoad:
    """Per-packet cost of one stage under a given GRO merge factor."""

    stage: str
    core: int
    ns_per_packet: float


@dataclass
class BottleneckModel:
    """Analytic single-flow ceiling for one (scheme, protocol) setup."""

    costs: CostModel
    proto: str = "tcp"
    overlay: bool = True

    def __post_init__(self) -> None:
        if self.proto not in ("tcp", "udp"):
            raise ValueError(f"proto must be tcp/udp, got {self.proto!r}")

    # ------------------------------------------------------------ building
    def gro_factor(self) -> float:
        """Effective GRO merge factor (1 for UDP — paper footnote 2)."""
        if self.proto != "tcp":
            return 1.0
        cap = (
            self.costs.gro_max_segs_encap
            if self.overlay
            else self.costs.gro_max_segs_native
        )
        return float(max(1, cap))

    def stage_list(self) -> List[tuple]:
        base = _OVERLAY_STAGES if self.overlay else _NATIVE_STAGES
        return list(base) + _TRANSPORT[self.proto]

    def stage_loads(self, assignment: Dict[str, int]) -> List[StageLoad]:
        """Per-packet cost of every stage, on its assigned core.

        ``assignment`` maps stage name → core index; stages absent from
        the map are an error (the caller must place the whole path).
        Cross-core boundaries charge the handoff to the downstream core
        and the dispatch cost to the upstream core.
        """
        merge = self.gro_factor()
        loads: List[StageLoad] = []
        prev_core: Optional[int] = None
        for name, attr, unit in self.stage_list():
            if name not in assignment:
                raise KeyError(f"stage {name!r} missing from core assignment")
            core = assignment[name]
            per_unit = getattr(self.costs, attr)
            per_packet = per_unit if unit == "packet" else per_unit / merge
            # skbs cross boundaries post-GRO; packets pre-GRO
            boundary_unit = 1.0 if unit == "packet" else 1.0 / merge
            if prev_core is not None and core != prev_core:
                per_packet += self.costs.handoff_cost_ns * boundary_unit
                loads.append(
                    StageLoad(
                        f"{name}:dispatch",
                        prev_core,
                        self.costs.steer_dispatch_ns * boundary_unit,
                    )
                )
            loads.append(StageLoad(name, core, per_packet))
            prev_core = core
        return loads

    # ------------------------------------------------------------- results
    def core_loads(self, assignment: Dict[str, int]) -> Dict[int, float]:
        """ns of CPU per wire packet charged to each core."""
        out: Dict[int, float] = {}
        for load in self.stage_loads(assignment):
            out[load.core] = out.get(load.core, 0.0) + load.ns_per_packet
        return out

    def ceiling_gbps(
        self,
        assignment: Dict[str, int],
        parallel_groups: Optional[Dict[int, float]] = None,
    ) -> float:
        """Throughput ceiling in Gbps for a stage→core placement.

        ``parallel_groups`` maps a core index to the fraction of packets
        it serves (e.g. 0.5 for each of two MFLOW branch cores); cores
        absent serve every packet.
        """
        loads = self.core_loads(assignment)
        worst = 0.0
        for core, ns_per_pkt in loads.items():
            share = parallel_groups.get(core, 1.0) if parallel_groups else 1.0
            effective = ns_per_pkt * share
            worst = max(worst, effective)
        if worst <= 0:
            raise ValueError("empty assignment")
        return MAX_SEGMENT_PAYLOAD * 8.0 / worst

    # ------------------------------------------------------- common layouts
    def vanilla_ceiling(self) -> float:
        """Everything on one kernel core (the paper's vanilla/native)."""
        assignment = {name: 1 for name, _, _ in self.stage_list()}
        return self.ceiling_gbps(assignment)

    def falcon_fun_ceiling(self) -> float:
        """FALCON function-level: alloc | GRO+outer+VxLAN | rest."""
        if not self.overlay:
            raise ValueError("FALCON pipelines the overlay path")
        assignment = {"driver_poll": 1, "skb_alloc": 1, "gro": 2}
        for name in ("ip_outer", "udp_outer", "vxlan"):
            assignment[name] = 2
        for name in ("bridge", "veth_xmit", "veth_rx", "ip_inner", "tcp_rcv", "udp_rcv"):
            assignment[name] = 3
        assignment = {k: v for k, v in assignment.items()
                      if k in {n for n, _, _ in self.stage_list()}}
        return self.ceiling_gbps(assignment)

    def mflow_branch_ceiling(self, n_branches: int = 2) -> float:
        """MFLOW device scaling: branches share everything after the split."""
        if not self.overlay:
            raise ValueError("MFLOW configs here target the overlay path")
        assignment = {"driver_poll": 1, "skb_alloc": 1, "gro": 1,
                      "ip_outer": 1, "udp_outer": 1}
        branch_core = 2
        for name in ("vxlan", "bridge", "veth_xmit", "veth_rx", "ip_inner",
                     "tcp_rcv", "udp_rcv"):
            assignment[name] = branch_core
        assignment = {k: v for k, v in assignment.items()
                      if k in {n for n, _, _ in self.stage_list()}}
        return self.ceiling_gbps(assignment, parallel_groups={branch_core: 1.0 / n_branches})
