"""MFLOW reproduction.

Reproduces *Accelerating Packet Processing in Container Overlay Networks
via Packet-level Parallelism* (IPDPS 2023) on a discrete-event simulator
of the Linux kernel receive path.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro.workloads.sockperf import run_single_flow
    res = run_single_flow("mflow", "tcp", 64 * 1024)
    print(res.throughput_gbps)
"""

from repro.core import BranchPlan, MflowConfig, MflowPolicy
from repro.netstack.costs import CostModel, DEFAULT_COSTS
from repro.overlay.topology import DatapathKind
from repro.steering import (
    FalconDevPolicy,
    FalconFunPolicy,
    RpsPolicy,
    RssPolicy,
    VanillaPolicy,
)
from repro.workloads.scenario import Scenario, ScenarioResult, make_flow

__version__ = "1.0.0"

__all__ = [
    "BranchPlan",
    "MflowConfig",
    "MflowPolicy",
    "CostModel",
    "DEFAULT_COSTS",
    "DatapathKind",
    "VanillaPolicy",
    "RssPolicy",
    "RpsPolicy",
    "FalconDevPolicy",
    "FalconFunPolicy",
    "Scenario",
    "ScenarioResult",
    "make_flow",
    "__version__",
]
