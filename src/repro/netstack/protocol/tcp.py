"""TCP endpoints.

The receive side is the stateful stage the paper's whole design revolves
around: packets MUST enter it in order.  Segments arriving above
``rcv_nxt`` go to a per-flow out-of-order queue at a significant extra
cost (the kernel's ofo-queue handling) and are only released once the
gap fills — which is exactly why naive per-packet steering is a loss and
why MFLOW merges micro-flows *before* this stage.

The sender is window-limited (ACK-clocked) and CPU-limited: each
``sendmsg`` costs syscall time on the client's application core and each
segment costs transmit-path time on the client's kernel core (plus VxLAN
encapsulation on overlay paths).  This makes the client the bottleneck
for small messages, reproducing the paper's 16 B observations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cpu.core import Core
from repro.metrics.telemetry import Telemetry
from repro.netstack.costs import CostModel
from repro.netstack.packet import FlowKey, Packet, Skb, fragment_message
from repro.netstack.stages import Stage, StageContext
from repro.sim.engine import Simulator


class _TcpFlowState:
    """Per-flow receiver state: next expected byte and the OOO queue."""

    __slots__ = ("rcv_nxt", "ooo", "dup_segments", "ooo_segments")

    def __init__(self) -> None:
        self.rcv_nxt = 0
        self.ooo: Dict[int, Skb] = {}  # start-seq -> skb
        self.dup_segments = 0
        self.ooo_segments = 0


class TcpReceiverStage(Stage):
    """In-order TCP receive processing + cumulative ACK generation.

    Forwards in-order skbs (possibly draining the OOO queue behind them)
    to the delivery stage.  Not droppable: the sender window bounds the
    number of TCP segments in flight, so backlogs can't grow unboundedly.
    """

    name = "tcp_rcv"
    droppable = False

    def __init__(self, ack_fn: Optional[Callable[[FlowKey, int], None]] = None):
        self._flows: Dict[FlowKey, _TcpFlowState] = {}
        self._ack_fn = ack_fn
        self.total_ooo_events = 0

    def set_ack_fn(self, fn: Callable[[FlowKey, int], None]) -> None:
        self._ack_fn = fn

    def flow_state(self, flow: FlowKey) -> _TcpFlowState:
        st = self._flows.get(flow)
        if st is None:
            st = self._flows[flow] = _TcpFlowState()
        return st

    def iter_flows(self):
        """(flow, state) pairs — read-only socket introspection."""
        return self._flows.items()

    def detach_flow(self, flow: FlowKey) -> Optional[_TcpFlowState]:
        """Remove and return ``flow``'s live socket state (``rcv_nxt`` and
        the OOO queue) — the migration freeze path."""
        return self._flows.pop(flow, None)

    def attach_flow(self, flow: FlowKey, state: _TcpFlowState) -> None:
        """Reinstall a detached socket state (the migration restore path)."""
        self._flows[flow] = state

    def release_flow(self, flow: FlowKey, pipeline) -> int:
        """Drop ``flow``'s state, recycling parked OOO skbs to the pool."""
        st = self._flows.pop(flow, None)
        if st is None:
            return 0
        released = len(st.ooo)
        for skb in st.ooo.values():
            pipeline.recycle_skb(skb)
        st.ooo.clear()
        return released

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.tcp_rcv_ns

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        st = self.flow_state(skb.flow)
        out: List[Skb] = []
        if skb.seq == st.rcv_nxt:
            st.rcv_nxt = skb.end_seq
            out.append(skb)
            # drain any queued continuation
            while st.rcv_nxt in st.ooo:
                queued = st.ooo.pop(st.rcv_nxt)
                st.rcv_nxt = queued.end_seq
                out.append(queued)
        elif skb.seq > st.rcv_nxt:
            # out-of-order: park in the ofo queue, charge the kernel's
            # per-segment reordering penalty on this core
            st.ooo[skb.seq] = skb
            st.ooo_segments += skb.segs
            self.total_ooo_events += 1
            ctx.telemetry.count("tcp_ooo_segments", skb.segs)
            ctx.core.submit_call(
                "tcp_ooo", ctx.costs.tcp_ooo_penalty_ns * skb.segs, _noop
            )
        else:
            st.dup_segments += skb.segs
            ctx.telemetry.count("tcp_dup_segments", skb.segs)
            # the duplicate is dead here — return its pooled skb
            ctx.pipeline.recycle_skb(skb)
        if out and self._ack_fn is not None:
            self._ack_fn(skb.flow, st.rcv_nxt)
        return out


class TcpDeliverStage(Stage):
    """tcp_recvmsg: copy to the user buffer on the application core.

    Terminal stage; counts delivered bytes/messages and records message
    latency when the last byte of a message is copied.  Application
    workloads can register ``on_message`` to be told when a complete
    message reaches user space (the recv() returning, in effect).
    """

    name = "tcp_deliver"
    droppable = False

    def __init__(self, on_message: Optional[Callable[[FlowKey, Packet], None]] = None):
        self._on_message = on_message

    def set_message_callback(self, fn: Callable[[FlowKey, Packet], None]) -> None:
        self._on_message = fn

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.copy_per_skb_ns + skb.payload_bytes * costs.copy_per_byte_ns

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        tele = ctx.telemetry
        tele.count("tcp_delivered_bytes", skb.payload_bytes)
        tele.count("tcp_delivered_segments", skb.segs)
        now = ctx.sim.now
        for pkt in skb.packets:
            if pkt.messages_completed:
                tele.count("tcp_delivered_messages", pkt.messages_completed)
                tele.observe("tcp_msg_latency_ns", now - pkt.send_ts)
                if self._on_message is not None:
                    self._on_message(skb.flow, pkt)
        ctx.pipeline.recycle_skb(skb)
        return []


class TcpSender:
    """A windowed, CPU-limited TCP sender on the client machine.

    Runs in *throughput mode* (infinite message backlog) by default, or
    on-demand via :meth:`send_message` for request/response workloads.
    """

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        flow: FlowKey,
        message_size: int,
        wire,
        app_core: Core,
        kernel_core: Core,
        telemetry: Telemetry,
        encap: bool = False,
        window_bytes: Optional[int] = None,
        continuous: bool = True,
        interval_ns: Optional[float] = None,
        rto_ns: Optional[float] = None,
    ):
        if message_size <= 0:
            raise ValueError(f"message size must be positive, got {message_size}")
        if rto_ns is not None and rto_ns <= 0.0:
            raise ValueError(f"rto_ns must be positive, got {rto_ns}")
        self.sim = sim
        self.costs = costs
        self.flow = flow
        self.message_size = message_size
        self.wire = wire
        self.app_core = app_core
        self.kernel_core = kernel_core
        self.telemetry = telemetry
        self.encap = encap
        self.window_bytes = window_bytes if window_bytes is not None else 1024 * 1448
        self.continuous = continuous
        self.interval_ns = interval_ns
        self.next_seq = 0
        self.acked_seq = 0
        self.next_msg_id = 0
        self.messages_sent = 0
        self._sending = False
        self._pending_requests: List[tuple] = []  # (size, on_sent) for demand mode
        self._pace_next_ns = 0.0  # token-bucket pacer (fq/TSQ-style)
        self._send_start_ns = 0.0
        # Retransmission (off by default — the stock model is lossless and
        # window-limited, and golden-seed runs must stay bit-identical).
        # Migration plans arm an RTO so blackout/loss gaps recover: unacked
        # segments are kept and resent go-back-N style when the timer finds
        # no cumulative-ACK progress.
        self.rto_ns = rto_ns
        self.retransmit_segments = 0
        self._retx_queue: List[Packet] = []
        self._rto_armed = False
        self._acked_at_arm = 0

    # ----------------------------------------------------------------- API
    def start(self) -> None:
        """Begin continuous transmission (throughput mode)."""
        if not self.continuous:
            raise RuntimeError("start() is only valid in continuous mode")
        self._pump()

    def send_message(self, size: Optional[int] = None, on_sent: Optional[Callable] = None) -> None:
        """Queue one message for transmission (request/response mode)."""
        self._pending_requests.append((size or self.message_size, on_sent))
        self._pump()

    def on_ack(self, flow: FlowKey, ack_seq: int) -> None:
        """Cumulative ACK from the receiver (invoked after wire delay)."""
        if ack_seq > self.acked_seq:
            self.acked_seq = ack_seq
            if self.rto_ns is not None and self._retx_queue:
                q = self._retx_queue
                drop = 0
                while drop < len(q) and q[drop].seq + q[drop].payload <= ack_seq:
                    drop += 1
                if drop:
                    del q[:drop]
        self._pump()

    @property
    def outstanding_bytes(self) -> int:
        return self.next_seq - self.acked_seq

    # ------------------------------------------------------------ internals
    def _next_message(self) -> Optional[tuple]:
        if self._pending_requests:
            return self._pending_requests.pop(0)
        if self.continuous:
            return (self.message_size, None)
        return None

    def _pump(self) -> None:
        if self._sending:
            return
        nxt = self._peek_size()
        if nxt is None:
            return
        # Nagle/autocork: in continuous throughput mode, sub-MSS messages
        # coalesce into one MSS-sized segment (sockperf TCP at 16 B is
        # bound by per-message syscalls on the client, not the receiver —
        # paper §V-A).
        from repro.netstack.packet import MAX_SEGMENT_PAYLOAD

        batch = 1
        if self.continuous and not self._pending_requests and nxt < MAX_SEGMENT_PAYLOAD:
            batch = max(1, MAX_SEGMENT_PAYLOAD // nxt)
        total = nxt * batch
        if self.outstanding_bytes + total > self.window_bytes:
            return
        msg = self._next_message()
        assert msg is not None
        size, on_sent = msg
        self._sending = True
        self._send_start_ns = self.sim.now
        self.app_core.submit_call(
            "send_syscall",
            self.costs.send_syscall_ns * batch,
            self._segment,
            size * batch,
            on_sent,
            batch,
        )

    def _peek_size(self) -> Optional[int]:
        if self._pending_requests:
            return self._pending_requests[0][0]
        if self.continuous:
            return self.message_size
        return None

    def _segment(self, size: int, on_sent: Optional[Callable], batch: int = 1) -> None:
        frags = fragment_message(
            self.flow, self.next_msg_id, size, start_seq=self.next_seq, encap=self.encap
        )
        if batch > 1:
            # coalesced sub-MSS messages: the (single) segment completes
            # `batch` application messages at once
            frags[-1].messages_completed = batch
        self.next_msg_id += 1
        self.next_seq += size
        per_seg = self.costs.send_per_seg_tcp_ns + (
            self.costs.send_encap_per_seg_ns if self.encap else 0.0
        )
        self.kernel_core.submit_call(
            "send_xmit", per_seg * len(frags), self._transmit, frags, on_sent, batch
        )

    def _transmit(self, frags: List[Packet], on_sent: Optional[Callable], batch: int = 1) -> None:
        now = self.sim.now
        gap_per_byte = 8.0 / self.costs.tcp_pacing_gbps
        t = max(now, self._pace_next_ns)
        for pkt in frags:
            pkt.send_ts = now
            if t <= now:
                self.wire.send(pkt)
            else:
                self.sim.sched_at(t, self.wire.send, pkt)
            t += pkt.wire_bytes * gap_per_byte
        self._pace_next_ns = t
        if self.rto_ns is not None:
            self._retx_queue.extend(frags)
            self._arm_rto()
        self.messages_sent += batch
        self.telemetry.count("tcp_messages_sent", batch)
        if on_sent is not None:
            on_sent()
        if self.interval_ns is not None:
            # rate-limited mode (latency measurements below saturation);
            # the interval is measured from send start
            elapsed = self.sim.now - self._send_start_ns
            self.sim.sched_in(max(0.0, self.interval_ns - elapsed), self._unblock)
        else:
            self._sending = False
            self._pump()

    def _unblock(self) -> None:
        self._sending = False
        self._pump()

    # ------------------------------------------------------- retransmission
    def _arm_rto(self) -> None:
        if self._rto_armed:
            return
        self._rto_armed = True
        self._acked_at_arm = self.acked_seq
        # bound method, not a closure: a live event heap stays picklable
        self.sim.sched_in(self.rto_ns, self._rto_check)

    def _rto_check(self) -> None:
        self._rto_armed = False
        if not self._retx_queue:
            return  # everything acked; the next transmit re-arms
        if self.acked_seq > self._acked_at_arm:
            # cumulative-ACK progress within the RTO: no loss signal yet
            self._arm_rto()
            return
        self._retransmit()
        self._arm_rto()

    def _retransmit(self) -> None:
        """Go-back-N: resend every unacked segment as an independent clone
        (the originals may still be in flight or delivered — the receiver's
        ``rcv_nxt`` discipline discards whichever copy arrives late)."""
        from repro.faults.injectors import clone_packet

        gap_per_byte = 8.0 / self.costs.tcp_pacing_gbps
        t = max(self.sim.now, self._pace_next_ns)
        for pkt in self._retx_queue:
            copy = clone_packet(pkt)
            if t <= self.sim.now:
                self.wire.send(copy)
            else:
                self.sim.sched_at(t, self.wire.send, copy)
            t += copy.wire_bytes * gap_per_byte
        self._pace_next_ns = t
        self.retransmit_segments += len(self._retx_queue)
        self.telemetry.count("tcp_retransmit_segments", len(self._retx_queue))


def _noop() -> None:
    return None
