"""UDP endpoints.

UDP is the protocol where overlay overhead bites hardest in the paper:
no GRO amortization, and messages larger than the MTU become IP fragment
trains — losing any single fragment under overload discards the whole
datagram, which is why vanilla-overlay UDP goodput collapses to a small
fraction of native.

The receive side is split into two stages mirroring the paper's Fig. 6c:
``udp_rcv`` (socket demux, per skb, runs wherever the policy puts it —
on MFLOW's splitting cores under device scaling) and ``udp_deliver``
(datagram reassembly + copy to user, in ``udp_recvmsg`` context on the
application core, after MFLOW's merge point).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.cpu.core import Core
from repro.metrics.telemetry import Telemetry
from repro.netstack.costs import CostModel
from repro.netstack.packet import FlowKey, Packet, Skb, fragment_message
from repro.netstack.stages import Stage, StageContext
from repro.sim.engine import Simulator

#: per-flow cap on datagrams awaiting missing fragments; beyond this the
#: oldest incomplete datagram is evicted (models ipfrag timeout/memory cap)
REASSEMBLY_WINDOW = 256


class UdpReceiverStage(Stage):
    """udp_rcv: socket lookup + checksum, per skb.  Stateless — safely
    parallelizable by MFLOW (each datagram fragment is independent here)."""

    name = "udp_rcv"
    droppable = True

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.udp_rcv_ns * skb.segs

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        ctx.telemetry.count("udp_rcv_segments", skb.segs)
        return [skb]


class UdpDeliverStage(Stage):
    """udp_recvmsg: fragment reassembly + copy to the user buffer.

    Terminal stage.  A datagram is *delivered* (goodput) only when all of
    its fragments have arrived; fragments of datagrams that never
    complete are wasted work, the amplification mechanism behind the
    paper's 80% UDP overlay loss.
    """

    name = "udp_deliver"
    droppable = True

    def __init__(self) -> None:
        # (flow, msg_id) -> [received frag indices, frag_count, send_ts, bytes]
        self._partial: "OrderedDict[Tuple[FlowKey, int], list]" = OrderedDict()
        self.incomplete_evicted = 0

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return (
            costs.udp_reassembly_per_frag_ns * skb.segs
            + costs.copy_per_skb_ns
            + skb.payload_bytes * costs.copy_per_byte_ns
        )

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        tele = ctx.telemetry
        now = ctx.sim.now
        for pkt in skb.packets:
            self._add_fragment(pkt, tele, now)
        ctx.pipeline.recycle_skb(skb)
        return []

    def detach_flow(self, flow: FlowKey) -> "OrderedDict[Tuple[FlowKey, int], list]":
        """Remove and return ``flow``'s partially-reassembled datagrams
        (the migration freeze path); insertion order is preserved so the
        restore re-installs the same eviction ordering."""
        detached: "OrderedDict[Tuple[FlowKey, int], list]" = OrderedDict()
        for key in [k for k in self._partial if k[0] == flow]:
            detached[key] = self._partial.pop(key)
        return detached

    def attach_flow(self, entries: "OrderedDict[Tuple[FlowKey, int], list]") -> None:
        """Reinstall detached reassembly state (the migration restore path)."""
        for key, entry in entries.items():
            self._partial[key] = entry

    def _add_fragment(self, pkt: Packet, tele: Telemetry, now: float) -> None:
        if pkt.frag_count == 1:
            tele.count("udp_delivered_messages")
            tele.count("udp_delivered_bytes", pkt.payload)
            tele.observe("udp_msg_latency_ns", now - pkt.send_ts)
            return
        key = (pkt.flow, pkt.msg_id)
        entry = self._partial.get(key)
        if entry is None:
            entry = [set(), pkt.frag_count, pkt.send_ts, 0]
            self._partial[key] = entry
            if len(self._partial) > REASSEMBLY_WINDOW:
                self._partial.popitem(last=False)
                self.incomplete_evicted += 1
                tele.count("udp_datagrams_expired")
        frags, count, send_ts, _ = entry
        if pkt.frag_index in frags:
            tele.count("udp_dup_fragments")
            return
        frags.add(pkt.frag_index)
        entry[3] += pkt.payload
        if len(frags) == count:
            del self._partial[key]
            tele.count("udp_delivered_messages")
            tele.count("udp_delivered_bytes", entry[3])
            tele.observe("udp_msg_latency_ns", now - send_ts)


class UdpSender:
    """An open-loop (optionally rate-limited) UDP message source.

    sockperf UDP clients are single-threaded and CPU-bound: each message
    costs a syscall on the client app core plus per-fragment transmit
    work (fragmentation + full stack, plus VxLAN encap on overlay paths)
    on the client kernel core.  With no acknowledgement mechanism the
    client simply sends as fast as its core allows — the client-side
    bottleneck the paper works around by running three clients.
    """

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        flow: FlowKey,
        message_size: int,
        wire,
        app_core: Core,
        kernel_core: Core,
        telemetry: Telemetry,
        encap: bool = False,
        interval_ns: Optional[float] = None,
        max_messages: Optional[int] = None,
    ):
        if message_size <= 0:
            raise ValueError(f"message size must be positive, got {message_size}")
        self.sim = sim
        self.costs = costs
        self.flow = flow
        self.message_size = message_size
        self.wire = wire
        self.app_core = app_core
        self.kernel_core = kernel_core
        self.telemetry = telemetry
        self.encap = encap
        self.interval_ns = interval_ns
        self.max_messages = max_messages
        self.next_msg_id = 0
        self.messages_sent = 0
        self._stopped = False
        self._send_start_ns = 0.0

    def start(self) -> None:
        self._send_next()

    def stop(self) -> None:
        self._stopped = True

    def _send_next(self) -> None:
        if self._stopped:
            return
        if self.max_messages is not None and self.messages_sent >= self.max_messages:
            return
        self._send_start_ns = self.sim.now
        self.app_core.submit_call(
            "send_syscall", self.costs.send_syscall_ns, self._segment
        )

    def _segment(self) -> None:
        frags = fragment_message(
            self.flow, self.next_msg_id, self.message_size, encap=self.encap
        )
        self.next_msg_id += 1
        send_ts = self.sim.now
        per_seg = self.costs.send_per_seg_udp_ns + (
            self.costs.send_encap_per_seg_ns if self.encap else 0.0
        )
        # Fragments are produced (and hit the wire) one by one as the
        # kernel core works through the fragmentation + transmit path,
        # which paces the wire naturally at the client's CPU speed.
        for pkt in frags[:-1]:
            self.kernel_core.submit_call("send_xmit", per_seg, self._emit, pkt, send_ts)
        self.kernel_core.submit_call(
            "send_xmit", per_seg, self._emit_last, frags[-1], send_ts
        )

    def _emit(self, pkt: Packet, send_ts: float) -> None:
        pkt.send_ts = send_ts
        self.wire.send(pkt)

    def _emit_last(self, pkt: Packet, send_ts: float) -> None:
        self._emit(pkt, send_ts)
        self.messages_sent += 1
        self.telemetry.count("udp_messages_sent")
        if self.interval_ns is not None:
            # rate-limited mode: the interval is measured from send start,
            # so the configured message rate is met regardless of how long
            # the fragmentation work took
            elapsed = self.sim.now - self._send_start_ns
            self.sim.sched_in(max(0.0, self.interval_ns - elapsed), self._send_next)
        else:
            self._send_next()
