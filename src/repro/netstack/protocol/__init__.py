"""Transport-layer endpoints: TCP (stateful, ordered) and UDP (datagram)."""

from repro.netstack.protocol.tcp import TcpReceiverStage, TcpDeliverStage, TcpSender
from repro.netstack.protocol.udp import UdpReceiverStage, UdpDeliverStage, UdpSender

__all__ = [
    "TcpReceiverStage",
    "TcpDeliverStage",
    "TcpSender",
    "UdpReceiverStage",
    "UdpDeliverStage",
    "UdpSender",
]
