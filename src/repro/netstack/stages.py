"""Stage base class and the generic kernel stages.

Concrete overlay devices (VxLAN, bridge, veth) are in
:mod:`repro.overlay.devices`; transport endpoints in
:mod:`repro.netstack.protocol`; MFLOW's split/merge nodes in
:mod:`repro.core`.  This module holds the shared machinery plus the
protocol-neutral stages: skb allocation, GRO, and IP receive.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.cpu.core import Core
from repro.netstack.costs import CostModel
from repro.netstack.packet import Skb

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netstack.pipeline import Pipeline, StageNode


class StageContext:
    """Execution context handed to ``Stage.process``."""

    __slots__ = ("pipeline", "node", "core")

    def __init__(self, pipeline: "Pipeline", node: "StageNode", core: Core):
        self.pipeline = pipeline
        self.node = node
        self.core = core

    @property
    def sim(self):
        return self.pipeline.sim

    @property
    def costs(self) -> CostModel:
        return self.pipeline.costs

    @property
    def telemetry(self):
        return self.pipeline.telemetry


class Stage:
    """A named processing stage with a per-skb CPU cost.

    Subclasses override :meth:`cost` and :meth:`process`.  ``process``
    returns the skbs to forward to the next node; a stage that absorbs
    the skb (socket delivery) or forwards asynchronously itself (MFLOW
    merge) returns an empty list.

    ``droppable`` marks stages whose input queue tail-drops under
    overload (everything on the UDP path; TCP segments are protected by
    the sender window instead).
    """

    name: str = "stage"
    droppable: bool = True

    def cost(self, skb: Skb, costs: CostModel) -> float:
        raise NotImplementedError

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class PassthroughStage(Stage):
    """A stage that charges a flat per-skb cost and forwards unchanged."""

    def __init__(self, name: str, cost_attr: str, droppable: bool = True):
        self.name = name
        self._cost_attr = cost_attr
        self.droppable = droppable

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return getattr(costs, self._cost_attr)

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        return [skb]


class SkbAllocStage(Stage):
    """Per-packet skb construction — the heavyweight first-stage function.

    Cost is charged per wire packet (``segs`` is always 1 here: GRO runs
    after allocation), making this the function the paper identifies as
    unsplittable by FALCON and addressable only by MFLOW's IRQ splitting.
    """

    name = "skb_alloc"

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.skb_alloc_ns * skb.segs

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        skb.alloc_ts = ctx.sim.now
        ctx.telemetry.count("skb_allocated", skb.segs)
        return [skb]


class GroStage(Stage):
    """Generic Receive Offload.

    Merges *consecutive, in-order* same-flow TCP skbs into super-skbs, up
    to a cap that differs for plain and VxLAN-encapsulated traffic (encap
    GRO is markedly less effective — this is part of why overlay loses so
    much throughput).  UDP skbs pay the inspection cost but never merge
    (paper footnote 2).

    Held skbs are flushed when the merge cap is reached, when a
    non-mergeable skb arrives, or after a flush timeout — mirroring
    napi_gro_flush at the end of a poll batch.
    """

    def __init__(self, name: str = "gro"):
        self.name = name
        self._held: Dict[object, Skb] = {}
        self._last_touch: Dict[object, float] = {}
        self._timer_armed: Dict[object, bool] = {}

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return costs.gro_per_seg_ns * skb.segs

    def _cap(self, skb: Skb, costs: CostModel) -> int:
        return costs.gro_max_segs_encap if skb.head.encap else costs.gro_max_segs_native

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        ctx.telemetry.count("gro_in", skb.segs)
        if skb.flow.proto != "tcp":
            return [skb]  # GRO is ineffective for UDP: pay cost, no merge
        cap = self._cap(skb, ctx.costs)
        if cap <= 1:
            return [skb]
        # GRO contexts are per-core (per NAPI instance): two splitting
        # cores never share a held skb, so micro-flows cannot merge across
        # branches at batch boundaries.
        key = (ctx.core.id, skb.flow)
        held = self._held.get(key)
        out: List[Skb] = []
        if held is not None:
            if held.can_merge(skb, cap):
                held.merge(skb)
                # the merged skb's packets now live in `held`; the husk is dead
                ctx.pipeline.recycle_skb(skb)
                self._last_touch[key] = ctx.sim.now
                if held.segs >= cap or _ends_message(held):
                    # cap reached, or PSH at a message boundary: flush now
                    out.append(self._take(key))
                return out
            out.append(self._take(key))
        if _ends_message(skb):
            out.append(skb)  # single-segment message (PSH set): no holding
            return out
        self._held[key] = skb
        self._last_touch[key] = ctx.sim.now
        self._arm_flush(key, ctx)
        return out

    def _take(self, key: object) -> Skb:
        self._last_touch.pop(key, None)
        return self._held.pop(key)

    def _arm_flush(self, key: object, ctx: StageContext) -> None:
        """Idle-timeout flush: fires ``gro_flush_timeout_ns`` after the last
        merge into the held skb, re-arming itself while merging continues
        (models napi gro_flush_timeout)."""
        if self._timer_armed.get(key):
            return
        self._timer_armed[key] = True
        # the timer callback is a bound method (not a closure) so a live
        # event heap stays picklable for checkpoints
        ctx.sim.sched_in(
            ctx.costs.gro_flush_timeout_ns,
            self._flush_check, key, ctx.pipeline, ctx.node, ctx.core,
        )

    def _flush_check(self, key: object, pipeline, node, core) -> None:
        sim = pipeline.sim
        timeout = pipeline.costs.gro_flush_timeout_ns
        held = self._held.get(key)
        if held is None:
            self._timer_armed.pop(key, None)
            return
        idle = sim.now - self._last_touch.get(key, sim.now)
        # the 1 ns slack guards against float-precision re-arm loops
        if idle >= timeout - 1.0:
            self._timer_armed.pop(key, None)
            pipeline.inject(node.next, self._take(key), core)
        else:
            sim.sched_in(
                max(timeout - idle, 1.0), self._flush_check, key, pipeline, node, core
            )

    def held_count(self) -> int:
        """Number of flows with an skb currently parked in GRO."""
        return len(self._held)

    def flush_flow(self, flow) -> List[Skb]:
        """Detach every held skb for ``flow`` (freeze-time quiesce).

        The caller decides what to do with them — the migration
        controller injects them downstream so they reach the balancer's
        blackout buffer in arrival order before the container freezes.
        Armed flush timers find their key gone and disarm themselves.
        """
        keys = sorted((k for k in self._held if k[1] == flow), key=lambda k: k[0])
        return [self._take(k) for k in keys]

    def release_flow(self, flow, pipeline) -> int:
        """Recycle every held skb for a retired flow back to the skb pool."""
        flushed = self.flush_flow(flow)
        for skb in flushed:
            pipeline.recycle_skb(skb)
        return len(flushed)


def _ends_message(skb: Skb) -> bool:
    """True when the skb's last segment closes a message (TCP PSH flag —
    GRO flushes on PSH, so merging never spans sockperf messages)."""
    last = skb.packets[-1]
    return last.frag_index == last.frag_count - 1


class IpRcvStage(PassthroughStage):
    """IP receive (routing decision + header validation), per skb."""

    def __init__(self, name: str = "ip_rcv", cost_attr: str = "ip_rcv_ns"):
        super().__init__(name, cost_attr)


class CountingSink(Stage):
    """Terminal stage for tests: counts and stores what reaches it."""

    name = "sink"
    droppable = False

    def __init__(self, name: str = "sink"):
        self.name = name
        self.received: List[Skb] = []

    def cost(self, skb: Skb, costs: CostModel) -> float:
        return 0.0

    def process(self, skb: Skb, ctx: StageContext) -> List[Skb]:
        self.received.append(skb)
        ctx.telemetry.count(f"{self.name}_skbs")
        ctx.telemetry.count(f"{self.name}_bytes", skb.payload_bytes)
        return []
