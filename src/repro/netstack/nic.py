"""Physical NIC model: RX descriptor rings, IRQs, and NAPI driver polls.

Mirrors the mlx5 structure the paper instruments: incoming frames DMA
into a fixed-size ring; the first frame (with interrupts enabled) raises
a hardware IRQ on the queue's affine core; the IRQ masks itself and arms
NAPI; the NAPI poll softirq then drains up to ``napi_budget``
descriptors per invocation, re-polling while the ring is backlogged and
re-enabling the IRQ once drained.

The NIC is multi-queue: with several ``rss_cores`` configured it hashes
flows across per-core RX queues exactly like hardware RSS (inter-flow
parallelism only — every packet of one flow always lands on the same
queue/core, which is the limitation MFLOW attacks).

Each polled descriptor becomes a 1-segment :class:`Skb` injected into
the receive pipeline — whose first stage is ``skb_alloc`` (or MFLOW's
IRQ-split dispatch; the poll loop is a plain pipeline entry because
splitting "relies little on a specific network device driver", §III-A).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.core import Core
from repro.cpu.softirq import Softirq
from repro.metrics.telemetry import Telemetry
from repro.netstack.costs import CostModel
from repro.netstack.packet import Packet
from repro.netstack.pipeline import Pipeline
from repro.sim.engine import Simulator
from repro.sim.queues import RingBuffer


class _RxQueue:
    """One RX descriptor ring + IRQ + NAPI context, affine to one core."""

    def __init__(self, nic: "Nic", index: int, core: Core):
        self.nic = nic
        self.core = core
        self.ring: RingBuffer[Packet] = RingBuffer(
            f"{nic.name}.rxring{index}", nic.costs.rx_ring_size
        )
        self.irq_enabled = True
        self.napi = Softirq(f"{nic.name}.napi{index}", self._poll)
        # hot-path work-item tags, built once instead of per submission
        self._irq_tag = f"irq:{nic.name}"
        self._poll_tag = f"driver_poll:{nic.name}"

    def receive(self, pkt: Packet) -> None:
        obs = self.nic.obs
        if not self.ring.push(pkt):
            self.nic.telemetry.count("nic_ring_drops")
            if obs is not None:
                obs.instant("nic_ring_drop", core=self.core.id, wire_seq=pkt.wire_seq)
            return
        self.nic.telemetry.count("nic_rx_packets")
        if self.irq_enabled:
            self.irq_enabled = False
            self.nic.telemetry.count("nic_irqs")
            faults = self.nic.faults
            delay = faults.irq_fire_delay() if faults is not None else 0.0
            if obs is not None:
                obs.instant(
                    "irq_raise",
                    core=self.core.id,
                    ring_depth=len(self.ring),
                    delay_ns=delay,
                )
            if delay > 0.0:
                # fault injection: the interrupt is held back (moderation
                # gone wrong / a hypervisor absorbing the vector)
                self.nic.sim.sched_in(delay, self._fire_irq)
            else:
                self._fire_irq()

    def _fire_irq(self) -> None:
        # The IRQ top half runs on the affine core and raises NAPI.
        self.core.submit_call(
            self._irq_tag,
            self.nic.costs.irq_cost_ns,
            self.napi.raise_on,
            self.core,
        )

    def _poll(self, core: Core) -> bool:
        batch = self.ring.pop_up_to(self.nic.costs.napi_budget)
        if batch:
            cost = self.nic.costs.driver_poll_per_pkt_ns * len(batch)
            core.submit_call(self._poll_tag, cost, self._emit, batch, core)
        if not self.ring.empty:
            return True  # NAPI re-polls while backlogged
        self.irq_enabled = True
        return False

    def _emit(self, batch: List[Packet], core: Core) -> None:
        # one poll work item drains the whole descriptor batch into the
        # datapath (pooled skbs, per-batch lookups hoisted by the pipeline)
        pipeline = self.nic.pipeline
        pipeline.inject_batch(pipeline.head, batch, core)
        # Frames may have landed while the poll work executed; NAPI keeps
        # polling rather than waiting for a fresh IRQ.
        if not self.ring.empty:
            self.napi.raise_on(core)
        else:
            self.irq_enabled = True


class Nic:
    """The receive-side physical NIC of one host (multi-queue capable)."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        irq_core: Core,
        pipeline: Pipeline,
        telemetry: Telemetry,
        name: str = "pnic",
        rss_cores: Optional[List[Core]] = None,
    ):
        self.sim = sim
        self.costs = costs
        self.pipeline = pipeline
        self.telemetry = telemetry
        self.name = name
        #: optional FaultInjectors (ring shrink / IRQ delay hooks)
        self.faults = None
        #: optional FlightRecorder — None (the default) disables all probes
        self.obs = None
        cores = rss_cores if rss_cores else [irq_core]
        self._queues = [_RxQueue(self, i, core) for i, core in enumerate(cores)]
        self._queue_by_core = {q.core.id: q for q in self._queues}
        self._wire_seq = 0

    @property
    def n_queues(self) -> int:
        return len(self._queues)

    def queue_for(self, pkt: Packet) -> _RxQueue:
        if len(self._queues) == 1:
            return self._queues[0]
        # Align RSS with the steering policy's per-flow placement when it
        # provides one (tuned IRQ affinity); otherwise hash like hardware.
        policy = self.pipeline.policy
        core_idx = policy.nic_queue_core_idx(pkt.flow)
        if core_idx is not None:
            queue = self._queue_by_core.get(core_idx)
            if queue is not None:
                return queue
        from repro.steering.base import stable_flow_hash

        return self._queues[stable_flow_hash(pkt.flow) % len(self._queues)]

    def receive(self, pkt: Packet) -> None:
        """A frame arrives from the wire (DMA into its queue's ring)."""
        pkt.arrival_ts = self.sim.now
        pkt.wire_seq = self._wire_seq
        self._wire_seq += 1
        self.queue_for(pkt).receive(pkt)

    def ring_drops(self) -> int:
        return sum(q.ring.drops for q in self._queues)


class Wire:
    """A full-duplex point-to-point link feeding a NIC.

    Models serialization at line rate plus fixed propagation delay.  The
    100 Gbps default never binds in the paper's experiments (the CPU
    does), but keeping it honest lets the link become the bottleneck in
    ablation configurations.
    """

    def __init__(self, sim: Simulator, costs: CostModel, dst: Nic, faults=None):
        self.sim = sim
        self.costs = costs
        self.dst = dst
        #: optional FaultInjectors (loss/dup/corrupt/reorder/jitter/clamp)
        self.faults = faults
        self._next_free_ns = 0.0
        self.bytes_carried = 0
        #: frames handed to the wire by senders, *before* fault injection —
        #: the conservation watchdog's notion of "sent"
        self.packets_carried = 0

    def sent_packet_count(self) -> int:
        """Picklable accessor for the conservation watchdog (a bound
        method checkpoints; a lambda would not)."""
        return self.packets_carried

    def send(self, pkt: Packet) -> None:
        """Transmit one frame towards the destination NIC."""
        self.packets_carried += 1
        faults = self.faults
        if faults is not None and faults.wire_active and faults.in_window():
            fates = faults.wire_frame_fate(pkt)
            if not fates:
                # lost/corrupted in flight: the sender still serialized the
                # frame, so it occupies the link exactly as a delivery would
                # (surviving frames keep their fault-free schedule)
                self._occupy(pkt)
                return
            base = self._occupy(fates[0][0])
            for frame, extra_ns in fates:
                # duplicates ride the same serialization slot: an in-network
                # copy does not consume sender line time twice
                self.sim.sched_at(base + extra_ns, self.dst.receive, frame)
            return
        self._transmit(pkt, 0.0)

    def _occupy(self, pkt: Packet) -> float:
        """Serialize one frame onto the link; returns its base arrival time."""
        gbps = self.costs.link_gbps
        if self.faults is not None:
            gbps = self.faults.link_gbps(gbps)
        ser_ns = pkt.wire_bytes * 8.0 / gbps
        start = max(self.sim.now, self._next_free_ns)
        self._next_free_ns = start + ser_ns
        self.bytes_carried += pkt.wire_bytes
        return self._next_free_ns + self.costs.wire_delay_ns

    def _transmit(self, pkt: Packet, extra_ns: float) -> None:
        arrival = self._occupy(pkt) + extra_ns
        self.sim.sched_at(arrival, self.dst.receive, pkt)
