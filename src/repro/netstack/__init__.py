"""Simulated Linux kernel network stack (receive path).

Models the Fig. 1 pipeline of the paper: NIC RX ring + IRQ, NAPI driver
poll, skb allocation, GRO, protocol layers, socket queues and the
copy-to-user delivery thread.  The overlay devices (VxLAN, bridge, veth)
live in :mod:`repro.overlay`; which core each stage runs on is decided by
a :mod:`repro.steering` policy through the :class:`~repro.netstack.pipeline.Pipeline`
dispatcher.
"""

from repro.netstack.costs import CostModel, DEFAULT_COSTS
from repro.netstack.packet import Packet, Skb, FlowKey, MTU, MAX_SEGMENT_PAYLOAD
from repro.netstack.pipeline import Pipeline, StageNode
from repro.netstack.stages import Stage

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "Packet",
    "Skb",
    "FlowKey",
    "MTU",
    "MAX_SEGMENT_PAYLOAD",
    "Pipeline",
    "StageNode",
    "Stage",
]
