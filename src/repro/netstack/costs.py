"""Calibrated per-stage CPU costs.

The paper measured wall-clock behaviour of kernel code on Xeon Gold 5218
cores; this reproduction charges each processing stage a fixed CPU cost
per unit of work instead.  The *relative* magnitudes encode the paper's
qualitative findings and the absolute scale is calibrated so the native
single-flow TCP case lands near the paper's 26.6 Gbps:

* ``skb_alloc`` is the heavyweight per-packet function that no prior
  approach (RPS, FALCON) can parallelize for a single flow (§II-B);
* ``vxlan_decap`` is the heavyweight per-skb *device* that motivates
  device-level pipelining (§II-B);
* GRO runs per input packet but its *output* amortizes every downstream
  per-skb cost; it is effective for TCP only (paper footnote 2) and less
  effective across VxLAN encapsulation (``gro_max_segs_encap``);
* every cross-core handoff costs the *destination* core
  ``handoff_cost_ns`` (queueing + cold cache), the locality penalty the
  paper attributes to FALCON's multi-core packet walks;
* the copy-to-user thread costs ``copy_per_byte_ns`` per byte — the
  single-thread data-copy bottleneck that caps MFLOW TCP at ~30 Gbps
  (§V-A, future work).

Calibration back-of-envelope (native TCP, 64 KB messages, GRO merge 16):
per MTU packet ≈ driver 80 + alloc 300 + gro 60 + (ip 150 + tcp 200)/16
≈ 462 ns → 1448 B × 8 / 462 ns ≈ 25 Gbps, which queueing effects in
simulation shift to the paper's neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass
class CostModel:
    """All tunable CPU/link cost constants, in nanoseconds (or per-byte ns)."""

    # --- NIC / driver -----------------------------------------------------
    driver_poll_per_pkt_ns: float = 80.0
    irq_cost_ns: float = 400.0
    napi_budget: int = 64
    rx_ring_size: int = 8192

    # --- per-packet kernel functions ---------------------------------------
    skb_alloc_ns: float = 300.0
    gro_per_seg_ns: float = 60.0
    gro_flush_timeout_ns: float = 3_000.0
    gro_max_segs_native: int = 16
    gro_max_segs_encap: int = 4

    # --- per-skb protocol stages --------------------------------------------
    ip_rcv_ns: float = 150.0
    udp_rcv_outer_ns: float = 90.0          # VxLAN port demux on the outer path
    vxlan_decap_ns: float = 900.0           # the heavyweight overlay device
    bridge_fwd_ns: float = 80.0
    lb_hash_ns: float = 150.0               # consistent-hash ingress balancer
    veth_xmit_ns: float = 60.0
    veth_rx_ns: float = 60.0                # netif_rx + backlog entry on the veth
    ip_rcv_inner_ns: float = 80.0
    tcp_rcv_ns: float = 150.0
    tcp_ooo_penalty_ns: float = 350.0       # per out-of-order segment (OOO queue)
    udp_rcv_ns: float = 120.0
    udp_reassembly_per_frag_ns: float = 40.0

    # --- steering machinery ---------------------------------------------------
    handoff_cost_ns: float = 220.0          # per cross-core skb handoff (dst core)
    steer_dispatch_ns: float = 40.0         # per packet, on the dispatching core
    mflow_split_ns: float = 45.0            # micro-flow id assignment + enqueue
    mflow_merge_per_skb_ns: float = 30.0    # batch-based reassembly, per skb
    mflow_merge_switch_ns: float = 120.0    # switching buffer queues at batch edge
    reorder_per_pkt_ns: float = 300.0       # per-packet reordering (ablation)

    # --- delivery to user space ---------------------------------------------
    copy_per_byte_ns: float = 0.16
    copy_per_skb_ns: float = 180.0
    recv_wakeup_ns: float = 350.0
    socket_rcvbuf_bytes: int = 6 * 1024 * 1024

    # --- sender-side model ------------------------------------------------
    send_syscall_ns: float = 600.0          # per sendmsg() call
    send_per_seg_tcp_ns: float = 160.0      # TSO-assisted segmentation
    send_per_seg_udp_ns: float = 2200.0     # software fragmentation + full stack
    send_encap_per_seg_ns: float = 250.0    # sender-side VxLAN encapsulation
    #: sender-side TCP pacing rate (Linux fq/TSQ pacing); keeps wire bursts
    #: bounded, which is what lets micro-flows arrive nearly in order
    tcp_pacing_gbps: float = 36.0

    # --- link ------------------------------------------------------------
    link_gbps: float = 100.0
    wire_delay_ns: float = 1_000.0

    # --- queue bounds ---------------------------------------------------------
    backlog_limit: int = 3000               # per (stage, core) in-flight skbs

    # --- misc -----------------------------------------------------------------
    core_jitter_sigma: float = 0.06         # lognormal sigma of per-item speed

    extras: Dict[str, float] = field(default_factory=dict)

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """A copy of this model with the given fields replaced."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Sanity-check invariants; raises ValueError on nonsense configs."""
        for name in (
            "driver_poll_per_pkt_ns",
            "skb_alloc_ns",
            "gro_per_seg_ns",
            "ip_rcv_ns",
            "vxlan_decap_ns",
            "tcp_rcv_ns",
            "udp_rcv_ns",
            "copy_per_byte_ns",
            "link_gbps",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.gro_max_segs_native < 1 or self.gro_max_segs_encap < 1:
            raise ValueError("GRO merge caps must be >= 1")
        if self.napi_budget < 1:
            raise ValueError("napi_budget must be >= 1")
        if self.rx_ring_size < self.napi_budget:
            raise ValueError("rx ring must hold at least one NAPI budget")


#: The calibrated default used by all experiments.
DEFAULT_COSTS = CostModel()
