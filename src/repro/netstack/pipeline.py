"""The stage graph and its steering-aware dispatcher.

A receive datapath is a linked list of :class:`StageNode` s (built by
:mod:`repro.overlay.topology`).  The :class:`Pipeline` moves skbs from
node to node: for each hop it asks the steering policy which core should
execute the stage, charges the stage cost (plus a handoff penalty when
the skb crosses cores) as a work item on that core, runs the stage's
logic on completion, and forwards the outputs.

This is where every scheme in the paper plugs in: vanilla/RSS/RPS/FALCON
differ only in the ``core_for`` answer; MFLOW additionally inserts split
and merge nodes into the graph (see :mod:`repro.core`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.cpu.core import Core
from repro.metrics.telemetry import Telemetry
from repro.netstack.costs import CostModel
from repro.netstack.packet import Skb
from repro.netstack.stages import Stage, StageContext
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.steering.base import SteeringPolicy


class StageNode:
    """One position in the datapath: a stage plus its successor."""

    __slots__ = ("stage", "next")

    def __init__(self, stage: Stage, next_node: Optional["StageNode"] = None):
        self.stage = stage
        self.next = next_node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self.next.stage.name if self.next else None
        return f"<StageNode {self.stage.name} -> {nxt}>"


def link_nodes(stages: List[Stage]) -> StageNode:
    """Wire stages into a chain and return the head node."""
    if not stages:
        raise ValueError("datapath needs at least one stage")
    nodes = [StageNode(s) for s in stages]
    for a, b in zip(nodes, nodes[1:]):
        a.next = b
    return nodes[0]


class Pipeline:
    """Dispatches skbs through a stage graph under a steering policy."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        policy: "SteeringPolicy",
        telemetry: Telemetry,
    ):
        self.sim = sim
        self.costs = costs
        self.policy = policy
        self.telemetry = telemetry
        self.head: Optional[StageNode] = None
        #: queue-overflow drops, per stage name
        self.drops: Dict[str, int] = {}
        #: optional FlightRecorder — None (the default) disables all probes
        self.obs = None
        #: optional JourneyTracker for latency decomposition (None = off)
        self.journeys = None

    def set_head(self, head: StageNode) -> None:
        self.head = head

    # ------------------------------------------------------------- dispatch
    def inject(
        self,
        node: Optional[StageNode],
        skb: Skb,
        from_core: Optional[Core],
        front: bool = False,
    ) -> None:
        """Hand ``skb`` to ``node`` (no-op sink when node is None).

        ``front=True`` marks a run-to-completion continuation: when the
        target core is the one the skb is already on, the next stage runs
        immediately (head of the run queue) instead of re-queueing behind
        other packets — matching real softirq semantics, where one packet
        walks all of a core's stages before the next packet is picked up.
        """
        if node is None:
            return
        stage = node.stage
        core = self.policy.core_for(stage.name, skb, from_core)
        cost = stage.cost(skb, self.costs)
        if from_core is not None and core.id != from_core.id:
            # Crossing cores costs both sides: the sender pays the steering
            # dispatch (hash + enqueue + IPI arming), the receiver pays the
            # queue pull + cold-cache penalty.
            cost += self.costs.handoff_cost_ns
            from_core.submit_call("steer_dispatch", self.costs.steer_dispatch_ns, _noop)
            self.telemetry.count("handoffs")
            front = False
        # Overload protection: model bounded per-core backlogs by dropping
        # when the target core's run queue is past the configured limit.
        # Drop-eligible stages only (TCP is window-limited and never drops).
        if stage.droppable and core.queue_depth >= self.costs.backlog_limit:
            self.drops[stage.name] = self.drops.get(stage.name, 0) + 1
            self.telemetry.count("backlog_drops")
            self.telemetry.count(f"drops:{stage.name}")
            if self.obs is not None:
                self.obs.instant(
                    "backlog_drop", core=core.id, stage=stage.name,
                    depth=core.queue_depth,
                )
                if self.journeys is not None:
                    self.journeys.on_drop(skb, stage.name)
            return
        if self.journeys is not None:
            self.journeys.on_enqueue(skb, stage.name, core.id, self.sim.now)
        if front:
            core.submit_front_call(stage.name, cost, self._run_stage, node, skb, core)
        else:
            core.submit_call(stage.name, cost, self._run_stage, node, skb, core)

    def _run_stage(self, node: StageNode, skb: Skb, core: Core) -> None:
        journeys = self.journeys
        if journeys is not None and core.last_span is not None:
            # the work item charging this stage just completed on `core`;
            # its measured span is the hop's (start, end)
            journeys.on_execute(skb, node.stage.name, *core.last_span)
        ctx = StageContext(self, node, core)
        outputs = node.stage.process(skb, ctx)
        if not outputs or node.next is None:
            return
        nxt = node.next
        # Cross-core outputs go to their targets' FIFO queues in order;
        # same-core outputs become run-to-completion continuations, which
        # stack LIFO at the queue head, so they are submitted in reverse
        # to preserve packet order.
        same = []
        for out in outputs:
            target = self.policy.core_for(nxt.stage.name, out, core)
            if target.id == core.id:
                same.append(out)
            else:
                self.inject(nxt, out, core)
        for out in reversed(same):
            self.inject(nxt, out, core, front=True)

    # ------------------------------------------------------------ inspection
    def stage_names(self) -> List[str]:
        names = []
        node = self.head
        while node is not None:
            names.append(node.stage.name)
            node = node.next
        return names

    def total_drops(self) -> int:
        return sum(self.drops.values())

    def find_node(self, stage_name: str) -> StageNode:
        node = self.head
        while node is not None:
            if node.stage.name == stage_name:
                return node
            node = node.next
        raise KeyError(f"no stage named {stage_name!r} in pipeline")


def _noop() -> None:
    return None
