"""The stage graph and its steering-aware dispatcher.

A receive datapath is a linked list of :class:`StageNode` s (built by
:mod:`repro.overlay.topology`).  The :class:`Pipeline` moves skbs from
node to node: for each hop it asks the steering policy which core should
execute the stage, charges the stage cost (plus a handoff penalty when
the skb crosses cores) as a work item on that core, runs the stage's
logic on completion, and forwards the outputs.

This is where every scheme in the paper plugs in: vanilla/RSS/RPS/FALCON
differ only in the ``core_for`` answer; MFLOW additionally inserts split
and merge nodes into the graph (see :mod:`repro.core`).

Hot-path notes: the steering decision is made exactly once per hop (the
forwarding loop passes the chosen core straight into :meth:`_dispatch`);
the :class:`~repro.netstack.stages.StageContext` handed to stages is a
single reused instance (stages must read, not retain, it — every
in-tree stage extracts what it needs); and datapath skbs come from a
free list with poisoned recycling (:meth:`alloc_skb` /
:meth:`recycle_skb`).  Interposing on :meth:`inject` (as
:class:`~repro.sim.trace.PathTracer` does) still sees every hop: the
forwarding loop detects an instance-attribute override and falls back to
routing through it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.cpu.core import Core
from repro.metrics.telemetry import Telemetry
from repro.netstack.costs import CostModel
from repro.netstack.packet import Packet, Skb
from repro.netstack.stages import Stage, StageContext
from repro.sim.engine import SimulationError, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.steering.base import SteeringPolicy


class StageNode:
    """One position in the datapath: a stage plus its successor."""

    __slots__ = ("stage", "next")

    def __init__(self, stage: Stage, next_node: Optional["StageNode"] = None):
        self.stage = stage
        self.next = next_node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self.next.stage.name if self.next else None
        return f"<StageNode {self.stage.name} -> {nxt}>"


def link_nodes(stages: List[Stage]) -> StageNode:
    """Wire stages into a chain and return the head node."""
    if not stages:
        raise ValueError("datapath needs at least one stage")
    nodes = [StageNode(s) for s in stages]
    for a, b in zip(nodes, nodes[1:]):
        a.next = b
    return nodes[0]


class Pipeline:
    """Dispatches skbs through a stage graph under a steering policy."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        policy: "SteeringPolicy",
        telemetry: Telemetry,
    ):
        self.sim = sim
        self.costs = costs
        self.policy = policy
        self.telemetry = telemetry
        self.head: Optional[StageNode] = None
        #: queue-overflow drops, per stage name
        self.drops: Dict[str, int] = {}
        #: optional FlightRecorder — None (the default) disables all probes
        self.obs = None
        #: optional JourneyTracker for latency decomposition (None = off)
        self.journeys = None
        #: optional StageHistograms — exact per-hop latency counts
        #: (see repro.obs.hist; recording never perturbs the timeline)
        self.hist = None
        #: reused execution context handed to every Stage.process call
        self._ctx = StageContext(self, None, None)
        #: recycled datapath skbs (see alloc_skb/recycle_skb)
        self._skb_pool: List[Skb] = []

    def set_head(self, head: StageNode) -> None:
        self.head = head

    # ------------------------------------------------------------- skb pool
    def alloc_skb(self, pkt: Packet) -> Skb:
        """A fresh 1-segment skb for ``pkt``, from the free list if possible."""
        pool = self._skb_pool
        if pool:
            skb = pool.pop()
            skb.packets = [pkt]
            skb.flow = pkt.flow
            skb.microflow_id = None
            skb.branch = None
            skb.flow_serial = None
            skb.alloc_ts = 0.0
            skb.q_ts = 0.0
            skb.trace_id = None
            return skb
        return Skb([pkt])

    def recycle_skb(self, skb: Skb) -> None:
        """Return a dead skb to the free list, poisoned.

        Only call at points where no other component can still hold the
        skb: terminal delivery stages, GRO merge absorption, and backlog
        drops.  ``packets`` is cleared and the generation bumped so any
        stale reference re-entering the datapath raises instead of
        aliasing whatever packet reuses the object.
        """
        skb.packets = None
        skb.gen += 1
        self._skb_pool.append(skb)

    # ------------------------------------------------------------- dispatch
    def inject(
        self,
        node: Optional[StageNode],
        skb: Skb,
        from_core: Optional[Core],
        front: bool = False,
    ) -> None:
        """Hand ``skb`` to ``node`` (no-op sink when node is None).

        ``front=True`` marks a run-to-completion continuation: when the
        target core is the one the skb is already on, the next stage runs
        immediately (head of the run queue) instead of re-queueing behind
        other packets — matching real softirq semantics, where one packet
        walks all of a core's stages before the next packet is picked up.
        """
        if node is None:
            return
        stage = node.stage
        core = self.policy.core_for(stage.name, skb, from_core)
        self._dispatch(node, stage, skb, core, from_core, front)

    def inject_batch(
        self,
        node: Optional[StageNode],
        packets: List[Packet],
        from_core: Optional[Core],
    ) -> None:
        """Wrap each polled descriptor in a pooled skb and dispatch it.

        The batched NAPI entry point: one driver-poll work item calls
        this once for its whole descriptor batch, hoisting the per-batch
        lookups out of the per-packet loop (the steering decision stays
        per-skb — flows in one batch may land on different cores).
        """
        if node is None:
            return
        if "inject" in self.__dict__:
            # an interposer (PathTracer) replaced inject: route through it
            for pkt in packets:
                self.inject(node, self.alloc_skb(pkt), from_core)
            return
        stage = node.stage
        name = stage.name
        core_for = self.policy.core_for
        dispatch = self._dispatch
        for pkt in packets:
            skb = self.alloc_skb(pkt)
            dispatch(node, stage, skb, core_for(name, skb, from_core), from_core, False)

    def _dispatch(
        self,
        node: StageNode,
        stage: Stage,
        skb: Skb,
        core: Core,
        from_core: Optional[Core],
        front: bool,
    ) -> None:
        """Charge ``stage`` for ``skb`` on the already-chosen ``core``."""
        if skb.packets is None:
            raise SimulationError(
                f"recycled skb (generation {skb.gen}) re-entered the datapath "
                f"at stage {stage.name!r}"
            )
        cost = stage.cost(skb, self.costs)
        if from_core is not None and core.id != from_core.id:
            # Crossing cores costs both sides: the sender pays the steering
            # dispatch (hash + enqueue + IPI arming), the receiver pays the
            # queue pull + cold-cache penalty.
            cost += self.costs.handoff_cost_ns
            from_core.submit_call("steer_dispatch", self.costs.steer_dispatch_ns, _noop)
            self.telemetry.count("handoffs")
            front = False
        # Overload protection: model bounded per-core backlogs by dropping
        # when the target core's run queue is past the configured limit.
        # Drop-eligible stages only (TCP is window-limited and never drops).
        if stage.droppable and core.queue_depth >= self.costs.backlog_limit:
            self.drops[stage.name] = self.drops.get(stage.name, 0) + 1
            self.telemetry.count("backlog_drops")
            self.telemetry.count(f"drops:{stage.name}")
            if self.obs is not None:
                self.obs.instant(
                    "backlog_drop", core=core.id, stage=stage.name,
                    depth=core.queue_depth,
                )
                if self.journeys is not None:
                    self.journeys.on_drop(skb, stage.name)
            self.recycle_skb(skb)
            return
        if self.journeys is not None:
            self.journeys.on_enqueue(skb, stage.name, core.id, self.sim.now)
        skb.q_ts = self.sim._now
        if front:
            core.submit_front_call(stage.name, cost, self._run_stage, node, skb, core)
        else:
            core.submit_call(stage.name, cost, self._run_stage, node, skb, core)

    def _run_stage(self, node: StageNode, skb: Skb, core: Core) -> None:
        hist = self.hist
        if hist is not None:
            # the work item charging this stage just completed on `core`;
            # its span scalars are the hop's execution window
            hist.record_stage(
                node.stage.name, core.id, skb.flow.proto,
                core.span_start - skb.q_ts, core.span_end - core.span_start,
            )
        journeys = self.journeys
        if journeys is not None and core.last_span is not None:
            journeys.on_execute(skb, node.stage.name, *core.last_span)
        ctx = self._ctx
        ctx.node = node
        ctx.core = core
        outputs = node.stage.process(skb, ctx)
        if not outputs or node.next is None:
            return
        nxt = node.next
        if "inject" in self.__dict__:
            # interposed inject (PathTracer): preserve the original
            # two-pass routing so the tracer observes every hop
            inject = self.inject
            same = []
            for out in outputs:
                target = self.policy.core_for(nxt.stage.name, out, core)
                if target.id == core.id:
                    same.append(out)
                else:
                    inject(nxt, out, core)
            for out in reversed(same):
                inject(nxt, out, core, front=True)
            return
        nstage = nxt.stage
        nname = nstage.name
        core_for = self.policy.core_for
        if len(outputs) == 1:
            out = outputs[0]
            target = core_for(nname, out, core)
            self._dispatch(nxt, nstage, out, target, core, target.id == core.id)
            return
        # Cross-core outputs go to their targets' FIFO queues in order;
        # same-core outputs become run-to-completion continuations, which
        # stack LIFO at the queue head, so they are submitted in reverse
        # to preserve packet order.
        same = []
        for out in outputs:
            target = core_for(nname, out, core)
            if target.id == core.id:
                same.append(out)
            else:
                self._dispatch(nxt, nstage, out, target, core, False)
        for out in reversed(same):
            self._dispatch(nxt, nstage, out, core, core, True)

    # ------------------------------------------------------------ inspection
    def stage_names(self) -> List[str]:
        names = []
        node = self.head
        while node is not None:
            names.append(node.stage.name)
            node = node.next
        return names

    def total_drops(self) -> int:
        return sum(self.drops.values())

    def find_node(self, stage_name: str) -> StageNode:
        node = self.head
        while node is not None:
            if node.stage.name == stage_name:
                return node
            node = node.next
        raise KeyError(f"no stage named {stage_name!r} in pipeline")


def _noop() -> None:
    return None
