"""Packet and socket-buffer data structures.

A :class:`Packet` is a raw on-the-wire frame: at most MTU bytes, carrying
a slice of one transport message.  The NIC ring holds packets ("requests"
in the paper's driver terminology); ``skb`` allocation wraps them into
:class:`Skb` s, which are what the kernel stages then pass around.  GRO
may merge several consecutive same-flow Skbs into one (``segs`` > 1),
amortizing all downstream per-skb costs — the mechanism behind the
paper's observation that GRO mainly helps TCP.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

#: Ethernet MTU used throughout (matches the paper's testbed).
MTU: int = 1500

#: TCP MSS-ish payload per MTU frame (headers subtracted).
MAX_SEGMENT_PAYLOAD: int = 1448

#: VxLAN encapsulation overhead (outer Ethernet+IP+UDP+VxLAN headers).
VXLAN_OVERHEAD: int = 50


class FlowKey(NamedTuple):
    """5-tuple-equivalent flow identity (collapsed to src/dst/proto/ports)."""

    src: int
    dst: int
    proto: str  # "tcp" | "udp"
    sport: int
    dport: int


class Packet:
    """One wire frame: a slice of a transport message.

    ``wire_seq`` is a global arrival counter stamped by the NIC — the
    reference order against which out-of-order delivery (Fig. 7) is
    measured.  ``msg_id``/``frag_index``/``frag_count`` tie UDP fragments
    back to their datagram for reassembly; for TCP, ``seq`` is the byte
    sequence number of the segment.
    """

    __slots__ = (
        "flow",
        "payload",
        "seq",
        "msg_id",
        "frag_index",
        "frag_count",
        "messages_completed",
        "encap",
        "send_ts",
        "arrival_ts",
        "wire_seq",
    )

    def __init__(
        self,
        flow: FlowKey,
        payload: int,
        seq: int = 0,
        msg_id: int = 0,
        frag_index: int = 0,
        frag_count: int = 1,
        encap: bool = False,
        messages_completed: int = 0,
    ):
        if payload <= 0:
            raise ValueError(f"packet payload must be positive, got {payload}")
        self.flow = flow
        self.payload = payload
        self.seq = seq
        self.msg_id = msg_id
        self.frag_index = frag_index
        self.frag_count = frag_count
        # how many application messages end inside this packet (1 for the
        # last fragment of a normal message; >1 when Nagle/autocork packs
        # several small messages into one MSS segment)
        self.messages_completed = messages_completed
        self.encap = encap
        self.send_ts: float = 0.0
        self.arrival_ts: float = 0.0
        self.wire_seq: int = -1

    @property
    def wire_bytes(self) -> int:
        """Bytes occupying the link: payload + inner headers + optional encap."""
        inner = self.payload + (MTU - MAX_SEGMENT_PAYLOAD)
        return inner + (VXLAN_OVERHEAD if self.encap else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.flow.proto} msg={self.msg_id} seq={self.seq} "
            f"frag={self.frag_index}/{self.frag_count} {self.payload}B>"
        )


class Skb:
    """A socket buffer: one or more merged packets of the same flow.

    MFLOW stores its micro-flow metadata here (``microflow_id`` and
    ``branch``), exactly as the real implementation stashes the ID in the
    skb (paper footnote 5).

    Skbs on the receive datapath are pooled by the pipeline (see
    :meth:`repro.netstack.pipeline.Pipeline.alloc_skb`): recycling
    poisons the object (``packets = None``, ``gen`` bumped) so a stale
    reference held across a recycle fails loudly instead of silently
    aliasing another packet's buffer.
    """

    __slots__ = (
        "packets",
        "flow",
        "microflow_id",
        "branch",
        "flow_serial",
        "alloc_ts",
        "q_ts",
        "trace_id",
        "gen",
    )

    def __init__(self, packets: List[Packet]):
        if not packets:
            raise ValueError("an skb must wrap at least one packet")
        self.packets = packets
        self.flow = packets[0].flow
        self.microflow_id: Optional[int] = None
        self.branch: Optional[int] = None
        self.flow_serial: Optional[int] = None
        self.alloc_ts: float = 0.0
        #: dispatch timestamp of the hop currently charging this skb; the
        #: stage-histogram queue delay is (execution start - q_ts)
        self.q_ts: float = 0.0
        # observability identity: assigned monotonically on first touch by
        # PathTracer / JourneyTracker (never id(skb) — ids are reused)
        self.trace_id: Optional[int] = None
        #: recycle generation; bumped every time the pool reclaims this skb
        self.gen: int = 0

    @property
    def segs(self) -> int:
        """Number of wire packets merged into this skb (1 unless GRO-merged)."""
        return len(self.packets)

    @property
    def payload_bytes(self) -> int:
        return sum(p.payload for p in self.packets)

    @property
    def head(self) -> Packet:
        return self.packets[0]

    @property
    def seq(self) -> int:
        """Transport sequence of the first merged packet."""
        return self.packets[0].seq

    @property
    def end_seq(self) -> int:
        """One past the last byte covered (TCP semantics)."""
        last = self.packets[-1]
        return last.seq + last.payload

    def can_merge(self, other: "Skb", max_segs: int) -> bool:
        """True when ``other`` directly continues this skb's byte stream."""
        if other.flow != self.flow:
            return False
        if self.segs + other.segs > max_segs:
            return False
        return other.seq == self.end_seq

    def merge(self, other: "Skb") -> None:
        """Append ``other``'s packets (caller must have checked can_merge)."""
        self.packets.extend(other.packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Skb {self.flow.proto} segs={self.segs} seq={self.seq}>"


def fragment_message(
    flow: FlowKey,
    msg_id: int,
    size: int,
    start_seq: int = 0,
    encap: bool = False,
) -> List[Packet]:
    """Split one transport message into MTU-sized wire packets.

    TCP segmentation and IP fragmentation produce the same wire shape at
    this level of abstraction: ceil(size / MAX_SEGMENT_PAYLOAD) frames,
    with ``seq`` advancing by payload bytes from ``start_seq``.
    """
    if size <= 0:
        raise ValueError(f"message size must be positive, got {size}")
    frags: List[Packet] = []
    n = (size + MAX_SEGMENT_PAYLOAD - 1) // MAX_SEGMENT_PAYLOAD
    offset = 0
    for i in range(n):
        payload = min(MAX_SEGMENT_PAYLOAD, size - offset)
        frags.append(
            Packet(
                flow,
                payload,
                seq=start_seq + offset,
                msg_id=msg_id,
                frag_index=i,
                frag_count=n,
                encap=encap,
                messages_completed=1 if i == n - 1 else 0,
            )
        )
        offset += payload
    return frags
