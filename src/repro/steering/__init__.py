"""Packet-steering policies.

A policy answers one question per hop — *which core executes this stage
for this skb* — which is exactly the design space the paper surveys:

* ``VanillaPolicy`` — everything on the IRQ core (kernel default);
* ``RssPolicy`` — per-flow hashing across cores (hardware RSS,
  inter-flow parallelism only);
* ``RpsPolicy`` — first softirq on the IRQ core, post-veth processing
  steered to a second core (Linux RPS as measured in the paper);
* ``FalconDevPolicy`` / ``FalconFunPolicy`` — FALCON's device-level and
  function-level softirq pipelining (EuroSys'21 baseline);
* :class:`repro.core.mflow.MflowPolicy` — the paper's contribution,
  packet-level parallelism with split/merge nodes.
"""

from repro.steering.base import SteeringPolicy, stable_flow_hash
from repro.steering.vanilla import VanillaPolicy
from repro.steering.rss import RssPolicy
from repro.steering.rps import RpsPolicy
from repro.steering.falcon import FalconDevPolicy, FalconFunPolicy

__all__ = [
    "SteeringPolicy",
    "stable_flow_hash",
    "VanillaPolicy",
    "RssPolicy",
    "RpsPolicy",
    "FalconDevPolicy",
    "FalconFunPolicy",
]
