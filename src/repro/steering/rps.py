"""Receive Packet Steering (Linux RPS), as measured in the paper."""

from __future__ import annotations

from repro.steering.base import StaticRolePolicy


class RpsPolicy(StaticRolePolicy):
    """RPS on the overlay path.

    The RPS hook fires at ``netif_rx`` on the veth — so the entire first
    softirq (driver poll, skb alloc, GRO, outer stack, VxLAN decap,
    bridge, veth xmit) stays on the IRQ core and only the veth-onward
    bottom half moves to the steered core.  That is why the paper finds
    RPS barely helps: the heavyweight VxLAN work stays put ("core one
    remained the bottleneck", §II-B).
    """

    stage_role = {
        "veth_rx": "steer",
        "ip_inner": "steer",
        "tcp_rcv": "steer",
        "udp_rcv": "steer",
        # native-path names (RPS on native steers post-IP processing)
        "ip_rcv": "first",
    }
    roles = ["first", "steer"]
    role_weights = {"first": 0.85, "steer": 0.15}
