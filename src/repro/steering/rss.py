"""Receive Side Scaling: per-flow hashing onto a core pool."""

from __future__ import annotations

from repro.steering.base import StaticRolePolicy


class RssPolicy(StaticRolePolicy):
    """Hardware RSS: each *flow* is hashed to one core; all of that
    flow's stages stay there.

    Provides inter-flow parallelism only — an elephant flow still lands
    on a single core (the limitation MFLOW removes).  Used as the
    flow-placement substrate in the multi-flow experiments (Fig. 10/12).
    """

    stage_role = {}
    roles = ["first"]

    def __init__(self, cpus, app_core=0, core_pool=None, placement: str = "least-loaded"):
        if core_pool is None:
            raise ValueError("RSS needs a core pool to hash flows over")
        super().__init__(
            cpus, app_core=app_core, core_pool=list(core_pool), placement=placement
        )
