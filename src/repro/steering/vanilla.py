"""The kernel default: all packet processing of a flow on one core."""

from __future__ import annotations

from repro.steering.base import StaticRolePolicy


class VanillaPolicy(StaticRolePolicy):
    """Every kernel stage of a flow runs on the IRQ-affine core.

    This is the paper's "vanilla overlay" (and "native") baseline: all
    three softirqs of the overlay path are squeezed onto a single CPU,
    which the motivation section shows saturating near 100%.
    """

    stage_role = {}  # every stage falls back to the single "first" role
    roles = ["first"]
