"""FALCON (EuroSys'21): softirq pipelining at device / function level.

Reimplemented from the descriptions in the MFLOW paper (§II) as the
state-of-the-art baseline.  Both variants pipeline a *single flow*
across cores at fixed boundaries; neither can split a heavyweight
stage itself — the gap MFLOW fills.
"""

from __future__ import annotations

from repro.steering.base import StaticRolePolicy


class FalconDevPolicy(StaticRolePolicy):
    """Device-level pipelining: pNIC | VxLAN | remaining devices.

    Per the paper's measured configuration: the first softirq (driver,
    skb alloc, GRO, outer protocol stack) stays on core one, VxLAN
    decapsulation moves to core two, and everything from the bridge
    onwards runs on core three.
    """

    stage_role = {
        "skb_alloc": "first",
        "gro": "first",
        "ip_outer": "first",
        "udp_outer": "first",
        "vxlan": "vxlan",
        "bridge": "rest",
        "veth_xmit": "rest",
        "veth_rx": "rest",
        "ip_inner": "rest",
        "tcp_rcv": "rest",
        "udp_rcv": "rest",
        # native path (no devices to pipeline): keep everything on "first"
        "ip_rcv": "first",
    }
    roles = ["first", "vxlan", "rest"]
    role_weights = {"first": 0.40, "vxlan": 0.35, "rest": 0.25}


class FalconFunPolicy(StaticRolePolicy):
    """Function-level pipelining: skb-alloc | GRO+outer+VxLAN | rest.

    The paper's FALCON-fun configuration dispatches GRO *and all
    following softirqs* off core one, leaving core one loaded purely by
    per-packet skb allocation — which FALCON cannot split (that takes
    MFLOW's IRQ-splitting).
    """

    stage_role = {
        "skb_alloc": "first",
        "gro": "mid",
        "ip_outer": "mid",
        "udp_outer": "mid",
        "vxlan": "mid",
        "bridge": "rest",
        "veth_xmit": "rest",
        "veth_rx": "rest",
        "ip_inner": "rest",
        "tcp_rcv": "rest",
        "udp_rcv": "rest",
        "ip_rcv": "mid",
    }
    roles = ["first", "mid", "rest"]
    role_weights = {"first": 0.30, "mid": 0.45, "rest": 0.25}
