"""Steering-policy interface and shared helpers."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cpu.core import Core
from repro.cpu.topology import CpuSet
from repro.netstack.packet import FlowKey, Skb
from repro.netstack.stages import Stage


#: stage names delivered in recvmsg context on the application core
DELIVERY_STAGES = frozenset({"tcp_deliver", "udp_deliver"})


def stable_flow_hash(flow: FlowKey) -> int:
    """A process-stable FNV-1a hash of the flow 5-tuple.

    Python's built-in ``hash`` is salted for strings, which would make
    RSS/RPS core placement vary between runs; experiments must replay
    identically, so we hash explicitly.
    """
    h = 0xCBF29CE484222325
    for part in (flow.src, flow.dst, flow.sport, flow.dport, ord(flow.proto[0])):
        for _ in range(4):
            h ^= part & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            part >>= 8
    return h


class SteeringPolicy:
    """Decides the executing core for each (stage, skb) hop.

    Subclasses implement :meth:`kernel_core_for`; delivery stages are
    routed to the application core uniformly (the kernel binds the
    packet-delivery thread to the app's core — paper footnote 1).

    :meth:`build_pipeline_stages` is the hook MFLOW uses to splice split
    and merge nodes into the datapath; baselines return it unchanged.
    """

    def __init__(self, cpus: CpuSet, app_core=0):
        self.cpus = cpus
        if isinstance(app_core, int):
            self.app_cores: List[int] = [app_core]
        else:
            self.app_cores = list(app_core)
            if not self.app_cores:
                raise ValueError("need at least one application core")
        self._app_assignment: Dict[FlowKey, int] = {}

    @property
    def app_core_idx(self) -> int:
        """First application core (the only one in single-flow setups)."""
        return self.app_cores[0]

    def app_core_idx_for(self, flow: FlowKey) -> int:
        """The application core serving ``flow``.

        First-come round-robin: application threads are placed evenly on
        the dedicated app cores, like the paper's controlled multi-flow
        layout (5 app cores for up to 20 flows).
        """
        if len(self.app_cores) == 1:
            return self.app_cores[0]
        idx = self._app_assignment.get(flow)
        if idx is None:
            idx = self.app_cores[len(self._app_assignment) % len(self.app_cores)]
            self._app_assignment[flow] = idx
        return idx

    # ------------------------------------------------------------- interface
    def core_for(self, stage_name: str, skb: Skb, from_core: Optional[Core]) -> Core:
        if stage_name in DELIVERY_STAGES:
            return self.cpus[self.app_core_idx_for(skb.flow)]
        return self.kernel_core_for(stage_name, skb, from_core)

    def nic_queue_core_idx(self, flow: FlowKey) -> Optional[int]:
        """Core index whose NIC RX queue should serve ``flow``.

        Lets the testbed align hardware RSS with the policy's placement
        (as a tuned real deployment would via ethtool/IRQ affinity).
        None means the NIC falls back to flow hashing.
        """
        return None

    def kernel_core_for(self, stage_name: str, skb: Skb, from_core: Optional[Core]) -> Core:
        raise NotImplementedError

    def build_pipeline_stages(self, stages: List[Stage]) -> List[Stage]:
        """Transform the datapath stage list (identity for baselines)."""
        return stages

    def attach_faults(self, injectors) -> None:
        """Hook for policies that react to fault injection (MFLOW wires
        its blackout hook and health monitor here); baselines ignore it."""

    def retire_flow(self, flow: FlowKey, pipeline=None) -> bool:
        """Release per-flow steering state when a flow ends.

        Returns True when the policy actually held state for ``flow``.
        ``pipeline``, when given, lets stateful policies recycle parked
        skbs back to the skb pool (MFLOW's merge queues); baselines keep
        no per-flow resources worth reclaiming.
        """
        return False

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Policy", "").lower()


class PoolAllocator:
    """Least-loaded assignment of flow roles onto a kernel-core pool.

    Each role carries a weight (its rough share of a flow's CPU demand);
    new flows take the currently least-loaded cores, modelling the
    paper's even, dedicated-core placement for multi-flow experiments.
    """

    def __init__(self, pool: List[int]):
        if not pool:
            raise ValueError("core pool must not be empty")
        self.pool = list(pool)
        self.load: Dict[int, float] = {c: 0.0 for c in self.pool}

    def take(self, weight: float, exclude: Optional[set] = None) -> int:
        """Claim the least-loaded core (preferring ones not in ``exclude``)."""
        candidates = [c for c in self.pool if not exclude or c not in exclude]
        if not candidates:
            candidates = self.pool
        best = min(candidates, key=lambda c: (self.load[c], c))
        self.load[best] += weight
        return best

    def release(self, core: int, weight: float) -> None:
        """Return a claimed weight to the pool (flow retired).

        Without this, long-running multi-flow scenarios accrete phantom
        load from departed flows and least-loaded placement skews.
        """
        if core not in self.load:
            raise KeyError(f"core {core} is not in the pool")
        self.load[core] = max(0.0, self.load[core] - weight)


class StaticRolePolicy(SteeringPolicy):
    """Shared machinery for role-table policies (vanilla/RPS/FALCON).

    A subclass provides ``stage_role`` (stage name → role name) and each
    flow gets a role→core assignment, either fixed (single-flow
    experiments pin cores explicitly) or derived from a hash over a core
    pool (multi-flow experiments).
    """

    #: subclass: stage name -> role; stages absent fall back to "first"
    stage_role: Dict[str, str] = {}
    #: subclass: ordered role names (defines pool layout per flow)
    roles: List[str] = ["first"]
    #: subclass: relative CPU demand of each role (pool balancing weights)
    role_weights: Dict[str, float] = {"first": 1.0}

    def __init__(
        self,
        cpus: CpuSet,
        app_core: int = 0,
        role_cores: Optional[Dict[str, int]] = None,
        core_pool: Optional[List[int]] = None,
        placement: str = "least-loaded",
    ):
        super().__init__(cpus, app_core)
        if (role_cores is None) == (core_pool is None):
            raise ValueError("provide exactly one of role_cores / core_pool")
        if role_cores is not None:
            missing = [r for r in self.roles if r not in role_cores]
            if missing:
                raise ValueError(f"role_cores missing roles: {missing}")
        if placement not in ("least-loaded", "hash", "round-robin"):
            raise ValueError(f"unknown placement {placement!r}")
        self._fixed = role_cores
        self._pool = core_pool
        self._allocator = PoolAllocator(core_pool) if core_pool is not None else None
        self._flow_assignment: Dict[FlowKey, Dict[str, int]] = {}
        self._next_slot = 0
        self.placement = placement

    def _roles_for_flow(self, flow: FlowKey) -> Dict[str, int]:
        if self._fixed is not None:
            return self._fixed
        assigned = self._flow_assignment.get(flow)
        if assigned is None:
            if self.placement == "hash":
                # hash placement: what RSS/IRQ affinity gives by default —
                # flows can collide on cores
                pool = self._pool
                base = stable_flow_hash(flow) % len(pool)
                assigned = {
                    role: pool[(base + i) % len(pool)]
                    for i, role in enumerate(self.roles)
                }
            elif self.placement == "round-robin":
                # evenly-strided placement in flow arrival order: no
                # collisions, but role weights are ignored, so per-core
                # load reflects each scheme's intrinsic stage imbalance
                pool = self._pool
                base = self._next_slot
                self._next_slot = (self._next_slot + len(self.roles)) % len(pool)
                assigned = {
                    role: pool[(base + i) % len(pool)]
                    for i, role in enumerate(self.roles)
                }
            else:
                # least-loaded placement: flows spread evenly, modelling a
                # tuned dedicated-core layout (the paper's controlled
                # multi-flow environment)
                assigned = {}
                taken: set = set()
                for role in self.roles:
                    weight = self.role_weights.get(role, 1.0)
                    core = self._allocator.take(weight, exclude=taken)
                    assigned[role] = core
                    taken.add(core)
            self._flow_assignment[flow] = assigned
        return assigned

    def nic_queue_core_idx(self, flow: FlowKey) -> Optional[int]:
        if self._fixed is not None:
            return None
        return self._roles_for_flow(flow)["first" if "first" in self.roles else self.roles[0]]

    def kernel_core_for(self, stage_name: str, skb: Skb, from_core: Optional[Core]) -> Core:
        role = self.stage_role.get(stage_name, "first")
        idx = self._roles_for_flow(skb.flow)[role]
        return self.cpus[idx]
