"""Command-line interface.

::

    python -m repro throughput --system mflow --proto tcp --size 65536
    python -m repro latency    --system vanilla --proto udp
    python -m repro multiflow  --system falcon --flows 10
    python -m repro memcached  --system mflow --clients 10
    python -m repro compare    --proto tcp --size 65536
    python -m repro ceilings   --proto udp

Every subcommand prints a small table; ``compare`` adds an ASCII bar
chart; ``ceilings`` prints the closed-form bottleneck model's analytic
upper bounds (no simulation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.bottleneck import BottleneckModel
from repro.analysis.charts import bar_chart
from repro.faults.plan import PLANS
from repro.netstack.costs import DEFAULT_COSTS
from repro.sim.units import MSEC
from repro.workloads.memcached import run_memcached
from repro.workloads.multiflow import run_multiflow, utilization_stddev
from repro.workloads.sockperf import ALL_SYSTEMS, SYSTEMS, run_single_flow


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--warmup-ms", type=float, default=2.0)
    p.add_argument("--measure-ms", type=float, default=8.0)


def _add_fault_plan(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault-plan", choices=sorted(PLANS), default=None, metavar="NAME",
        help="named fault-injection plan (see `repro faults list`)",
    )


def _windows(args) -> dict:
    return {
        "warmup_ns": args.warmup_ms * MSEC,
        "measure_ns": args.measure_ms * MSEC,
    }


def cmd_throughput(args) -> int:
    res = run_single_flow(
        args.system, args.proto, args.size, seed=args.seed,
        batch_size=args.batch, n_split_cores=args.split_cores,
        faults=args.fault_plan, **_windows(args),
    )
    if args.json:
        from repro.runner import scenario_result_to_dict

        out = scenario_result_to_dict(res)
        out.update(system=args.system, proto=args.proto, size=args.size)
        print(json.dumps(out, indent=1))
        return 0
    print(f"{args.system} {args.proto} {args.size}B: {res.throughput_gbps:.2f} Gbps")
    print(f"  messages: {res.messages_delivered}   latency: {res.latency}")
    print("  core utilization: " + " ".join(f"{u * 100:.0f}%" for u in res.cpu_utilization))
    if res.drops:
        print(f"  drops: {res.drops}")
    if res.fault_plan:
        print(f"  fault plan: {res.fault_plan}   counters: {res.fault_counters}")
        if res.degradation_events:
            print(f"  degradation events: {len(res.degradation_events)}")
        print(
            f"  conservation: {res.conservation_checks} checks, "
            f"{res.conservation_violations} violations"
        )
    return 0


def cmd_latency(args) -> int:
    from repro.experiments import fig9_latency

    res = fig9_latency.run_cell(args.system, args.proto, args.size, quick=False)
    print(
        f"{args.system} {args.proto} {args.size}B under ~max pre-drop load: "
        f"p50={res.latency.p50_us:.1f}us p99={res.latency.p99_us:.1f}us "
        f"at {res.throughput_gbps:.2f} Gbps"
    )
    return 0


def cmd_multiflow(args) -> int:
    res = run_multiflow(
        args.system, args.flows, args.size, seed=args.seed,
        faults=args.fault_plan, **_windows(args)
    )
    print(
        f"{args.system} x{args.flows} flows ({args.size}B): "
        f"{res.throughput_gbps:.2f} Gbps aggregate, "
        f"kernel util std {utilization_stddev(res):.1f}%"
    )
    return 0


def cmd_memcached(args) -> int:
    res = run_memcached(args.system, args.clients, seed=args.seed)
    print(
        f"{args.system} memcached x{args.clients} clients: "
        f"{res.requests_per_sec / 1e3:.1f} krps, "
        f"avg {res.latency.mean_us:.1f}us, p99 {res.latency.p99_us:.1f}us"
    )
    return 0


def cmd_compare(args) -> int:
    from repro.runner import RunEngine, RunSpec

    params = {"proto": args.proto, "size": args.size}
    if args.fault_plan:
        params["faults"] = PLANS[args.fault_plan].to_dict()
    specs = [
        RunSpec.make(
            "sockperf",
            {"system": system, **params},
            seed=args.seed,
            tags=("compare", system, args.proto, str(args.size)),
            **_windows(args),
        )
        for system in SYSTEMS
    ]
    engine = RunEngine(
        jobs=args.jobs,
        results_dir=args.results_dir,
        use_cache=not args.no_cache,
    )
    records = engine.run("compare", specs)
    if args.json:
        print(json.dumps([r.to_json_dict() for r in records], indent=1))
        return 0
    data = {
        r.params["system"]: r.scenario_result().throughput_gbps for r in records
    }
    print(bar_chart(data, unit=" Gbps", title=f"{args.proto} {args.size}B single flow"))
    return 0


def cmd_faults(args) -> int:
    if args.action == "list":
        width = max(len(name) for name in PLANS)
        for name in sorted(PLANS):
            print(f"{name:<{width}}  {PLANS[name].describe()}")
        return 0
    raise SystemExit(f"unknown faults action {args.action!r}")


def cmd_ceilings(args) -> int:
    overlay = BottleneckModel(DEFAULT_COSTS, proto=args.proto, overlay=True)
    native = BottleneckModel(DEFAULT_COSTS, proto=args.proto, overlay=False)
    rows = {
        "native (1 core)": native.vanilla_ceiling(),
        "vanilla overlay (1 core)": overlay.vanilla_ceiling(),
        "mflow 2 branches": overlay.mflow_branch_ceiling(2),
        "mflow 3 branches": overlay.mflow_branch_ceiling(3),
    }
    if args.proto == "tcp":
        rows["falcon function-level"] = overlay.falcon_fun_ceiling()
    print(bar_chart(rows, unit=" Gbps", title=f"analytic ceilings ({args.proto})"))
    print("\n(closed-form upper bounds from the cost model; simulation adds queueing)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MFLOW reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("throughput", help="single-flow throughput for one system")
    p.add_argument("--system", choices=ALL_SYSTEMS, default="mflow")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--split-cores", type=int, default=2)
    p.add_argument("--json", action="store_true", help="emit the run record as JSON")
    _add_common(p)
    _add_fault_plan(p)
    p.set_defaults(fn=cmd_throughput)

    p = sub.add_parser("latency", help="latency at ~90%% of capacity")
    p.add_argument("--system", choices=ALL_SYSTEMS, default="mflow")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    _add_common(p)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("multiflow", help="aggregate throughput of N flows")
    p.add_argument("--system", choices=["vanilla", "falcon", "mflow"], default="mflow")
    p.add_argument("--flows", type=int, default=10)
    p.add_argument("--size", type=int, default=65536)
    _add_common(p)
    _add_fault_plan(p)
    p.set_defaults(fn=cmd_multiflow)

    p = sub.add_parser("memcached", help="data-caching latency benchmark")
    p.add_argument("--system", choices=["vanilla", "falcon", "mflow"], default="mflow")
    p.add_argument("--clients", type=int, default=10)
    _add_common(p)
    p.set_defaults(fn=cmd_memcached)

    p = sub.add_parser("compare", help="all five systems side by side")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count; 1 = in-process serial)",
    )
    p.add_argument("--json", action="store_true", help="emit run records as JSON")
    p.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    p.add_argument(
        "--results-dir", default="results", help="artifact root (default ./results)"
    )
    _add_common(p)
    _add_fault_plan(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("faults", help="fault-injection plan registry")
    p.add_argument("action", choices=["list"], help="what to do (list plans)")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("ceilings", help="analytic bottleneck upper bounds")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.set_defaults(fn=cmd_ceilings)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
