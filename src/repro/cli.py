"""Command-line interface.

::

    python -m repro throughput --system mflow --proto tcp --size 65536
    python -m repro latency    --system vanilla --proto udp
    python -m repro multiflow  --system falcon --flows 10
    python -m repro memcached  --system mflow --clients 10
    python -m repro compare    --proto tcp --size 65536
    python -m repro trace      --system mflow --perfetto out.json --decompose
    python -m repro migrate    --system mflow --plan default
    python -m repro faults     show loss-burst
    python -m repro ceilings   --proto udp
    python -m repro prof       --system mflow --top 15
    python -m repro bench      --quick --compare benchmarks/baseline.json
    python -m repro fidelity   --quick
    python -m repro resume     results/
    python -m repro fsck       results/ --evict
    python -m repro top        results/fig8 --once --json
    python -m repro metrics    results/fig8 --out sweep.prom
    python -m repro report     results/ --out report.html
    python -m repro diff       results/fig8-main results/fig8-branch

Every subcommand prints a small table; ``compare`` adds an ASCII bar
chart; ``trace`` runs one instrumented scenario and exports flight-
recorder artifacts (Perfetto trace, interval CSV, latency decomposition);
``ceilings`` prints the closed-form bottleneck model's analytic upper
bounds (no simulation).  The last three are the performance observatory
(:mod:`repro.perf`): ``prof`` self-profiles the simulator's hot path,
``bench`` runs the statistical benchmark matrix (and gates regressions
against a baseline), ``fidelity`` scores reproduced headline numbers
against the paper within tolerance bands.  ``resume`` finishes an interrupted
sweep from its ``sweep.json`` + result cache + simulator checkpoints;
``fsck`` audits a results tree, classifying artifacts as ok,
salvageable, or corrupt (:mod:`repro.resilience`).  ``top``, ``metrics``
and ``report`` are the sweep-telemetry readers (:mod:`repro.obs.live`):
a live journal-tailing status view, an OpenMetrics exporter, and a
self-contained HTML/markdown run report.  ``diff`` compares the exact
stage histograms of two runs/sweeps/bench payloads and prints a ranked
regression attribution (:mod:`repro.obs.diff`), exiting 1 when a
significant latency regression survives the CI-overlap test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.bottleneck import BottleneckModel
from repro.analysis.charts import bar_chart
from repro.faults.plan import PLANS
from repro.migration.plan import PLANS as MIGRATION_PLANS
from repro.netstack.costs import DEFAULT_COSTS
from repro.sim.units import MSEC
from repro.workloads.memcached import run_memcached
from repro.workloads.multiflow import run_multiflow, utilization_stddev
from repro.workloads.sockperf import ALL_SYSTEMS, SYSTEMS, run_single_flow


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--warmup-ms", type=float, default=2.0)
    p.add_argument("--measure-ms", type=float, default=8.0)


def _add_fault_plan(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault-plan", choices=sorted(PLANS), default=None, metavar="NAME",
        help="named fault-injection plan (see `repro faults list`)",
    )


def _add_migration_plan(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--migration-plan", choices=sorted(MIGRATION_PLANS), default=None,
        metavar="NAME", dest="migration_plan",
        help="named live-migration plan (see `repro migrate --list`)",
    )


def _windows(args) -> dict:
    return {
        "warmup_ns": args.warmup_ms * MSEC,
        "measure_ns": args.measure_ms * MSEC,
    }


def _format_degradation(events) -> List[str]:
    """Human-readable lines for mflow_degraded / mflow_readmitted events."""
    lines = []
    for e in events:
        t_ms = e.get("t_ns", 0.0) / 1e6
        if e.get("event") == "mflow_degraded":
            lines.append(
                f"  {t_ms:8.3f} ms  DEGRADE  {e.get('flow', '?')}  "
                f"reason={e.get('reason', '?')} "
                f"merge_skips={e.get('merge_skips', 0)} parked={e.get('parked', 0)}"
            )
        else:
            lines.append(f"  {t_ms:8.3f} ms  READMIT  {e.get('flow', '?')}")
    return lines


def _print_fault_report(res, indent: str = "  ") -> None:
    """The run's fault ledger + degradation timeline, human-readably."""
    if res.fault_counters:
        width = max(len(k) for k in res.fault_counters)
        print(f"{indent}fault ledger:")
        for name in sorted(res.fault_counters):
            print(f"{indent}  {name:<{width}}  {res.fault_counters[name]}")
    else:
        print(f"{indent}fault ledger: (no faults fired in the window)")
    if res.degradation_events:
        print(f"{indent}degradation timeline ({len(res.degradation_events)} events):")
        for line in _format_degradation(res.degradation_events):
            print(indent + line)
    print(
        f"{indent}conservation: {res.conservation_checks} checks, "
        f"{res.conservation_violations} violations"
    )


def cmd_throughput(args) -> int:
    res = run_single_flow(
        args.system, args.proto, args.size, seed=args.seed,
        batch_size=args.batch, n_split_cores=args.split_cores,
        faults=args.fault_plan, migration=args.migration_plan,
        **_windows(args),
    )
    if args.json:
        from repro.runner import scenario_result_to_dict

        out = scenario_result_to_dict(res)
        out.update(system=args.system, proto=args.proto, size=args.size)
        print(json.dumps(out, indent=1))
        return 0
    print(f"{args.system} {args.proto} {args.size}B: {res.throughput_gbps:.2f} Gbps")
    print(f"  messages: {res.messages_delivered}   latency: {res.latency}")
    print("  core utilization: " + " ".join(f"{u * 100:.0f}%" for u in res.cpu_utilization))
    if res.drops:
        print(f"  drops: {res.drops}")
    if res.fault_plan:
        print(f"  fault plan: {res.fault_plan}")
        _print_fault_report(res)
    if res.migration:
        print(f"  migration plan: {res.migration['plan']['name']}")
        _print_migration_report(res.migration)
    return 0


def _print_migration_report(mig: dict, indent: str = "  ") -> None:
    """The cutover timeline + robustness ledger, human-readably."""
    timeline = [
        ("drain", mig.get("drain_start_ns")),
        ("freeze", mig.get("freeze_ns")),
        ("restore", mig.get("restore_ns")),
    ]
    marks = "  ".join(
        f"{name}@{t / 1e6:.3f}ms" for name, t in timeline if t is not None
    )
    print(f"{indent}timeline: {marks or '(cutover never fired)'}")
    print(
        f"{indent}blackout: {mig.get('blackout_ns', 0.0) / 1e3:.0f} us "
        f"(snapshot {mig.get('snapshot_bytes', 0)} B, "
        f"digest {mig.get('snapshot_digest', '')[:12] or '-'})"
    )
    print(
        f"{indent}packets: buffered={mig.get('packets_buffered', 0)} "
        f"dropped={mig.get('packets_dropped', 0)} "
        f"replayed={mig.get('packets_replayed', 0)} "
        f"gro_flushed={mig.get('gro_flushed_at_freeze', 0)}"
    )
    print(
        f"{indent}flows: repointed={mig.get('flows_repointed', 0)} "
        f"rerouted={mig.get('flows_rerouted', 0)} "
        f"tcp_retx={mig.get('tcp_retransmit_segments', 0)} "
        f"merge_stalls={mig.get('merge_skips_after_drain', 0)}"
    )
    recovery = mig.get("recovery_ns") or {}
    if recovery:
        worst = max(recovery.values())
        print(
            f"{indent}recovery: {len(recovery)} flows, "
            f"slowest {worst / 1e3:.0f} us after restore"
        )
    drops = mig.get("connection_drops", 0)
    verdict = "ride-through OK" if drops == 0 else "CONNECTIONS LOST"
    print(f"{indent}connection drops: {drops}  ({verdict})")
    if mig.get("unrecovered_flows"):
        print(f"{indent}unrecovered: {', '.join(mig['unrecovered_flows'])}")


def cmd_migrate(args) -> int:
    """One live-migration cutover for one system, with the full ledger."""
    if args.list:
        width = max(len(name) for name in MIGRATION_PLANS)
        for name in sorted(MIGRATION_PLANS):
            print(f"{name:<{width}}  {MIGRATION_PLANS[name].describe()}")
        return 0
    status_line = None
    if sys.stderr.isatty() and not args.json:
        from repro.obs.live.status import StatusLine

        status_line = StatusLine("migrate")
        status_line.update(
            f"{args.system} {args.proto} {args.size}B plan={args.plan}: simulating cutover…"
        )
    res = run_single_flow(
        args.system, args.proto, args.size, seed=args.seed,
        faults=args.fault_plan, migration=args.plan, **_windows(args),
    )
    if status_line is not None:
        status_line.done(
            f"{args.system} {args.proto} {args.size}B plan={args.plan}: "
            f"{res.messages_delivered} msgs simulated"
        )
    if args.json:
        from repro.runner import scenario_result_to_dict

        out = scenario_result_to_dict(res)
        out.update(system=args.system, proto=args.proto, size=args.size)
        print(json.dumps(out, indent=1))
        return 0
    print(
        f"{args.system} {args.proto} {args.size}B under plan {args.plan!r}: "
        f"{res.throughput_gbps:.2f} Gbps, {res.messages_delivered} msgs"
    )
    if res.migration is None:
        print("  (plan is inert: no cutover was scheduled)")
        return 0
    _print_migration_report(res.migration)
    if res.fault_plan:
        print(f"  fault plan: {res.fault_plan}")
        _print_fault_report(res)
    return 1 if res.migration.get("connection_drops", 0) else 0


def cmd_latency(args) -> int:
    from repro.experiments import fig9_latency

    res = fig9_latency.run_cell(args.system, args.proto, args.size, quick=False)
    print(
        f"{args.system} {args.proto} {args.size}B under ~max pre-drop load: "
        f"p50={res.latency.p50_us:.1f}us p99={res.latency.p99_us:.1f}us "
        f"at {res.throughput_gbps:.2f} Gbps"
    )
    return 0


def cmd_multiflow(args) -> int:
    res = run_multiflow(
        args.system, args.flows, args.size, seed=args.seed,
        faults=args.fault_plan, **_windows(args)
    )
    print(
        f"{args.system} x{args.flows} flows ({args.size}B): "
        f"{res.throughput_gbps:.2f} Gbps aggregate, "
        f"kernel util std {utilization_stddev(res):.1f}%"
    )
    return 0


def cmd_memcached(args) -> int:
    res = run_memcached(args.system, args.clients, seed=args.seed)
    print(
        f"{args.system} memcached x{args.clients} clients: "
        f"{res.requests_per_sec / 1e3:.1f} krps, "
        f"avg {res.latency.mean_us:.1f}us, p99 {res.latency.p99_us:.1f}us"
    )
    return 0


def cmd_compare(args) -> int:
    from repro.runner import RunEngine, RunSpec

    params = {"proto": args.proto, "size": args.size}
    if args.fault_plan:
        params["faults"] = PLANS[args.fault_plan].to_dict()
    specs = [
        RunSpec.make(
            "sockperf",
            {"system": system, **params},
            seed=args.seed,
            tags=("compare", system, args.proto, str(args.size)),
            **_windows(args),
        )
        for system in SYSTEMS
    ]
    engine = RunEngine(
        jobs=args.jobs,
        results_dir=args.results_dir,
        use_cache=not args.no_cache,
    )
    records = engine.run("compare", specs)
    if args.json:
        print(json.dumps([r.to_json_dict() for r in records], indent=1))
        return 0
    results = {r.params["system"]: r.scenario_result() for r in records}
    data = {system: res.throughput_gbps for system, res in results.items()}
    print(bar_chart(data, unit=" Gbps", title=f"{args.proto} {args.size}B single flow"))
    if args.fault_plan:
        print(f"\nfault plan: {args.fault_plan}")
        for system, res in results.items():
            print(f"{system}:")
            _print_fault_report(res)
    return 0


def cmd_trace(args) -> int:
    """One instrumented run + flight-recorder artifact export."""
    from repro.obs import decompose, write_trace
    from repro.workloads.sockperf import build_scenario

    sc = build_scenario(
        args.system, args.proto, args.size, seed=args.seed,
        batch_size=args.batch, n_split_cores=args.split_cores,
        n_receiver_cores=args.cores, faults=args.fault_plan,
        obs={
            "enabled": True,
            "interval_ns": args.interval_us * 1e3,
            "capacity": args.capacity,
        },
    )
    res = sc.run(**_windows(args))
    if args.json:
        from repro.runner import scenario_result_to_dict

        out = scenario_result_to_dict(res)
        out.update(system=args.system, proto=args.proto, size=args.size)
        print(json.dumps(out, indent=1))
        return 0
    rec = sc.recorder
    print(
        f"{args.system} {args.proto} {args.size}B: {res.throughput_gbps:.2f} Gbps, "
        f"{res.messages_delivered} msgs"
    )
    drop_note = (
        "complete"
        if rec.events_dropped == 0
        else f"reservoir-sampled: {rec.events_dropped} dropped"
    )
    print(
        f"  flight recorder: {rec.events_seen} events seen, {rec.events_kept} kept "
        f"({drop_note}), {len(rec.cores())} core tracks"
    )
    perfetto_path, timeseries_path = args.perfetto, args.timeseries
    if perfetto_path is None and timeseries_path is None:
        # no explicit destinations: drop both artifacts under --out-dir
        os.makedirs(args.out_dir, exist_ok=True)
        stem = f"{args.system}_{args.proto}_{args.size}"
        perfetto_path = os.path.join(args.out_dir, f"{stem}.trace.json")
        timeseries_path = os.path.join(args.out_dir, f"{stem}.timeseries.csv")
    if perfetto_path:
        _ensure_parent(perfetto_path)
        write_trace(rec, perfetto_path, label=f"{args.system}/{args.proto}")
        print(f"  perfetto trace -> {perfetto_path}  (open at https://ui.perfetto.dev)")
    if timeseries_path:
        _ensure_parent(timeseries_path)
        n = sc.intervals.write_csv(timeseries_path)
        print(
            f"  time series    -> {timeseries_path}  "
            f"({n} intervals x {len(sc.intervals.columns())} columns)"
        )
    dec = decompose(sc.journeys)
    if args.decompose:
        print()
        print(dec.report())
    else:
        print(
            f"  decomposition: {dec.n_journeys} journeys, "
            f"mean e2e {dec.e2e_mean_us:.2f} us (--decompose for the breakdown)"
        )
    if res.fault_plan:
        print(f"  fault plan: {res.fault_plan}")
        _print_fault_report(res)
    return 0


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def cmd_faults(args) -> int:
    if args.action == "list":
        width = max(len(name) for name in PLANS)
        for name in sorted(PLANS):
            print(f"{name:<{width}}  {PLANS[name].describe()}")
        return 0
    if args.action == "show":
        if not args.plan:
            raise SystemExit("faults show requires a plan name (see `repro faults list`)")
        if args.plan not in PLANS:
            raise SystemExit(
                f"unknown fault plan {args.plan!r}; see `repro faults list`"
            )
        res = run_single_flow(
            args.system, args.proto, args.size, seed=args.seed,
            faults=args.plan, **_windows(args),
        )
        print(f"{args.plan}: {PLANS[args.plan].describe()}")
        print(
            f"{args.system} {args.proto} {args.size}B under {args.plan}: "
            f"{res.throughput_gbps:.2f} Gbps, {res.messages_delivered} msgs"
        )
        _print_fault_report(res)
        return 0
    raise SystemExit(f"unknown faults action {args.action!r}")


def cmd_prof(args) -> int:
    """Self-profile one scenario run: where does *wall-clock* time go."""
    from repro.perf.selfprof import SelfProfiler

    # pass a live profiler (resolve_selfprof passes instances through) so
    # the report is not limited to the payload's serialized top-10
    prof = SelfProfiler()
    res = run_single_flow(
        args.system, args.proto, args.size, seed=args.seed,
        batch_size=args.batch, faults=args.fault_plan,
        selfprof=prof, **_windows(args),
    )
    if args.json:
        out = prof.summary(top_k=args.top)
        out.update(system=args.system, proto=args.proto, size=args.size,
                   throughput_gbps=res.throughput_gbps)
        print(json.dumps(out, indent=1))
        return 0
    print(
        f"{args.system} {args.proto} {args.size}B: {res.throughput_gbps:.2f} Gbps "
        f"simulated in {prof.run_wall_s * 1e3:.0f} ms wall\n"
    )
    print(prof.report(top_k=args.top))
    return 0


def cmd_bench(args) -> int:
    """Statistical bench matrix -> BENCH_<sha>.json (+ optional gate)."""
    from repro.perf import bench as perf_bench

    scenarios = perf_bench.default_matrix()
    if args.scenarios:
        wanted = set(args.scenarios)
        unknown = wanted - {s.name for s in scenarios}
        if unknown:
            raise SystemExit(
                f"unknown bench scenarios {sorted(unknown)}; "
                f"choose from {[s.name for s in scenarios]}"
            )
        scenarios = [s for s in scenarios if s.name in wanted]
    windows = perf_bench.QUICK_WINDOWS if args.quick else perf_bench.FULL_WINDOWS
    reps = args.reps if args.reps is not None else (
        perf_bench.QUICK_REPS if args.quick else perf_bench.DEFAULT_REPS
    )

    from repro.obs.live.status import StatusLine

    status_line = StatusLine("bench")

    def progress(name: str, rep: int, total: int) -> None:
        status_line.update(f"{name:<28} rep {rep + 1}/{total}")

    results = perf_bench.run_bench(
        scenarios, reps=reps, seed=args.seed,
        progress=progress if sys.stderr.isatty() else None, **windows,
    )
    status_line.done()
    payload = perf_bench.bench_payload(
        results, reps=reps, seed=args.seed,
        warmup_ns=windows["warmup_ns"], measure_ns=windows["measure_ns"],
    )
    out_path = args.out or perf_bench.bench_filename(payload["git_sha"])
    perf_bench.write_payload(payload, out_path)
    if args.json:
        print(json.dumps(payload, indent=1))
    else:
        print(perf_bench.format_results(results))
        print(f"\nwrote {out_path} (schema v{payload['schema_version']}, "
              f"{reps} reps, sha {payload['git_sha']})")
    if args.compare:
        baseline = perf_bench.load_payload(args.compare)
        report = perf_bench.compare_payloads(
            payload, baseline, max_slowdown=args.slowdown
        )
        print()
        print(report.report())
        if not report.ok:
            _emit_bench_diff(payload, baseline, str(out_path))
        return report.exit_code()
    return 0


def _emit_bench_diff(payload: dict, baseline: dict, out_path: str) -> None:
    """On a failed ``--compare`` gate, attribute the regression by stage.

    Both payloads carry exact per-stage histograms (when run with
    ``hist`` on), so a wall-clock regression can be decomposed into which
    pipeline stages' simulated work shifted — printed inline and written
    next to the BENCH payload for CI artifact upload.  Best-effort: a
    baseline predating histograms just skips the attribution.
    """
    from repro.obs.diff import diff_payloads
    from repro.obs.hist import merge_payloads

    def merged(doc: dict):
        hists = [
            s["hist"] for _, s in sorted(doc.get("scenarios", {}).items())
            if isinstance(s, dict) and s.get("hist")
        ]
        return merge_payloads(hists) if hists else None

    base_hist, cur_hist = merged(baseline), merged(payload)
    if base_hist is None or cur_hist is None:
        print("\n(no stage attribution: one side carries no histograms)")
        return
    diff = diff_payloads(
        base_hist, cur_hist,
        label_a=f"baseline {baseline.get('git_sha', '?')}",
        label_b=f"current {payload.get('git_sha', '?')}",
    )
    print()
    print(diff.report())
    from repro.resilience.atomic import atomic_write_json, atomic_write_text

    atomic_write_text(out_path + ".diff.md", diff.report() + "\n")
    atomic_write_json(out_path + ".diff.json", diff.to_json_dict())
    print(f"\nwrote {out_path}.diff.md / .diff.json (stage attribution)")


def cmd_fidelity(args) -> int:
    """Score reproduced headline numbers against the paper's values."""
    from repro.perf.fidelity import run_fidelity

    board = run_fidelity(quick=args.quick, seed=args.seed)
    if args.json_out:
        board.write_json(args.json_out)
    if args.md_out:
        board.write_markdown(args.md_out)
    if args.json:
        print(json.dumps(board.to_json_dict(), indent=1))
    else:
        print(board.report())
    return board.exit_code()


def cmd_resume(args) -> int:
    """Finish an interrupted sweep from sweep.json + cache + checkpoints."""
    from repro.resilience.resume import ResumeError, resume_results

    progress = None
    if sys.stderr.isatty() and not args.json:
        from repro.obs.live.status import SweepProgress

        progress = SweepProgress("resume")
    try:
        report = resume_results(
            args.results_dir, jobs=args.jobs,
            experiments=args.experiments or None, progress=progress,
        )
    except ResumeError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=1))
    else:
        print(report.report())
    return report.exit_code()


def cmd_fsck(args) -> int:
    """Audit a results tree: ok vs salvageable vs corrupt artifacts."""
    from repro.resilience.fsck import fsck_results

    report = fsck_results(args.results_dir, evict=args.evict)
    if args.json_out:
        from repro.resilience.atomic import atomic_write_json

        atomic_write_json(args.json_out, report.to_json_dict())
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=1))
    else:
        print(report.report())
    return report.exit_code()


def cmd_runner_serve(args) -> int:
    """Serve sweep cells to a pool coordinator (`--executor socket`)."""
    from repro.runner.executors.socketpool import serve

    return serve(
        host=args.host,
        port=args.port,
        slots=args.slots,
        runner_id=args.runner_id,
        once=args.once,
    )


def cmd_top(args) -> int:
    """Live (journal-tailing) sweep status view."""
    from pathlib import Path

    from repro.obs.live.status import StatusError
    from repro.obs.live.top import top

    try:
        return top(
            Path(args.sweep_dir),
            once=args.once,
            as_json=args.json,
            interval_s=args.interval,
        )
    except StatusError as exc:
        raise SystemExit(str(exc))


def cmd_metrics(args) -> int:
    """OpenMetrics (Prometheus textfile) export of sweep telemetry."""
    from pathlib import Path

    from repro.obs.live.openmetrics import render_openmetrics, sweep_families
    from repro.obs.live.status import StatusError, load_statuses

    try:
        statuses = load_statuses(Path(args.sweep_dir))
    except StatusError as exc:
        raise SystemExit(str(exc))
    text = render_openmetrics(sweep_families(statuses))
    if args.out:
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(args.out, text)
        print(
            f"wrote {args.out} ({len(text.splitlines())} lines, "
            f"{len(statuses)} sweep(s), OpenMetrics)"
        )
    else:
        sys.stdout.write(text)
    return 0


def cmd_report(args) -> int:
    """Unified HTML/markdown report over sweeps (+ optional bench/fidelity)."""
    from pathlib import Path

    from repro.obs.live.report import (
        build_html,
        build_markdown,
        load_json_artifact,
        write_report,
    )
    from repro.obs.live.status import StatusError, load_statuses

    try:
        statuses = load_statuses(Path(args.sweep_dir))
    except StatusError as exc:
        raise SystemExit(str(exc))
    try:
        bench = load_json_artifact(Path(args.bench)) if args.bench else None
        fidelity = (
            load_json_artifact(Path(args.fidelity)) if args.fidelity else None
        )
        diff = load_json_artifact(Path(args.diff)) if args.diff else None
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))
    title = args.title or (
        "repro run report — " + ", ".join(s.experiment for s in statuses)
    )
    build = build_markdown if args.markdown else build_html
    text = build(statuses, bench=bench, fidelity=fidelity, diff=diff, title=title)
    if args.out:
        write_report(Path(args.out), text)
        print(f"wrote {args.out} ({len(statuses)} sweep(s))")
    else:
        sys.stdout.write(text)
    return 0


def cmd_diff(args) -> int:
    """Stage-histogram regression attribution between two hist sources."""
    from pathlib import Path

    from repro.obs.diff import diff_sources, load_hist_source

    try:
        source_a = load_hist_source(Path(args.a))
        source_b = load_hist_source(Path(args.b))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(str(exc))
    diff = diff_sources(
        source_a, source_b, tolerance=args.tol, seed=args.seed
    )
    if args.json_out:
        from repro.resilience.atomic import atomic_write_json

        atomic_write_json(args.json_out, diff.to_json_dict())
    if args.md_out:
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(args.md_out, diff.report() + "\n")
    if args.json:
        print(json.dumps(diff.to_json_dict(), indent=1))
    else:
        print(
            f"A: {source_a.label} ({source_a.kind}, "
            f"{source_a.n_merged} hist payload(s) merged)"
        )
        print(
            f"B: {source_b.label} ({source_b.kind}, "
            f"{source_b.n_merged} hist payload(s) merged)\n"
        )
        print(diff.report())
    return diff.exit_code()


def cmd_ceilings(args) -> int:
    overlay = BottleneckModel(DEFAULT_COSTS, proto=args.proto, overlay=True)
    native = BottleneckModel(DEFAULT_COSTS, proto=args.proto, overlay=False)
    rows = {
        "native (1 core)": native.vanilla_ceiling(),
        "vanilla overlay (1 core)": overlay.vanilla_ceiling(),
        "mflow 2 branches": overlay.mflow_branch_ceiling(2),
        "mflow 3 branches": overlay.mflow_branch_ceiling(3),
    }
    if args.proto == "tcp":
        rows["falcon function-level"] = overlay.falcon_fun_ceiling()
    print(bar_chart(rows, unit=" Gbps", title=f"analytic ceilings ({args.proto})"))
    print("\n(closed-form upper bounds from the cost model; simulation adds queueing)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MFLOW reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("throughput", help="single-flow throughput for one system")
    p.add_argument("--system", choices=ALL_SYSTEMS, default="mflow")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--split-cores", type=int, default=2)
    p.add_argument("--json", action="store_true", help="emit the run record as JSON")
    _add_common(p)
    _add_fault_plan(p)
    _add_migration_plan(p)
    p.set_defaults(fn=cmd_throughput)

    p = sub.add_parser(
        "migrate", help="live container migration mid-run (cutover ledger)"
    )
    overlay_systems = [s for s in ALL_SYSTEMS if s != "native"]
    p.add_argument(
        "--system", choices=overlay_systems, default="mflow",
        help="overlay steering system to ride the cutover (native has no "
             "overlay ingress, hence nothing to migrate behind)",
    )
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    p.add_argument(
        "--plan", choices=sorted(MIGRATION_PLANS), default="default",
        metavar="NAME", help="named migration plan (--list to enumerate)",
    )
    p.add_argument(
        "--list", action="store_true", help="list the named migration plans"
    )
    p.add_argument("--json", action="store_true", help="emit the run record as JSON")
    _add_common(p)
    _add_fault_plan(p)
    p.set_defaults(fn=cmd_migrate)

    p = sub.add_parser("latency", help="latency at ~90%% of capacity")
    p.add_argument("--system", choices=ALL_SYSTEMS, default="mflow")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    _add_common(p)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("multiflow", help="aggregate throughput of N flows")
    p.add_argument("--system", choices=["vanilla", "falcon", "mflow"], default="mflow")
    p.add_argument("--flows", type=int, default=10)
    p.add_argument("--size", type=int, default=65536)
    _add_common(p)
    _add_fault_plan(p)
    p.set_defaults(fn=cmd_multiflow)

    p = sub.add_parser("memcached", help="data-caching latency benchmark")
    p.add_argument("--system", choices=["vanilla", "falcon", "mflow"], default="mflow")
    p.add_argument("--clients", type=int, default=10)
    _add_common(p)
    p.set_defaults(fn=cmd_memcached)

    p = sub.add_parser("compare", help="all five systems side by side")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count; 1 = in-process serial)",
    )
    p.add_argument("--json", action="store_true", help="emit run records as JSON")
    p.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    p.add_argument(
        "--results-dir", default="results", help="artifact root (default ./results)"
    )
    _add_common(p)
    _add_fault_plan(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser(
        "trace", help="instrumented run + Perfetto/CSV/decomposition export"
    )
    p.add_argument("--system", choices=ALL_SYSTEMS, default="mflow")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--split-cores", type=int, default=2)
    p.add_argument("--cores", type=int, default=8, help="receiver cores")
    p.add_argument(
        "--interval-us", type=float, default=100.0,
        help="interval-metrics sampling period in microseconds",
    )
    p.add_argument(
        "--capacity", type=int, default=200_000,
        help="flight-recorder event capacity (reservoir-sampled past it)",
    )
    p.add_argument(
        "--perfetto", metavar="PATH", default=None,
        help="write a Chrome trace_events JSON for chrome://tracing / Perfetto",
    )
    p.add_argument(
        "--timeseries", metavar="PATH", default=None,
        help="write per-interval metrics as CSV",
    )
    p.add_argument(
        "--decompose", action="store_true",
        help="print the per-stage queueing/service/hold latency breakdown",
    )
    p.add_argument(
        "--out-dir", default=os.path.join("results", "trace"),
        help="artifact directory when --perfetto/--timeseries are not given",
    )
    p.add_argument("--json", action="store_true", help="emit the run record as JSON")
    _add_common(p)
    _add_fault_plan(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("faults", help="fault-injection plan registry")
    p.add_argument(
        "action", choices=["list", "show"],
        help="list plans, or show one plan's ledger from a small run",
    )
    p.add_argument("plan", nargs="?", default=None, help="plan name (for show)")
    p.add_argument("--system", choices=ALL_SYSTEMS, default="mflow")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    _add_common(p)
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "resume", help="finish an interrupted sweep (cache + checkpoints)"
    )
    p.add_argument("results_dir", help="results root holding <experiment>/sweep.json")
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count; 1 = in-process serial)",
    )
    p.add_argument(
        "--experiments", nargs="*", default=None, metavar="NAME",
        help="subset of experiments to resume (default: every sweep found)",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser(
        "fsck", help="validate results artifacts (schemas, digests, journals)"
    )
    p.add_argument("results_dir", help="results root to audit")
    p.add_argument(
        "--evict", action="store_true",
        help="delete corrupt cache entries and checkpoints (both re-derivable)",
    )
    p.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="also write the report as JSON (atomically)",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.set_defaults(fn=cmd_fsck)

    p = sub.add_parser(
        "top", help="live sweep status from the journal (tail-safe)"
    )
    p.add_argument(
        "sweep_dir",
        help="sweep directory, or a results root holding several sweeps",
    )
    p.add_argument(
        "--once", action="store_true", help="render one snapshot and exit"
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable status document (implies --once)",
    )
    p.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh period in seconds (follow mode; default 1.0)",
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "metrics", help="OpenMetrics (Prometheus textfile) sweep export"
    )
    p.add_argument(
        "sweep_dir",
        help="sweep directory, or a results root holding several sweeps",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the textfile atomically instead of printing it",
    )
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "report", help="self-contained HTML/markdown sweep report"
    )
    p.add_argument(
        "sweep_dir",
        help="sweep directory, or a results root holding several sweeps",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report atomically instead of printing it",
    )
    p.add_argument(
        "--markdown", action="store_true",
        help="emit GitHub-flavored markdown instead of HTML",
    )
    p.add_argument(
        "--bench", metavar="BENCH_JSON", default=None,
        help="embed a BENCH_<sha>.json payload (repro bench --out)",
    )
    p.add_argument(
        "--fidelity", metavar="FIDELITY_JSON", default=None,
        help="embed a fidelity scoreboard JSON (repro fidelity --json-out)",
    )
    p.add_argument(
        "--diff", metavar="DIFF_JSON", default=None,
        help="embed a stage-attribution diff JSON (repro diff --json-out)",
    )
    p.add_argument("--title", default=None, help="report title override")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "diff",
        help="stage-histogram latency attribution between two runs/sweeps",
    )
    p.add_argument(
        "a", help="baseline: run-record JSON, sweep dir, or BENCH_<sha>.json"
    )
    p.add_argument(
        "b", help="candidate: run-record JSON, sweep dir, or BENCH_<sha>.json"
    )
    p.add_argument(
        "--tol", type=float, default=0.02,
        help="relative mean-shift tolerance beyond CI overlap (default 0.02)",
    )
    p.add_argument("--seed", type=int, default=0, help="bootstrap resampling seed")
    p.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="also write the attribution as JSON (atomically)",
    )
    p.add_argument(
        "--md-out", metavar="PATH", default=None,
        help="also write the attribution as markdown (atomically)",
    )
    p.add_argument("--json", action="store_true", help="print JSON instead of the table")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("ceilings", help="analytic bottleneck upper bounds")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.set_defaults(fn=cmd_ceilings)

    p = sub.add_parser(
        "prof", help="self-profile the simulator's hot path for one scenario"
    )
    p.add_argument("--system", choices=ALL_SYSTEMS, default="mflow")
    p.add_argument("--proto", choices=["tcp", "udp"], default="tcp")
    p.add_argument("--size", type=int, default=65536)
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--top", type=int, default=10, help="cost centers to show")
    p.add_argument("--json", action="store_true", help="emit the profile as JSON")
    _add_common(p)
    _add_fault_plan(p)
    p.set_defaults(fn=cmd_prof)

    p = sub.add_parser(
        "bench",
        help="statistical bench matrix -> BENCH_<sha>.json (+ regression gate)",
    )
    p.add_argument(
        "--reps", type=int, default=None,
        help="repetitions per scenario (default 5, or 3 with --quick)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="reduced windows and repetitions (the CI configuration)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="output path (default ./BENCH_<git-sha>.json)",
    )
    p.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="compare against a baseline BENCH json; exit 1 on regression",
    )
    p.add_argument(
        "--slowdown", type=float, default=0.10,
        help="tolerated mean drift beyond CI overlap (default 0.10 = 10%%)",
    )
    p.add_argument(
        "--scenarios", nargs="*", default=None, metavar="NAME",
        help="subset of the matrix (default: all)",
    )
    p.add_argument("--json", action="store_true", help="emit the payload as JSON")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "runner",
        help="runner-pool worker commands (see docs/RUNNER.md, Executors)",
    )
    runner_sub = p.add_subparsers(dest="runner_command", required=True)
    p = runner_sub.add_parser(
        "serve",
        help="serve sweep cells over TCP to a socket-executor coordinator",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = ephemeral, printed on startup)",
    )
    p.add_argument(
        "--slots", type=int, default=1,
        help="concurrent cells this runner executes (default 1)",
    )
    p.add_argument(
        "--runner-id", default=None,
        help="identity reported to the coordinator (default host:port)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="exit after the first coordinator session instead of re-listening",
    )
    p.set_defaults(fn=cmd_runner_serve)

    p = sub.add_parser(
        "fidelity", help="score reproduced headline numbers against the paper"
    )
    p.add_argument(
        "--quick", action="store_true",
        help="reduced replay windows (the CI configuration)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="also write the scoreboard as JSON",
    )
    p.add_argument(
        "--md-out", metavar="PATH", default=None,
        help="also write the scoreboard as markdown",
    )
    p.add_argument("--json", action="store_true", help="print JSON instead of the table")
    p.set_defaults(fn=cmd_fidelity)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
