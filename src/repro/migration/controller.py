"""The live-migration cutover, executed as simulator events.

A :class:`MigrationController` runs one :class:`~repro.migration.plan
.MigrationPlan` against a scenario, in four phases:

1. **drain** (``start_ns``): the ingress balancer stops admitting
   packets toward the source container and buffers them instead, so
   packets already inside the host's stack clear it before the dump.
2. **freeze** (``start_ns + drain_ns``): the source namespace freezes
   (double-freeze raises), any skbs still parked in host-side GRO for
   the container's flows are flushed downstream into the blackout
   buffer, and the container's stack state — TCP sockets with their
   OOO queues, partial UDP reassembly, MFLOW merge state with parked
   skbs — is snapshotted with :func:`repro.resilience.freeze_blob`
   (the PR-5 checkpoint pickler).  The blob's size drives the transfer
   model: ``blackout = min_downtime_ns + bytes*8/transfer_gbps``.
3. **restore**: the blob's digest is verified with
   :func:`repro.resilience.thaw_blob`, the destination namespace comes
   alive, the source retires, the hash ring re-points exactly the
   flows that lived on the source, and the blackout buffer replays
   into the datapath in arrival order.
4. **probe**: after the restore, per-flow recovery is polled every
   ``probe_interval_ns`` — a TCP flow has recovered when ``rcv_nxt``
   advances past its freeze-time value (end-to-end delivery progress),
   a UDP flow when the balancer forwards post-restore traffic for it.

Modelling note — zero-copy restore: the simulation keeps one detailed
receiver host (the paper's testbed shape), so the source and the
destination container share the simulated datapath and the state
"transfer" is physically a no-op.  The blob is still built from the
live state and digest-verified at restore, so the snapshot cost model
and the checkpoint machinery are exercised for real; packets that were
already past the balancer when the freeze hit keep flowing during the
blackout, exactly like bytes that had already crossed into the host
kernel before a real CRIU dump.  The per-stage ``detach_flow`` /
``attach_flow`` surgical APIs exist for teardown paths and tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.faults.health import flow_label
from repro.migration.plan import MigrationPlan
from repro.netstack.packet import FlowKey
from repro.resilience.checkpoint import freeze_blob, thaw_blob


class MigrationController:
    """Executes one scripted container cutover against a scenario."""

    def __init__(self, scenario, plan: MigrationPlan):
        self.scenario = scenario
        self.plan = plan
        self.sim = scenario.sim
        self.telemetry = scenario.telemetry
        self.balancer = scenario.balancer
        self.source_ns = scenario.network.lookup(plan.source)
        self.dest_ns = scenario.network.lookup(plan.dest)
        #: cutover state machine: idle -> draining -> blackout -> restored
        self.phase = "idle"
        self.drain_start_ns: Optional[float] = None
        self.freeze_ns: Optional[float] = None
        self.restore_ns: Optional[float] = None
        self.blackout_ns = 0.0
        self.snapshot_bytes = 0
        self.snapshot_digest = ""
        self.buffered_replayed = 0
        self.flows_repointed = 0
        self.gro_flushed_at_freeze = 0
        self._blob: Optional[bytes] = None
        self._rcv_nxt_at_freeze: Dict[FlowKey, int] = {}
        self._merge_skips_at_drain = 0
        #: flow label -> ns from restore to first observed recovery signal
        self.recovery_ns: Dict[str, float] = {}
        self._pending_recovery: Set[FlowKey] = set()

    # ------------------------------------------------------------------ arm
    def arm(self) -> None:
        """Schedule the cutover (call once, before the run starts)."""
        self.sim.sched_at(self.plan.start_ns, self._begin_drain)

    def _container_flows(self) -> List[FlowKey]:
        """Every flow served by the migrating container (deterministic
        order: the scenario's senders dict preserves creation order)."""
        return list(self.scenario._senders.keys())

    # ---------------------------------------------------------------- phases
    def _begin_drain(self) -> None:
        self.phase = "draining"
        self.drain_start_ns = self.sim.now
        merge = getattr(self.scenario.policy, "merge_stage", None)
        self._merge_skips_at_drain = merge.merge_skips if merge is not None else 0
        self.balancer.begin_drain(self.plan.source)
        self.telemetry.count("migration_drain_started")
        self.sim.sched_in(self.plan.drain_ns, self._freeze)

    def _freeze(self) -> None:
        sc = self.scenario
        self.source_ns.freeze()  # raises SimulationError on double-freeze
        self.phase = "blackout"
        self.freeze_ns = self.sim.now
        flows = self._container_flows()
        # Quiesce host-side GRO for the container's flows: anything still
        # held is pushed downstream now, landing in the balancer's
        # blackout buffer in arrival order.  (The GRO flush timeout is
        # far shorter than any sane drain window, so this is usually a
        # no-op — it exists so pathological plans stay lossless.)
        gro_node = sc.pipeline.find_node("gro")
        for flow in flows:
            for skb in gro_node.stage.flush_flow(flow):
                self.gro_flushed_at_freeze += 1
                sc.pipeline.inject(gro_node.next, skb, None)
        # Snapshot the container's stack state with the checkpoint
        # pickler.  The state objects stay live (see the module
        # docstring); the blob sizes the transfer and pins a digest.
        root: Dict[str, object] = {"container": self.plan.source}
        if sc.tcp_receiver is not None:
            tcp_states = {}
            for flow, st in sc.tcp_receiver.iter_flows():
                tcp_states[flow] = st
                self._rcv_nxt_at_freeze[flow] = st.rcv_nxt
            root["tcp"] = tcp_states
        if sc.udp_deliver is not None:
            root["udp_partial"] = {
                key: entry
                for key, entry in sc.udp_deliver._partial.items()
                if key[0] in flows
            }
        merge = getattr(sc.policy, "merge_stage", None)
        if merge is not None:
            root["merge"] = dict(merge.iter_flows())
        self._blob = freeze_blob(root, meta={"container": self.plan.source})
        self.snapshot_bytes = len(self._blob)
        self.telemetry.count("migration_frozen")
        self.telemetry.count("migration_snapshot_bytes", self.snapshot_bytes)
        self.blackout_ns = (
            self.plan.min_downtime_ns
            + self.snapshot_bytes * 8.0 / self.plan.transfer_gbps
        )
        self.sim.sched_in(self.blackout_ns, self._restore)

    def _restore(self) -> None:
        sc = self.scenario
        # Verify the snapshot survived the "transfer" bit for bit before
        # the destination comes alive — a corrupt blob must fail loudly,
        # not restore garbage.
        header, _root = thaw_blob(self._blob)
        self.snapshot_digest = header["payload_sha256"]
        self._blob = None
        self.dest_ns.restore()
        self.source_ns.retire()
        self.restore_ns = self.sim.now
        self.phase = "restored"
        self.flows_repointed = self.balancer.repoint(self.plan.source, self.plan.dest)
        self.balancer.mark_restore()
        # Replay the blackout buffer in arrival order.  The skbs already
        # paid the lb hash cost when they arrived, so they re-enter the
        # datapath at the balancer's successor.
        lb_node = sc.pipeline.find_node(self.balancer.name)
        replayed = self.balancer.release(self.plan.source)
        for skb in replayed:
            self.balancer.packets_forwarded += 1
            self.balancer.post_restore_forwarded[skb.flow] = (
                self.balancer.post_restore_forwarded.get(skb.flow, 0) + 1
            )
            sc.pipeline.inject(lb_node.next, skb, None)
        self.buffered_replayed = len(replayed)
        self.telemetry.count("migration_restored")
        self.telemetry.count("migration_replayed_skbs", len(replayed))
        self._pending_recovery = set(self._container_flows())
        self.sim.sched_in(self.plan.probe_interval_ns, self._probe_recovery)

    # -------------------------------------------------------------- recovery
    def _flow_recovered(self, flow: FlowKey) -> bool:
        if flow.proto == "tcp":
            st = dict(self.scenario.tcp_receiver.iter_flows()).get(flow)
            return st is not None and st.rcv_nxt > self._rcv_nxt_at_freeze.get(flow, 0)
        return self.balancer.post_restore_forwarded.get(flow, 0) > 0

    def _probe_recovery(self) -> None:
        now = self.sim.now
        for flow in sorted(self._pending_recovery, key=flow_label):
            if self._flow_recovered(flow):
                self._pending_recovery.discard(flow)
                self.recovery_ns[flow_label(flow)] = now - self.restore_ns
                self.telemetry.count("migration_flows_recovered")
        if self._pending_recovery:
            self.sim.sched_in(self.plan.probe_interval_ns, self._probe_recovery)

    # --------------------------------------------------------------- summary
    def connection_drops(self) -> int:
        """Flows that never made delivery progress after the freeze.

        Run-end verdict: a TCP flow whose ``rcv_nxt`` is still at its
        freeze-time value lost its connection across the cutover; a UDP
        flow counts as dropped when the balancer never forwarded a
        single post-restore packet for it.
        """
        if self.freeze_ns is None:
            return 0
        return sum(1 for f in self._container_flows() if not self._flow_recovered(f))

    def summary(self) -> Dict[str, object]:
        """The run record's ``migration`` payload (JSON-safe)."""
        merge = getattr(self.scenario.policy, "merge_stage", None)
        retransmits = sum(
            getattr(s, "retransmit_segments", 0)
            for s in self.scenario._senders.values()
        )
        return {
            "plan": self.plan.to_dict(),
            "phase": self.phase,
            "drain_start_ns": self.drain_start_ns,
            "freeze_ns": self.freeze_ns,
            "restore_ns": self.restore_ns,
            "blackout_ns": self.blackout_ns,
            "snapshot_bytes": self.snapshot_bytes,
            "snapshot_digest": self.snapshot_digest,
            "gro_flushed_at_freeze": self.gro_flushed_at_freeze,
            "packets_buffered": self.balancer.packets_buffered,
            "packets_dropped": self.balancer.packets_dropped,
            "packets_replayed": self.buffered_replayed,
            "flows_repointed": self.flows_repointed,
            "flows_rerouted": self.balancer.flows_rerouted,
            "tcp_retransmit_segments": retransmits,
            "connection_drops": self.connection_drops(),
            "recovery_ns": dict(self.recovery_ns),
            "unrecovered_flows": sorted(
                flow_label(f) for f in self._pending_recovery
            ),
            "merge_skips_after_drain": (
                merge.merge_skips - self._merge_skips_at_drain
                if merge is not None
                else 0
            ),
            "source_state": self.source_ns.state,
            "dest_state": self.dest_ns.state,
        }
