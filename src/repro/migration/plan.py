"""Declarative live-migration plans.

A :class:`MigrationPlan` is a frozen, JSON-canonicalizable script for one
container cutover: when the drain window opens, how long the source is
drained before it is frozen, the fixed freeze/restore overhead, the
snapshot transfer-rate model, the balancer's blackout-buffer capacity
and the hash-ring geometry.  The default-constructed plan is *inert*
(``start_ns == 0``): attaching it to a scenario is bit-identical to
attaching nothing at all — no balancer stage is inserted, no namespaces
are created, no events are scheduled.  This mirrors the fault-plan /
obs / selfprof resolution discipline exactly.

Plans embed into :class:`~repro.runner.spec.RunSpec` params via
:meth:`MigrationPlan.to_dict`, so the runner cache key covers them and
the same seed + plan replays the same cutover under any ``--jobs``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping, Optional, Union


@dataclass(frozen=True)
class MigrationPlan:
    """One scripted container cutover (all-defaults = no migration)."""

    name: str = "custom"

    # ------------------------------------------------------------- timeline
    #: sim time the drain window opens; 0 = inert (no migration at all)
    start_ns: float = 0.0
    #: drain window before the freeze: the balancer stops admitting packets
    #: toward the source so in-flight packets clear the container's stack
    drain_ns: float = 150_000.0
    #: fixed freeze + restore overhead (CRIU dump/restore runtime floor)
    min_downtime_ns: float = 250_000.0
    #: snapshot transfer rate; the blackout extends by snapshot_bytes * 8 /
    #: transfer_gbps on top of ``min_downtime_ns``
    transfer_gbps: float = 20.0

    # ------------------------------------------------------------- balancer
    #: packets the balancer may hold for a draining/frozen backend before
    #: it starts dropping (0 = drop-through blackout, relies on retransmit)
    buffer_packets: int = 4096
    #: virtual nodes per backend on the consistent-hash ring
    vnodes: int = 32

    # ------------------------------------------------------------ endpoints
    #: container being migrated away from
    source: str = "c-src"
    #: container restored on the destination host side
    dest: str = "c-dst"

    # ------------------------------------------------------------- recovery
    #: TCP sender retransmission timeout armed for migration runs (0 =
    #: senders keep the stock no-retransmit model); any active plan should
    #: leave this on so drop-through blackouts and lossy fault plans can
    #: still ride through without a connection drop
    retransmit_ns: float = 500_000.0
    #: post-restore polling period for the recovery-time probe
    probe_interval_ns: float = 50_000.0

    # ------------------------------------------------------------ properties
    @property
    def active(self) -> bool:
        """True when the plan schedules a cutover at all."""
        return self.start_ns > 0.0

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        for f in ("start_ns", "drain_ns", "min_downtime_ns", "retransmit_ns"):
            if getattr(self, f) < 0.0:
                raise ValueError(f"{f} must be >= 0, got {getattr(self, f)}")
        if self.transfer_gbps <= 0.0:
            raise ValueError(f"transfer_gbps must be positive, got {self.transfer_gbps}")
        if self.probe_interval_ns <= 0.0:
            raise ValueError("probe_interval_ns must be positive")
        if self.buffer_packets < 0:
            raise ValueError(f"buffer_packets must be >= 0, got {self.buffer_packets}")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.source == self.dest:
            raise ValueError("source and dest containers must differ")

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict, suitable for embedding in RunSpec params."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MigrationPlan":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown MigrationPlan fields: {unknown}")
        plan = cls(**dict(data))
        plan.validate()
        return plan

    def describe(self) -> str:
        """One-line summary of the non-default knobs (for ``migrate --list``)."""
        parts = []
        for f in fields(self):
            if f.name == "name":
                continue
            v = getattr(self, f.name)
            if v != f.default:
                parts.append(f"{f.name}={v}")
        return " ".join(parts) if parts else "no migration (inert)"


MigrationPlanLike = Union[None, str, Mapping[str, Any], MigrationPlan]


#: named plans selectable via ``--migration-plan`` and ``repro migrate``
PLANS: Dict[str, MigrationPlan] = {
    p.name: p
    for p in (
        # mid-measure cutover inside both quick (1+3 ms) and full (2+8 ms)
        # experiment windows; generous buffer, so nothing is dropped
        MigrationPlan(name="default", start_ns=2_500_000.0),
        # aggressive cutover: barely any drain, fast transfer
        MigrationPlan(
            name="fast-cutover",
            start_ns=2_500_000.0,
            drain_ns=50_000.0,
            min_downtime_ns=100_000.0,
            transfer_gbps=40.0,
        ),
        # no blackout buffering at all: every packet toward the frozen
        # container is dropped and recovery rides on TCP retransmission
        MigrationPlan(
            name="drop-blackout",
            start_ns=2_500_000.0,
            buffer_packets=0,
            retransmit_ns=400_000.0,
        ),
    )
}


def resolve_migration_plan(value: MigrationPlanLike) -> Optional[MigrationPlan]:
    """Normalize a plan reference (name / dict / instance / None).

    Returns ``None`` both for ``None`` and for an inert plan — callers can
    treat "no plan" and "plan that never fires" identically, which is what
    makes the no-migration bit-identity guarantee trivial to audit.
    """
    if value is None:
        return None
    if isinstance(value, MigrationPlan):
        plan = value
    elif isinstance(value, str):
        if value not in PLANS:
            raise KeyError(
                f"unknown migration plan {value!r}; known plans: {sorted(PLANS)}"
            )
        plan = PLANS[value]
    elif isinstance(value, Mapping):
        plan = MigrationPlan.from_dict(value)
    else:
        raise TypeError(f"cannot interpret {type(value).__name__} as a MigrationPlan")
    plan.validate()
    return plan if plan.active else None
