"""Live container migration as a first-class chaos scenario.

``plan`` declares a cutover (drain window, transfer model, balancer
geometry) with the same inert-resolution discipline as fault plans;
``controller`` executes it as simulator events against a scenario.  The
consistent-hash ingress balancer the cutover pivots on lives in
:mod:`repro.overlay.balancer`.
"""

from repro.migration.controller import MigrationController
from repro.migration.plan import (
    PLANS,
    MigrationPlan,
    MigrationPlanLike,
    resolve_migration_plan,
)

__all__ = [
    "MigrationController",
    "MigrationPlan",
    "MigrationPlanLike",
    "PLANS",
    "resolve_migration_plan",
]
