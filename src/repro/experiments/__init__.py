"""Per-figure experiment harnesses.

One module per table/figure in the paper's evaluation (see DESIGN.md's
per-experiment index).  Each module exposes ``run(quick=...)`` returning
a result object with a ``table()`` text rendering, and the package-level
``run_all`` drives everything (``python -m repro.experiments``).
"""

from repro.experiments.base import ExperimentTable, format_table

__all__ = ["ExperimentTable", "format_table"]
