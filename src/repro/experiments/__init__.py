"""Per-figure experiment harnesses.

One module per table/figure in the paper's evaluation (see DESIGN.md's
per-experiment index).  Each module is declarative:

* ``specs(quick=...)`` — the figure's cells as a list of
  :class:`repro.runner.RunSpec` (no execution);
* ``reduce(records)`` — pure reduction of engine records into the
  figure's result object (with a ``table()`` text rendering);
* ``run(quick=..., engine=...)`` — convenience composition of the two,
  serial and artifact-free unless given a configured
  :class:`repro.runner.RunEngine`.

``python -m repro.experiments`` drives everything through one engine
(``--jobs``, ``--json``, ``--no-cache``; see ``runner.py``).
"""

from repro.experiments.base import ExperimentTable, format_table

__all__ = ["ExperimentTable", "format_table"]
