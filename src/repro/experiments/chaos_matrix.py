"""Chaos matrix — graceful degradation under injected faults.

Sweeps a small grid of deterministic fault plans (clean / wire loss /
reorder+jitter / noisy cores) against four steering systems (vanilla,
RSS, RPS, MFLOW) on the 3-client UDP workload, and reports goodput
retention alongside the robustness ledger: merge liveness skips, flow
quarantine events, and in-run conservation-watchdog violations.

The headline claim this table backs: with ≥1% wire loss MFLOW still
completes with zero unaccounted packets — merge liveness escapes release
gapped microflows instead of parking forever, and sick flows degrade to
single-core vanilla steering rather than stalling the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentTable, execute, windows
from repro.faults.plan import FaultPlan
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.workloads.scenario import ScenarioResult

EXPERIMENT = "chaos"
SYSTEMS = ["vanilla", "rss", "rps", "mflow"]
PROTO = "udp"
SIZE = 16384

#: the fault axis — each plan is fully deterministic under the spec seed
FAULTS: Dict[str, FaultPlan] = {
    "clean": FaultPlan(name="clean"),
    "loss": FaultPlan(name="chaos-loss", loss_rate=0.02),
    "jitter": FaultPlan(
        name="chaos-jitter",
        reorder_rate=0.10,
        reorder_delay_ns=50_000.0,
        jitter_ns=2_000.0,
    ),
    "stall": FaultPlan(
        name="chaos-stall",
        stall_cores=(1, 2, 3),
        stall_period_ns=500_000.0,
        stall_duration_ns=150_000.0,
    ),
}


@dataclass
class ChaosResult:
    matrix: ExperimentTable
    raw: Dict[str, Dict[str, ScenarioResult]] = field(default_factory=dict)

    def table(self) -> str:
        return self.matrix.table()

    def result(self, fault: str, system: str) -> ScenarioResult:
        return self.raw[fault][system]

    def retention(self, fault: str, system: str) -> float:
        """Goodput under ``fault`` as a fraction of the clean run."""
        clean = self.raw["clean"][system].throughput_gbps
        if clean <= 0.0:
            return 0.0
        return self.raw[fault][system].throughput_gbps / clean


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    systems: Optional[List[str]] = None,
    faults: Optional[Dict[str, FaultPlan]] = None,
) -> List[RunSpec]:
    systems = systems if systems is not None else SYSTEMS
    faults = faults if faults is not None else FAULTS
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for fault_name, plan in faults.items():
        for system in systems:
            params = {"system": system, "proto": PROTO, "size": SIZE}
            if plan.active:
                # embed the full plan so it participates in the cache key
                # and the derived seed; inert plans stay absent so the
                # clean column is bit-identical to a no-faults run
                params["faults"] = plan.to_dict()
            if overrides:
                params["cost_overrides"] = overrides
            out.append(
                RunSpec.make(
                    "sockperf",
                    params,
                    warmup_ns=win["warmup_ns"],
                    measure_ns=win["measure_ns"],
                    tags=(EXPERIMENT, fault_name, system),
                )
            )
    return out


def reduce(records: List[RunRecord]) -> ChaosResult:
    table = ExperimentTable(
        f"Chaos matrix: {PROTO} {SIZE}B goodput under injected faults",
        ["fault", "system", "gbps", "vs_clean", "merge_skips",
         "degraded", "violations"],
    )
    result = ChaosResult(matrix=table)
    for rec in records:
        fault, system = rec.tags[1], rec.tags[2]
        result.raw.setdefault(fault, {})[system] = rec.scenario_result()
    for fault in result.raw:
        for system in result.raw[fault]:
            res = result.raw[fault][system]
            retention = result.retention(fault, system)
            table.add(
                fault,
                system,
                res.throughput_gbps,
                f"{retention * 100:.0f}%",
                res.counters.get("mflow_merge_skips", 0),
                len(res.degradation_events),
                res.conservation_violations,
            )
    table.notes.append(
        "vs_clean = goodput retention relative to the same system's clean run; "
        "violations counts in-run conservation-watchdog failures (must be 0)"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    systems: Optional[List[str]] = None,
    engine: Optional[RunEngine] = None,
) -> ChaosResult:
    return reduce(execute(EXPERIMENT, specs(quick, costs, systems), engine))


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
