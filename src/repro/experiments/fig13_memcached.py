"""Figure 13 — CloudSuite Data Caching (Memcached) latency.

Average and 99th-percentile request latency for vanilla / FALCON /
MFLOW at 1 and 10 client machines (550 B objects, 4 server threads).
The paper's reading: MFLOW's benefit grows with client pressure —
tail −26% at one client, average/tail −48%/−47% at ten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentTable, execute
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.runner.records import latency_from_dict
from repro.workloads.memcached import MemcachedResult

EXPERIMENT = "fig13"
SYSTEMS = ["vanilla", "falcon", "mflow"]
CLIENT_COUNTS = [1, 10]


@dataclass
class Fig13Result:
    summary: ExperimentTable
    raw: Dict[Tuple[str, int], MemcachedResult] = field(default_factory=dict)

    def table(self) -> str:
        return self.summary.table()

    def latency(self, system: str, n_clients: int) -> MemcachedResult:
        return self.raw[(system, n_clients)]


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    client_counts: Optional[List[int]] = None,
    systems: Optional[List[str]] = None,
) -> List[RunSpec]:
    systems = systems if systems is not None else SYSTEMS
    client_counts = client_counts if client_counts is not None else CLIENT_COUNTS
    measure_ns = 8e6 if quick else 2e7
    warmup_ns = 2e6
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for n in client_counts:
        for system in systems:
            params = {"system": system, "n_clients": n}
            if overrides:
                params["cost_overrides"] = overrides
            out.append(
                RunSpec.make(
                    "memcached",
                    params,
                    warmup_ns=warmup_ns,
                    measure_ns=measure_ns,
                    tags=(EXPERIMENT, system, f"{n}clients"),
                )
            )
    return out


def reduce(records: List[RunRecord]) -> Fig13Result:
    summary = ExperimentTable(
        "Fig 13: Memcached request latency (us), 550 B objects",
        ["clients", "system", "rps", "avg_us", "p99_us"],
    )
    result = Fig13Result(summary=summary)
    for rec in records:
        assert rec.measurements is not None
        m = rec.measurements
        res = MemcachedResult(
            system=m["system"],
            n_clients=int(m["n_clients"]),
            latency=latency_from_dict(m["latency"]),
            requests_per_sec=float(m["requests_per_sec"]),
            cpu_utilization=[float(u) for u in m["cpu_utilization"]],
            events_executed=int(m.get("events_executed", 0)),
        )
        result.raw[(res.system, res.n_clients)] = res
        summary.add(
            res.n_clients, res.system, res.requests_per_sec,
            res.latency.mean_us, res.latency.p99_us,
        )
    summary.notes.append(
        "paper: vs vanilla, MFLOW cuts p99 ~26% at 1 client and avg/p99 ~48%/47% at 10; "
        "vs FALCON, avg -22% / p99 -33%"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    client_counts: Optional[List[int]] = None,
    systems: Optional[List[str]] = None,
    engine: Optional[RunEngine] = None,
) -> Fig13Result:
    return reduce(
        execute(EXPERIMENT, specs(quick, costs, client_counts, systems), engine)
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
