"""Figure 4 — motivation: throughput and CPU utilization of the
state-of-the-art (native / vanilla overlay / RPS / FALCON-dev /
FALCON-fun) for a single flow across message sizes.

Reproduces both panels:
* 4a: single-flow throughput, TCP and UDP, message sizes 16 B – 64 KB;
* 4b: average per-core CPU utilization breakdown at 64 KB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import (
    ExperimentTable,
    breakdown_row,
    execute,
    ordered_unique,
    size_label,
    windows,
)
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.workloads.scenario import ScenarioResult

EXPERIMENT = "fig4"
SYSTEMS = ["native", "vanilla", "rps", "falcon-dev", "falcon-fun"]
MESSAGE_SIZES = [16, 1024, 4096, 16384, 65536]
BREAKDOWN_SIZE = 65536
N_BREAKDOWN_CORES = 4


@dataclass
class Fig4Result:
    throughput: ExperimentTable
    cpu_tables: Dict[str, List[str]] = field(default_factory=dict)
    raw: Dict[str, Dict[str, Dict[int, ScenarioResult]]] = field(default_factory=dict)

    def table(self) -> str:
        out = [self.throughput.table(), "", "CPU utilization breakdown (64 KB):"]
        for key, lines in self.cpu_tables.items():
            out.append(f"-- {key} --")
            out.extend("  " + line for line in lines)
        return "\n".join(out)


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    systems: Optional[List[str]] = None,
    message_sizes: Optional[List[int]] = None,
) -> List[RunSpec]:
    systems = systems if systems is not None else SYSTEMS
    message_sizes = message_sizes if message_sizes is not None else MESSAGE_SIZES
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for proto in ("tcp", "udp"):
        for size in message_sizes:
            for system in systems:
                params = {"system": system, "proto": proto, "size": size}
                if overrides:
                    params["cost_overrides"] = overrides
                out.append(
                    RunSpec.make(
                        "sockperf",
                        params,
                        warmup_ns=win["warmup_ns"],
                        measure_ns=win["measure_ns"],
                        tags=(EXPERIMENT, proto, system, str(size)),
                    )
                )
    return out


def reduce(records: List[RunRecord]) -> Fig4Result:
    systems = ordered_unique(r.params["system"] for r in records)
    table = ExperimentTable(
        "Fig 4a: single-flow throughput (Gbps), state-of-the-art parallelization",
        ["proto", "msg_size"] + systems,
    )
    result = Fig4Result(throughput=table)
    for rec in records:
        proto, system, size = rec.params["proto"], rec.params["system"], rec.params["size"]
        result.raw.setdefault(proto, {}).setdefault(system, {})[size] = (
            rec.scenario_result()
        )
    for proto, by_system in result.raw.items():
        for size in ordered_unique(
            s for cells in by_system.values() for s in cells
        ):
            row: List[object] = [proto, size_label(size)]
            for system in systems:
                row.append(by_system[system][size].throughput_gbps)
            table.add(*row)
    # Fig 4b: CPU breakdown at 64 KB
    for proto, by_system in result.raw.items():
        for system in systems:
            res = by_system.get(system, {}).get(BREAKDOWN_SIZE)
            if res is None:
                continue
            result.cpu_tables[f"{proto}/{system}"] = [
                breakdown_row(i, res.cpu_breakdown[i])
                for i in range(min(N_BREAKDOWN_CORES, len(res.cpu_breakdown)))
            ]
    table.notes.append(
        "paper: overlay drops ~40% (TCP) / ~80% (UDP) vs native at 64 KB; RPS helps "
        "slightly; FALCON-dev helps UDP (~+80%) but not TCP; FALCON-fun helps TCP (~+20% over RPS)"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    systems: Optional[List[str]] = None,
    message_sizes: Optional[List[int]] = None,
    engine: Optional[RunEngine] = None,
) -> Fig4Result:
    return reduce(
        execute(EXPERIMENT, specs(quick, costs, systems, message_sizes), engine)
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
