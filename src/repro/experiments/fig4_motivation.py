"""Figure 4 — motivation: throughput and CPU utilization of the
state-of-the-art (native / vanilla overlay / RPS / FALCON-dev /
FALCON-fun) for a single flow across message sizes.

Reproduces both panels:
* 4a: single-flow throughput, TCP and UDP, message sizes 16 B – 64 KB;
* 4b: average per-core CPU utilization breakdown at 64 KB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentTable, breakdown_row, windows
from repro.netstack.costs import CostModel
from repro.workloads.sockperf import build_scenario
from repro.workloads.scenario import ScenarioResult

SYSTEMS = ["native", "vanilla", "rps", "falcon-dev", "falcon-fun"]
MESSAGE_SIZES = [16, 1024, 4096, 16384, 65536]
BREAKDOWN_SIZE = 65536
N_BREAKDOWN_CORES = 4


@dataclass
class Fig4Result:
    throughput: ExperimentTable
    cpu_tables: Dict[str, List[str]] = field(default_factory=dict)
    raw: Dict[str, Dict[str, Dict[int, ScenarioResult]]] = field(default_factory=dict)

    def table(self) -> str:
        out = [self.throughput.table(), "", "CPU utilization breakdown (64 KB):"]
        for key, lines in self.cpu_tables.items():
            out.append(f"-- {key} --")
            out.extend("  " + line for line in lines)
        return "\n".join(out)


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    systems: Optional[List[str]] = None,
    message_sizes: Optional[List[int]] = None,
) -> Fig4Result:
    systems = systems if systems is not None else SYSTEMS
    message_sizes = message_sizes if message_sizes is not None else MESSAGE_SIZES
    table = ExperimentTable(
        "Fig 4a: single-flow throughput (Gbps), state-of-the-art parallelization",
        ["proto", "msg_size"] + systems,
    )
    result = Fig4Result(throughput=table)
    for proto in ("tcp", "udp"):
        result.raw[proto] = {s: {} for s in systems}
        for size in message_sizes:
            row: List[object] = [proto, _size_label(size)]
            for system in systems:
                sc = build_scenario(system, proto, size, costs=costs)
                res = sc.run(**windows(quick))
                result.raw[proto][system][size] = res
                row.append(res.throughput_gbps)
            table.add(*row)
    # Fig 4b: CPU breakdown at 64 KB
    for proto in ("tcp", "udp"):
        for system in systems:
            res = result.raw[proto][system].get(BREAKDOWN_SIZE)
            if res is None:
                continue
            lines = [
                breakdown_row(i, res.cpu_breakdown[i])
                for i in range(min(N_BREAKDOWN_CORES, len(res.cpu_breakdown)))
            ]
            result.cpu_tables[f"{proto}/{system}"] = lines
    table.notes.append(
        "paper: overlay drops ~40% (TCP) / ~80% (UDP) vs native at 64 KB; RPS helps "
        "slightly; FALCON-dev helps UDP (~+80%) but not TCP; FALCON-fun helps TCP (~+20% over RPS)"
    )
    return result


def _size_label(size: int) -> str:
    if size >= 1024:
        return f"{size // 1024}KB"
    return f"{size}B"


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
