"""Shared experiment plumbing.

Table rendering, CPU-tag grouping, and the glue between the per-figure
modules and :mod:`repro.runner`: every experiment module exposes

* ``specs(quick, ...) -> list[RunSpec]`` — the declarative sweep;
* ``reduce(records) -> <FigureResult>`` — a pure reduction of the
  engine's records into the figure's tables;
* ``run(...)`` — convenience ``reduce(execute(specs(...)))`` keeping the
  historical call signature (serial and artifact-free by default; pass
  ``engine=RunEngine(...)`` to parallelize, cache, and emit artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.runner import RunEngine, RunRecord, RunSpec, run_specs

#: measurement windows (ns) for full and quick runs
FULL_WARMUP_NS = 2_000_000.0
FULL_MEASURE_NS = 8_000_000.0
QUICK_WARMUP_NS = 1_000_000.0
QUICK_MEASURE_NS = 3_000_000.0


def windows(quick: bool) -> Dict[str, float]:
    """Warmup/measure windows keyed for ``Scenario.run(**windows(quick))``."""
    if quick:
        return {"warmup_ns": QUICK_WARMUP_NS, "measure_ns": QUICK_MEASURE_NS}
    return {"warmup_ns": FULL_WARMUP_NS, "measure_ns": FULL_MEASURE_NS}


def execute(
    experiment: str,
    specs: Sequence[RunSpec],
    engine: Optional[RunEngine] = None,
) -> List[RunRecord]:
    """Run a figure's specs (serial in-process unless an engine is given)."""
    return run_specs(experiment, specs, engine=engine)


def size_label(size: int) -> str:
    """The paper's axis labels: ``16B``, ``4KB``, ``64KB`` ..."""
    return f"{size // 1024}KB" if size >= 1024 else f"{size}B"


def ordered_unique(values: Sequence) -> List:
    """Order-preserving dedupe (used to recover sweep axes from records)."""
    return list(dict.fromkeys(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


@dataclass
class ExperimentTable:
    """A titled table of results, the unit every figure module returns."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *row: object) -> None:
        self.rows.append(list(row))

    def table(self) -> str:
        out = [self.title, "=" * len(self.title), format_table(self.headers, self.rows)]
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.table()


#: mapping of CPU work tags to the device groups of Figures 4b / 8b / 12
TAG_GROUPS: Dict[str, str] = {
    "skb_alloc": "skb_alloc",
    "gro": "gro",
    "ip_rcv": "protocol",
    "ip_outer": "vxlan_dev",
    "udp_outer": "vxlan_dev",
    "lb": "steering",
    "vxlan": "vxlan_dev",
    "bridge": "veth_dev",
    "veth_xmit": "veth_dev",
    "veth_rx": "veth_dev",
    "ip_inner": "protocol",
    "tcp_rcv": "protocol",
    "tcp_ooo": "protocol",
    "udp_rcv": "protocol",
    "tcp_deliver": "copy",
    "udp_deliver": "copy",
    "mflow_split": "steering",
    "mflow_merge": "steering",
    "mflow_merge_switch": "steering",
    "steer_dispatch": "steering",
    "pkt_reorder": "steering",
    "pkt_reorder_ooo": "steering",
    "send_syscall": "sender",
    "send_xmit": "sender",
    "fault_stall": "faults",
}


def group_breakdown(breakdown: Dict[str, float]) -> Dict[str, float]:
    """Collapse a per-tag utilization dict into the figure's device groups."""
    grouped: Dict[str, float] = {}
    for tag, frac in breakdown.items():
        base = tag.split(":", 1)[0]
        if base in ("irq", "driver_poll", "softirq", "ipi"):
            group = "driver"
        else:
            group = TAG_GROUPS.get(base, base)
        grouped[group] = grouped.get(group, 0.0) + frac
    return grouped


def breakdown_row(core_idx: int, breakdown: Dict[str, float]) -> str:
    """One printable per-core utilization line, sorted by share."""
    grouped = sorted(group_breakdown(breakdown).items(), key=lambda kv: -kv[1])
    parts = [f"{g}={v * 100:.0f}%" for g, v in grouped if v >= 0.005]
    total = sum(v for _, v in grouped)
    return f"core{core_idx}: {total * 100:5.1f}% [{' '.join(parts)}]"
