"""Run every paper experiment and print its table.

Usage::

    python -m repro.experiments             # all figures, quick windows
    python -m repro.experiments --full      # full measurement windows
    python -m repro.experiments fig8 fig13  # a subset
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    fig4_motivation,
    fig7_batch_size,
    fig8_throughput,
    fig9_latency,
    fig10_multiflow,
    fig11_webserving,
    fig12_cpu_balance,
    fig13_memcached,
    extensions,
    sensitivity,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig4": fig4_motivation.run,
    "fig7": fig7_batch_size.run,
    "fig8": fig8_throughput.run,
    "fig9": fig9_latency.run,
    "fig10": fig10_multiflow.run,
    "fig11": fig11_webserving.run,
    "fig12": fig12_cpu_balance.run,
    "fig13": fig13_memcached.run,
    "sensitivity": sensitivity.run,
    "extensions": extensions.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="MFLOW reproduction experiments")
    parser.add_argument("figures", nargs="*", default=[], help="subset, e.g. fig8 fig13")
    parser.add_argument("--full", action="store_true", help="full measurement windows")
    args = parser.parse_args(argv)

    names = args.figures or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown figures {unknown}; choose from {list(EXPERIMENTS)}")

    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](quick=not args.full)
        elapsed = time.time() - started
        print(result.table())
        print(f"[{name} done in {elapsed:.1f}s]\n", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
