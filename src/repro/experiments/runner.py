"""Run every paper experiment and print its table.

Usage::

    python -m repro.experiments                 # all figures, quick windows
    python -m repro.experiments --full          # full measurement windows
    python -m repro.experiments fig8 fig13      # a subset
    python -m repro.experiments fig8 --jobs 4   # parallel cells (identical output)
    python -m repro.experiments fig8 --json     # machine-readable records

Each figure's cells run on a :class:`repro.runner.RunEngine`: parallel
across ``--jobs`` worker processes, retried on crash or timeout, cached
under ``<results-dir>/.cache/`` and archived as JSON records under
``<results-dir>/<figure>/``.  ``--jobs 1`` and ``--jobs N`` produce
bit-identical tables (seeds derive from spec content, not scheduling).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

from repro.obs.live.status import SweepProgress

from repro.experiments import (
    chaos_matrix,
    migration_matrix,
    fig4_motivation,
    fig7_batch_size,
    fig8_throughput,
    fig9_latency,
    fig10_multiflow,
    fig11_webserving,
    fig12_cpu_balance,
    fig13_memcached,
    extensions,
    sensitivity,
)
from repro.runner import DEFAULT_TIMEOUT_S, RunEngine, RunFailure
from repro.runner.executors import EXECUTOR_NAMES, make_executor

MODULES = {
    "fig4": fig4_motivation,
    "fig7": fig7_batch_size,
    "fig8": fig8_throughput,
    "fig9": fig9_latency,
    "fig10": fig10_multiflow,
    "fig11": fig11_webserving,
    "fig12": fig12_cpu_balance,
    "fig13": fig13_memcached,
    "sensitivity": sensitivity,
    "extensions": extensions,
    "chaos": chaos_matrix,
    "migration": migration_matrix,
}

#: name -> one-call library entry point (kept for tests and interactive use)
EXPERIMENTS: Dict[str, Callable] = {name: mod.run for name, mod in MODULES.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="MFLOW reproduction experiments")
    parser.add_argument("figures", nargs="*", default=[], help="subset, e.g. fig8 fig13")
    parser.add_argument("--full", action="store_true", help="full measurement windows")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes per figure (default: CPU count; 1 = in-process serial)",
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed (default 0)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print run records as JSON instead of tables",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="ignore and do not update the result cache"
    )
    parser.add_argument(
        "--results-dir", default="results",
        help="artifact root (default ./results; records land in <root>/<figure>/)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=DEFAULT_TIMEOUT_S,
        help=f"per-cell wall-time cap before the worker is killed (default {DEFAULT_TIMEOUT_S:.0f})",
    )
    parser.add_argument(
        "--max-retries", type=int, default=1,
        help="retries per cell after a crash/timeout/exception, with "
             "exponential backoff (default 1); exhausted cells are quarantined",
    )
    parser.add_argument(
        "--checkpoint-s", type=float, default=None, metavar="SECONDS",
        help="snapshot each simulator every SECONDS of wall time so killed "
             "cells resume mid-run (`repro resume`); default: off",
    )
    parser.add_argument(
        "--executor", choices=list(EXECUTOR_NAMES), default="auto",
        help="execution backend: auto (local for --jobs 1, process pool "
             "otherwise, socket when --runners is given), or force one",
    )
    parser.add_argument(
        "--runners", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="runner-pool addresses for the socket executor "
             "(start each with `repro runner serve`)",
    )
    parser.add_argument(
        "--heartbeat-s", type=float, default=None, metavar="SECONDS",
        help="socket-pool heartbeat interval; a runner silent for "
             "3 heartbeats is declared lost and its cells re-dispatched",
    )
    args = parser.parse_args(argv)

    names = args.figures or list(MODULES)
    unknown = [n for n in names if n not in MODULES]
    if unknown:
        parser.error(f"unknown figures {unknown}; choose from {list(MODULES)}")

    jobs = max(1, args.jobs if args.jobs is not None else (os.cpu_count() or 1))
    socket_kwargs = {}
    if args.heartbeat_s is not None:
        socket_kwargs["heartbeat_s"] = args.heartbeat_s
    try:
        executor = make_executor(
            args.executor,
            jobs=jobs,
            runners=args.runners.split(",") if args.runners else None,
            **socket_kwargs,
        )
    except ValueError as exc:
        parser.error(str(exc))
    json_out: Dict[str, Dict] = {}
    status = 0
    for name in names:
        module = MODULES[name]
        specs = module.specs(quick=not args.full)
        engine = RunEngine(
            jobs=jobs,
            global_seed=args.seed,
            timeout_s=args.timeout_s,
            retries=args.max_retries,
            results_dir=args.results_dir,
            use_cache=not args.no_cache,
            progress=SweepProgress(name) if sys.stderr.isatty() else None,
            checkpoint_wall_s=args.checkpoint_s,
            executor=executor,
        )
        started = time.time()
        try:
            records = engine.run(name, specs)
        except RunFailure as failure:
            print(f"[{name} FAILED]\n{failure}", file=sys.stderr, flush=True)
            status = 1
            continue
        elapsed = time.time() - started
        live = [r for r in records if not r.cached and r.wall_time_s > 0]
        sim_wall_s = sum(r.wall_time_s for r in live)
        sim_events = sum(r.events_executed for r in live)
        if args.as_json:
            json_out[name] = {
                "jobs": jobs,
                "global_seed": args.seed,
                "wall_time_s": round(elapsed, 3),
                "sim_wall_s": round(sim_wall_s, 3),
                "events_executed": sim_events,
                "events_per_sec": round(sim_events / sim_wall_s, 1)
                if sim_wall_s > 0 else 0.0,
                "records": [r.to_json_dict() for r in records],
            }
        else:
            result = module.reduce(records)
            print(result.table())
            cached = sum(1 for r in records if r.cached)
            rate = f", {sim_events / sim_wall_s / 1e3:.0f}k ev/s" if sim_wall_s else ""
            print(
                f"[{name} done in {elapsed:.1f}s: {len(records)} cells, "
                f"{cached} cached, jobs={jobs}{rate}]\n",
                flush=True,
            )
    if args.as_json:
        print(json.dumps(json_out, indent=1))
    return status


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
