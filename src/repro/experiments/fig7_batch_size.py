"""Figure 7 — out-of-order delivery vs micro-flow batch size.

Runs MFLOW (full-path scaling, TCP, 64 KB messages) while sweeping the
micro-flow batch size and reports how many packets reach the merge point
out of wire order — the quantity MFLOW's reassembler must fix.  The
paper's observation: the count falls steeply with batch size and becomes
negligible by batch ≈ 256 (which is why 256 is the default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentTable, windows
from repro.netstack.costs import CostModel
from repro.workloads.scenario import ScenarioResult
from repro.workloads.sockperf import build_scenario

BATCH_SIZES = [1, 4, 16, 64, 128, 256, 512, 1024]
MESSAGE_SIZE = 65536


@dataclass
class Fig7Result:
    summary: ExperimentTable
    ooo_packets: Dict[int, int] = field(default_factory=dict)
    raw: Dict[int, ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        return self.summary.table()


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    batch_sizes: Optional[List[int]] = None,
) -> Fig7Result:
    batch_sizes = batch_sizes if batch_sizes is not None else BATCH_SIZES
    summary = ExperimentTable(
        "Fig 7: out-of-order delivery at the merge point vs micro-flow batch size "
        "(MFLOW, TCP, 64 KB)",
        ["batch", "ooo_reorder_events", "ooo_raw_packets", "throughput_gbps"],
    )
    result = Fig7Result(summary=summary)
    for batch in batch_sizes:
        sc = build_scenario("mflow", "tcp", MESSAGE_SIZE, costs=costs, batch_size=batch)
        res = sc.run(**windows(quick))
        events = res.counters.get("mflow_ooo_microflows", 0)
        pkts = res.counters.get("mflow_ooo_packets", 0)
        result.ooo_packets[batch] = events
        result.raw[batch] = res
        summary.add(batch, events, pkts, res.throughput_gbps)
    summary.notes.append(
        "ooo_reorder_events = micro-flows needing a buffer-queue switch (the effort the "
        "batch-based reassembler pays); falls ~1/batch and is negligible by 256, as in the paper"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
