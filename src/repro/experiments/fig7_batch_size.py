"""Figure 7 — out-of-order delivery vs micro-flow batch size.

Runs MFLOW (full-path scaling, TCP, 64 KB messages) while sweeping the
micro-flow batch size and reports how many packets reach the merge point
out of wire order — the quantity MFLOW's reassembler must fix.  The
paper's observation: the count falls steeply with batch size and becomes
negligible by batch ≈ 256 (which is why 256 is the default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentTable, execute, windows
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.workloads.scenario import ScenarioResult

EXPERIMENT = "fig7"
BATCH_SIZES = [1, 4, 16, 64, 128, 256, 512, 1024]
MESSAGE_SIZE = 65536


@dataclass
class Fig7Result:
    summary: ExperimentTable
    ooo_packets: Dict[int, int] = field(default_factory=dict)
    raw: Dict[int, ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        return self.summary.table()


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    batch_sizes: Optional[List[int]] = None,
) -> List[RunSpec]:
    batch_sizes = batch_sizes if batch_sizes is not None else BATCH_SIZES
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for batch in batch_sizes:
        params = {
            "system": "mflow",
            "proto": "tcp",
            "size": MESSAGE_SIZE,
            "batch_size": batch,
        }
        if overrides:
            params["cost_overrides"] = overrides
        out.append(
            RunSpec.make(
                "sockperf",
                params,
                warmup_ns=win["warmup_ns"],
                measure_ns=win["measure_ns"],
                tags=(EXPERIMENT, f"batch{batch}"),
            )
        )
    return out


def reduce(records: List[RunRecord]) -> Fig7Result:
    summary = ExperimentTable(
        "Fig 7: out-of-order delivery at the merge point vs micro-flow batch size "
        "(MFLOW, TCP, 64 KB)",
        ["batch", "ooo_reorder_events", "ooo_raw_packets", "throughput_gbps"],
    )
    result = Fig7Result(summary=summary)
    for rec in records:
        batch = rec.params["batch_size"]
        res = rec.scenario_result()
        events = res.counters.get("mflow_ooo_microflows", 0)
        pkts = res.counters.get("mflow_ooo_packets", 0)
        result.ooo_packets[batch] = events
        result.raw[batch] = res
        summary.add(batch, events, pkts, res.throughput_gbps)
    summary.notes.append(
        "ooo_reorder_events = micro-flows needing a buffer-queue switch (the effort the "
        "batch-based reassembler pays); falls ~1/batch and is negligible by 256, as in the paper"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    batch_sizes: Optional[List[int]] = None,
    engine: Optional[RunEngine] = None,
) -> Fig7Result:
    return reduce(execute(EXPERIMENT, specs(quick, costs, batch_sizes), engine))


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
