"""Figure 10 — multi-flow TCP throughput.

1–20 concurrent overlay TCP flows, message sizes 16 B / 4 KB / 64 KB,
with the paper's controlled layout (5 dedicated app cores, 10 dedicated
kernel cores).  The paper's reading: MFLOW's single-flow advantage
persists at low flow counts and shrinks as flows consume the CPU pool
(+24% @5 flows/4 KB → +5% @20; equal to FALCON at 20 flows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentTable, execute, size_label, windows
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.workloads.multiflow import MULTIFLOW_SYSTEMS
from repro.workloads.scenario import ScenarioResult

EXPERIMENT = "fig10"
FLOW_COUNTS = [1, 2, 5, 10, 15, 20]
MESSAGE_SIZES = [16, 4096, 65536]


@dataclass
class Fig10Result:
    summary: ExperimentTable
    raw: Dict[Tuple[str, int, int], ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        return self.summary.table()

    def gbps(self, system: str, size: int, n_flows: int) -> float:
        return self.raw[(system, size, n_flows)].throughput_gbps


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    flow_counts: Optional[List[int]] = None,
    message_sizes: Optional[List[int]] = None,
) -> List[RunSpec]:
    flow_counts = flow_counts if flow_counts is not None else FLOW_COUNTS
    message_sizes = message_sizes if message_sizes is not None else MESSAGE_SIZES
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for size in message_sizes:
        for n in flow_counts:
            for system in MULTIFLOW_SYSTEMS:
                params = {
                    "system": system,
                    "n_flows": n,
                    "size": size,
                    "placement": "least-loaded",
                }
                if overrides:
                    params["cost_overrides"] = overrides
                out.append(
                    RunSpec.make(
                        "multiflow",
                        params,
                        warmup_ns=win["warmup_ns"],
                        measure_ns=win["measure_ns"],
                        tags=(EXPERIMENT, system, str(size), f"{n}flows"),
                    )
                )
    return out


def reduce(records: List[RunRecord]) -> Fig10Result:
    summary = ExperimentTable(
        "Fig 10: aggregate multi-flow TCP throughput (Gbps), 5 app + 10 kernel cores",
        ["msg_size", "flows"] + list(MULTIFLOW_SYSTEMS),
    )
    result = Fig10Result(summary=summary)
    for rec in records:
        key = (rec.params["system"], rec.params["size"], rec.params["n_flows"])
        result.raw[key] = rec.scenario_result()
    sizes = list(dict.fromkeys(r.params["size"] for r in records))
    flows = list(dict.fromkeys(r.params["n_flows"] for r in records))
    for size in sizes:
        for n in flows:
            row: List[object] = [size_label(size), n]
            for system in MULTIFLOW_SYSTEMS:
                row.append(result.raw[(system, size, n)].throughput_gbps)
            summary.add(*row)
    summary.notes.append(
        "paper: 16 B scales linearly (clients bottleneck); MFLOW leads vanilla by ~24% "
        "at 5 flows (4 KB), shrinking to ~5% at 20; MFLOW meets FALCON once CPU saturates"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    flow_counts: Optional[List[int]] = None,
    message_sizes: Optional[List[int]] = None,
    engine: Optional[RunEngine] = None,
) -> Fig10Result:
    return reduce(
        execute(EXPERIMENT, specs(quick, costs, flow_counts, message_sizes), engine)
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True, flow_counts=[1, 5, 10], message_sizes=[4096, 65536]).table())
