"""Migration matrix — live-container-cutover ride-through per system.

Runs every overlay steering system through a mid-measurement live
migration (the ``default`` plan: drain at 2.5 ms, freeze, transfer,
restore, replay) on the single-flow overlay TCP workload, under a small
fault axis (clean wire, wire loss, reorder+jitter), and reports the
robustness ledger: blackout duration, packets buffered vs. dropped vs.
replayed, TCP retransmissions, per-flow recovery time, MFLOW merge
stalls, and — the headline — connection drops, which must be zero for
every system under the default plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentTable, execute, windows
from repro.faults.plan import FaultPlan
from repro.migration.plan import PLANS, MigrationPlan
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.workloads.scenario import ScenarioResult

EXPERIMENT = "migration"
#: the five overlay steering systems (native has no overlay ingress to
#: balance, hence nothing to migrate behind)
SYSTEMS = ["vanilla", "rss", "rps", "falcon", "mflow"]
PROTO = "tcp"
SIZE = 65536

#: the fault axis riding along with the cutover — ride-through must hold
#: not just on a clean wire but under loss and reordering
FAULTS: Dict[str, FaultPlan] = {
    "clean": FaultPlan(name="clean"),
    "loss": FaultPlan(name="migrate-loss", loss_rate=0.01),
    "jitter": FaultPlan(
        name="migrate-jitter",
        reorder_rate=0.05,
        reorder_delay_ns=30_000.0,
        jitter_ns=1_000.0,
    ),
}


@dataclass
class MigrationResult:
    matrix: ExperimentTable
    raw: Dict[str, Dict[str, ScenarioResult]] = field(default_factory=dict)

    def table(self) -> str:
        return self.matrix.table()

    def result(self, fault: str, system: str) -> ScenarioResult:
        return self.raw[fault][system]

    def connection_drops(self, fault: str, system: str) -> int:
        mig = self.raw[fault][system].migration or {}
        return int(mig.get("connection_drops", 0))

    def total_connection_drops(self) -> int:
        return sum(
            self.connection_drops(fault, system)
            for fault in self.raw
            for system in self.raw[fault]
        )


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    systems: Optional[List[str]] = None,
    faults: Optional[Dict[str, FaultPlan]] = None,
    plan: Optional[MigrationPlan] = None,
) -> List[RunSpec]:
    systems = systems if systems is not None else SYSTEMS
    faults = faults if faults is not None else FAULTS
    plan = plan if plan is not None else PLANS["default"]
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for fault_name, fplan in faults.items():
        for system in systems:
            params = {
                "system": system,
                "proto": PROTO,
                "size": SIZE,
                # the plan is always active here, so it always embeds
                # (inert plans must stay absent from params — cache-key
                # parity with pre-migration builds)
                "migration": plan.to_dict(),
            }
            if fplan.active:
                params["faults"] = fplan.to_dict()
            if overrides:
                params["cost_overrides"] = overrides
            out.append(
                RunSpec.make(
                    "sockperf",
                    params,
                    warmup_ns=win["warmup_ns"],
                    measure_ns=win["measure_ns"],
                    tags=(EXPERIMENT, fault_name, system),
                )
            )
    return out


def reduce(records: List[RunRecord]) -> MigrationResult:
    table = ExperimentTable(
        f"Migration matrix: {PROTO} {SIZE}B mid-run cutover ride-through",
        ["fault", "system", "gbps", "blackout_us", "buffered", "dropped",
         "replayed", "retx", "conn_drops", "recovery_us", "merge_stalls"],
    )
    result = MigrationResult(matrix=table)
    for rec in records:
        fault, system = rec.tags[1], rec.tags[2]
        result.raw.setdefault(fault, {})[system] = rec.scenario_result()
    for fault in result.raw:
        for system in result.raw[fault]:
            res = result.raw[fault][system]
            mig = res.migration or {}
            recoveries = list((mig.get("recovery_ns") or {}).values())
            table.add(
                fault,
                system,
                res.throughput_gbps,
                f"{mig.get('blackout_ns', 0.0) / 1_000.0:.0f}",
                mig.get("packets_buffered", 0),
                mig.get("packets_dropped", 0),
                mig.get("packets_replayed", 0),
                mig.get("tcp_retransmit_segments", 0),
                mig.get("connection_drops", 0),
                f"{max(recoveries) / 1_000.0:.0f}" if recoveries else "-",
                mig.get("merge_skips_after_drain", 0),
            )
    table.notes.append(
        "blackout_us = freeze-to-restore downtime (min_downtime + snapshot "
        "transfer); recovery_us = slowest flow's restore-to-first-delivery "
        "time; conn_drops must be 0 under the default (buffered) plan"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    systems: Optional[List[str]] = None,
    engine: Optional[RunEngine] = None,
) -> MigrationResult:
    return reduce(execute(EXPERIMENT, specs(quick, costs, systems), engine))


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
