"""Calibration sensitivity: is the paper's shape an artifact of tuning?

The cost model is calibrated through a single anchor (native TCP ≈
26.6 Gbps); the claims we reproduce are *orderings* (MFLOW > FALCON >
RPS > vanilla; MFLOW-TCP > native; MFLOW-UDP < native).  This experiment
perturbs each load-bearing cost constant by ×0.5 and ×2 and re-checks
the orderings — if a claim only holds at the calibrated point, that is
worth knowing (and reporting).

Run: ``python -m repro.experiments.sensitivity`` (or via the bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentTable, windows
from repro.netstack.costs import DEFAULT_COSTS, CostModel
from repro.workloads.sockperf import run_single_flow

#: the constants the calibration story leans on hardest
SWEPT_COSTS = [
    "skb_alloc_ns",
    "vxlan_decap_ns",
    "handoff_cost_ns",
    "gro_per_seg_ns",
    "copy_per_byte_ns",
]
FACTORS = [0.5, 2.0]

#: orderings that must survive perturbation (claim, proto, lhs, rhs)
ORDERINGS: List[Tuple[str, str, str, str]] = [
    ("mflow>vanilla", "tcp", "mflow", "vanilla"),
    ("mflow>falcon", "tcp", "mflow", "falcon"),
    ("falcon>vanilla", "tcp", "falcon", "vanilla"),
    ("mflow>vanilla", "udp", "mflow", "vanilla"),
    ("mflow>falcon", "udp", "mflow", "falcon"),
    ("native>vanilla", "udp", "native", "vanilla"),
]

MESSAGE_SIZE = 65536


@dataclass
class SensitivityResult:
    summary: ExperimentTable
    #: (cost, factor) -> {system_proto: gbps}
    raw: Dict[Tuple[str, float], Dict[str, float]] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    def table(self) -> str:
        out = [self.summary.table()]
        if self.violations:
            out.append("")
            out.append("ordering violations:")
            out.extend(f"  {v}" for v in self.violations)
        else:
            out.append("\nall orderings hold at every perturbation")
        return "\n".join(out)


def _measure(costs: CostModel, quick: bool) -> Dict[str, float]:
    vals: Dict[str, float] = {}
    needed = {(proto, side) for _, proto, a, b in ORDERINGS for side in (a, b)}
    for proto, system in sorted(needed):
        res = run_single_flow(
            system, proto, MESSAGE_SIZE, costs=costs, **windows(quick)
        )
        vals[f"{system}_{proto}"] = res.throughput_gbps
    return vals


def run(
    costs: Optional[CostModel] = None,
    quick: bool = True,
    swept: Optional[List[str]] = None,
    factors: Optional[List[float]] = None,
) -> SensitivityResult:
    base = costs if costs is not None else DEFAULT_COSTS
    swept = swept if swept is not None else SWEPT_COSTS
    factors = factors if factors is not None else FACTORS
    summary = ExperimentTable(
        "Calibration sensitivity: ordering claims under cost perturbation",
        ["cost", "factor"] + [f"{c}:{p}" for c, p, _, _ in ORDERINGS],
    )
    result = SensitivityResult(summary=summary)

    def check(tag: str, vals: Dict[str, float]) -> List[str]:
        row = []
        for claim, proto, lhs, rhs in ORDERINGS:
            holds = vals[f"{lhs}_{proto}"] > vals[f"{rhs}_{proto}"]
            row.append("ok" if holds else "VIOLATED")
            if not holds:
                result.violations.append(
                    f"{tag}: {claim} ({proto}) — "
                    f"{vals[f'{lhs}_{proto}']:.2f} <= {vals[f'{rhs}_{proto}']:.2f}"
                )
        return row

    baseline = _measure(base, quick)
    result.raw[("baseline", 1.0)] = baseline
    summary.add("baseline", 1.0, *check("baseline", baseline))
    for name in swept:
        for factor in factors:
            perturbed = base.with_overrides(**{name: getattr(base, name) * factor})
            vals = _measure(perturbed, quick)
            result.raw[(name, factor)] = vals
            summary.add(name, factor, *check(f"{name} x{factor}", vals))
    summary.notes.append(
        "each row perturbs one calibrated constant; 'ok' means the paper's "
        "ordering claim still holds at 64 KB single-flow"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
