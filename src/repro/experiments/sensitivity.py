"""Calibration sensitivity: is the paper's shape an artifact of tuning?

The cost model is calibrated through a single anchor (native TCP ≈
26.6 Gbps); the claims we reproduce are *orderings* (MFLOW > FALCON >
RPS > vanilla; MFLOW-TCP > native; MFLOW-UDP < native).  This experiment
perturbs each load-bearing cost constant by ×0.5 and ×2 and re-checks
the orderings — if a claim only holds at the calibrated point, that is
worth knowing (and reporting).

Run: ``python -m repro.experiments.sensitivity`` (or via the bench).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentTable, execute, ordered_unique, windows
from repro.netstack.costs import DEFAULT_COSTS, CostModel
from repro.runner import RunEngine, RunRecord, RunSpec

EXPERIMENT = "sensitivity"

#: the constants the calibration story leans on hardest
SWEPT_COSTS = [
    "skb_alloc_ns",
    "vxlan_decap_ns",
    "handoff_cost_ns",
    "gro_per_seg_ns",
    "copy_per_byte_ns",
]
FACTORS = [0.5, 2.0]

#: orderings that must survive perturbation (claim, proto, lhs, rhs)
ORDERINGS: List[Tuple[str, str, str, str]] = [
    ("mflow>vanilla", "tcp", "mflow", "vanilla"),
    ("mflow>falcon", "tcp", "mflow", "falcon"),
    ("falcon>vanilla", "tcp", "falcon", "vanilla"),
    ("mflow>vanilla", "udp", "mflow", "vanilla"),
    ("mflow>falcon", "udp", "mflow", "falcon"),
    ("native>vanilla", "udp", "native", "vanilla"),
]

MESSAGE_SIZE = 65536


@dataclass
class SensitivityResult:
    summary: ExperimentTable
    #: (cost, factor) -> {system_proto: gbps}
    raw: Dict[Tuple[str, float], Dict[str, float]] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    def table(self) -> str:
        out = [self.summary.table()]
        if self.violations:
            out.append("")
            out.append("ordering violations:")
            out.extend(f"  {v}" for v in self.violations)
        else:
            out.append("\nall orderings hold at every perturbation")
        return "\n".join(out)


def _measured_cells() -> List[Tuple[str, str]]:
    needed = {(proto, side) for _, proto, a, b in ORDERINGS for side in (a, b)}
    return sorted(needed)


def specs(
    quick: bool = True,
    costs: Optional[CostModel] = None,
    swept: Optional[List[str]] = None,
    factors: Optional[List[float]] = None,
) -> List[RunSpec]:
    base = costs if costs is not None else DEFAULT_COSTS
    swept = swept if swept is not None else SWEPT_COSTS
    factors = factors if factors is not None else FACTORS
    win = windows(quick)
    points: List[Tuple[str, float, CostModel]] = [("baseline", 1.0, base)]
    for name in swept:
        for factor in factors:
            points.append(
                (name, factor, base.with_overrides(**{name: getattr(base, name) * factor}))
            )
    out: List[RunSpec] = []
    for pert, factor, model in points:
        for proto, system in _measured_cells():
            params: Dict[str, Any] = {
                "system": system,
                "proto": proto,
                "size": MESSAGE_SIZE,
                "pert": pert,
                "factor": factor,
                "cost_overrides": asdict(model),
            }
            out.append(
                RunSpec.make(
                    "sockperf",
                    params,
                    warmup_ns=win["warmup_ns"],
                    measure_ns=win["measure_ns"],
                    tags=(EXPERIMENT, pert, f"x{factor}", system, proto),
                )
            )
    return out


def reduce(records: List[RunRecord]) -> SensitivityResult:
    summary = ExperimentTable(
        "Calibration sensitivity: ordering claims under cost perturbation",
        ["cost", "factor"] + [f"{c}:{p}" for c, p, _, _ in ORDERINGS],
    )
    result = SensitivityResult(summary=summary)
    points = ordered_unique(
        (r.params["pert"], r.params["factor"]) for r in records
    )
    by_point: Dict[Tuple[str, float], Dict[str, float]] = {p: {} for p in points}
    for rec in records:
        point = (rec.params["pert"], rec.params["factor"])
        res = rec.scenario_result()
        by_point[point][f"{rec.params['system']}_{rec.params['proto']}"] = (
            res.throughput_gbps
        )
    for pert, factor in points:
        vals = by_point[(pert, factor)]
        result.raw[(pert, factor)] = vals
        tag = "baseline" if pert == "baseline" else f"{pert} x{factor}"
        row = []
        for claim, proto, lhs, rhs in ORDERINGS:
            holds = vals[f"{lhs}_{proto}"] > vals[f"{rhs}_{proto}"]
            row.append("ok" if holds else "VIOLATED")
            if not holds:
                result.violations.append(
                    f"{tag}: {claim} ({proto}) — "
                    f"{vals[f'{lhs}_{proto}']:.2f} <= {vals[f'{rhs}_{proto}']:.2f}"
                )
        summary.add(pert, factor, *row)
    summary.notes.append(
        "each row perturbs one calibrated constant; 'ok' means the paper's "
        "ordering claim still holds at 64 KB single-flow"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = True,
    swept: Optional[List[str]] = None,
    factors: Optional[List[float]] = None,
    engine: Optional[RunEngine] = None,
) -> SensitivityResult:
    return reduce(execute(EXPERIMENT, specs(quick, costs, swept, factors), engine))


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
