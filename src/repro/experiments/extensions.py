"""Beyond the paper: its stated future work, implemented.

The conclusion identifies two bottlenecks that stop a single flow from
scaling past ~30 Gbps: (1) the receiver's single data-copying thread and
(2) the sender. This experiment implements both remedies in the
simulator and reports how far packet-level parallelism then carries a
single TCP flow:

* **parallel delivery** — the copy-to-user stage alternates between
  multiple application reader threads (cores), chunk by chunk, applying
  MFLOW's own batching idea to the delivery stage;
* **wider splitting** — 3 branches × 2 pipelined cores instead of 2 × 2;
* **faster sender** — sender-side segmentation cost reduced (smarter
  TSO), relevant to the small-message regime the paper says is
  sender-bound.

Run: ``python -m repro.experiments.extensions``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import MflowConfig
from repro.core.mflow import MflowPolicy
from repro.experiments.base import ExperimentTable, execute, windows
from repro.netstack.costs import CostModel
from repro.netstack.packet import Skb
from repro.overlay.topology import DatapathKind
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_from_params, costs_to_overrides
from repro.workloads.scenario import Scenario, ScenarioResult

EXPERIMENT = "extensions"

#: bytes each reader thread copies before the next thread takes over
COPY_CHUNK_BYTES = 64 * 1024

#: the staircase of configurations, in presentation order
CONFIGS: List[Dict[str, Any]] = [
    {"label": "paper mflow (2 branches, 1 reader)",
     "n_branches": 2, "reader_cores": [0], "fast_sender": False},
    {"label": "+ 2 reader threads",
     "n_branches": 2, "reader_cores": [0, 13], "fast_sender": False},
    {"label": "+ 3 branches, 2 readers",
     "n_branches": 3, "reader_cores": [0, 13], "fast_sender": False},
    {"label": "+ 3 branches, 3 readers",
     "n_branches": 3, "reader_cores": [0, 12, 13], "fast_sender": False},
    {"label": "+ faster sender",
     "n_branches": 3, "reader_cores": [0, 12, 13], "fast_sender": True},
]


class ParallelCopyMflowPolicy(MflowPolicy):
    """MFLOW plus N application reader threads sharing the copy stage.

    Delivery alternates between the reader cores in fixed byte chunks —
    per-chunk affinity keeps each reader's copies contiguous (userspace
    reassembles by offset, a receive-side analogue of micro-flows).
    """

    def __init__(self, cpus, config, reader_cores, **kw):
        if not reader_cores:
            raise ValueError("need at least one reader core")
        super().__init__(cpus, config, app_core=reader_cores[0], **kw)
        self.reader_cores = list(reader_cores)

    def core_for(self, stage_name, skb: Skb, from_core):
        if stage_name == "tcp_deliver" and len(self.reader_cores) > 1:
            chunk = skb.seq // COPY_CHUNK_BYTES
            idx = self.reader_cores[chunk % len(self.reader_cores)]
            return self.cpus[idx]
        return super().core_for(stage_name, skb, from_core)


def _mflow_scenario(
    n_branches: int,
    reader_cores,
    costs: Optional[CostModel] = None,
    n_cores: int = 14,
    seed: int = 0,
) -> Scenario:
    alloc = list(range(2, 2 + n_branches))
    rest = list(range(2 + n_branches, 2 + 2 * n_branches))
    config = MflowConfig.full_path_tcp(alloc_cores=alloc, rest_cores=rest)
    sc = Scenario(
        DatapathKind.OVERLAY,
        "tcp",
        lambda cpus: ParallelCopyMflowPolicy(cpus, config, reader_cores),
        costs=costs,
        seed=seed,
        n_receiver_cores=n_cores,
    )
    sc.add_tcp_sender(64 * 1024)
    return sc


def extension_factory(
    params: Dict[str, Any], seed: int, warmup_ns: float, measure_ns: float
) -> Dict[str, Any]:
    """One staircase step: the paper's mflow baseline or an extended config."""
    from repro.runner.records import scenario_result_to_dict
    from repro.workloads.sockperf import run_single_flow

    costs = costs_from_params(params)
    if params.get("fast_sender"):
        base = costs if costs is not None else _default_costs()
        costs = base.with_overrides(
            send_per_seg_tcp_ns=base.send_per_seg_tcp_ns / 2,
            send_syscall_ns=base.send_syscall_ns / 2,
        )
    reader_cores = [int(c) for c in params["reader_cores"]]
    if int(params["n_branches"]) == 2 and reader_cores == [0]:
        # the paper's own configuration: plain single-reader MFLOW
        res = run_single_flow(
            "mflow", "tcp", 64 * 1024, costs=costs, seed=seed,
            warmup_ns=warmup_ns, measure_ns=measure_ns,
        )
    else:
        sc = _mflow_scenario(
            int(params["n_branches"]), reader_cores, costs=costs, seed=seed
        )
        res = sc.run(warmup_ns=warmup_ns, measure_ns=measure_ns)
    return scenario_result_to_dict(res)


def _default_costs() -> CostModel:
    from repro.netstack.costs import DEFAULT_COSTS

    return DEFAULT_COSTS


@dataclass
class ExtensionsResult:
    summary: ExperimentTable
    raw: Dict[str, ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        return self.summary.table()

    def gbps(self, label: str) -> float:
        return self.raw[label].throughput_gbps


def specs(
    quick: bool = False, costs: Optional[CostModel] = None
) -> List[RunSpec]:
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for cfg in CONFIGS:
        params = dict(cfg)
        if overrides:
            params["cost_overrides"] = overrides
        out.append(
            RunSpec.make(
                "mflow_extension",
                params,
                warmup_ns=win["warmup_ns"],
                measure_ns=win["measure_ns"],
                tags=(
                    EXPERIMENT,
                    f"{cfg['n_branches']}branches",
                    f"{len(cfg['reader_cores'])}readers",
                ),
            )
        )
    return out


def reduce(records: List[RunRecord]) -> ExtensionsResult:
    summary = ExperimentTable(
        "Future-work extensions: single TCP flow beyond the paper's 30 Gbps",
        ["configuration", "gbps", "bottleneck"],
    )
    result = ExtensionsResult(summary=summary)
    for rec in records:
        label = rec.params["label"]
        res = rec.scenario_result()
        result.raw[label] = res
        hottest = max(
            range(len(res.cpu_utilization)), key=res.cpu_utilization.__getitem__
        )
        summary.add(
            label,
            res.throughput_gbps,
            f"core{hottest} {res.cpu_utilization[hottest] * 100:.0f}%",
        )
    summary.notes.append(
        "paper §VII: the single data-copying thread and the sender are the next "
        "bottlenecks; parallelizing delivery lets wider splitting keep scaling"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    engine: Optional[RunEngine] = None,
) -> ExtensionsResult:
    return reduce(execute(EXPERIMENT, specs(quick, costs), engine))


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
