"""Beyond the paper: its stated future work, implemented.

The conclusion identifies two bottlenecks that stop a single flow from
scaling past ~30 Gbps: (1) the receiver's single data-copying thread and
(2) the sender. This experiment implements both remedies in the
simulator and reports how far packet-level parallelism then carries a
single TCP flow:

* **parallel delivery** — the copy-to-user stage alternates between
  multiple application reader threads (cores), chunk by chunk, applying
  MFLOW's own batching idea to the delivery stage;
* **wider splitting** — 3 branches × 2 pipelined cores instead of 2 × 2;
* **faster sender** — sender-side segmentation cost reduced (smarter
  TSO), relevant to the small-message regime the paper says is
  sender-bound.

Run: ``python -m repro.experiments.extensions``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import MflowConfig
from repro.core.mflow import MflowPolicy
from repro.experiments.base import ExperimentTable, windows
from repro.netstack.costs import DEFAULT_COSTS, CostModel
from repro.netstack.packet import Skb
from repro.overlay.topology import DatapathKind
from repro.workloads.scenario import Scenario, ScenarioResult
from repro.workloads.sockperf import run_single_flow

#: bytes each reader thread copies before the next thread takes over
COPY_CHUNK_BYTES = 64 * 1024


class ParallelCopyMflowPolicy(MflowPolicy):
    """MFLOW plus N application reader threads sharing the copy stage.

    Delivery alternates between the reader cores in fixed byte chunks —
    per-chunk affinity keeps each reader's copies contiguous (userspace
    reassembles by offset, a receive-side analogue of micro-flows).
    """

    def __init__(self, cpus, config, reader_cores, **kw):
        if not reader_cores:
            raise ValueError("need at least one reader core")
        super().__init__(cpus, config, app_core=reader_cores[0], **kw)
        self.reader_cores = list(reader_cores)

    def core_for(self, stage_name, skb: Skb, from_core):
        if stage_name == "tcp_deliver" and len(self.reader_cores) > 1:
            chunk = skb.seq // COPY_CHUNK_BYTES
            idx = self.reader_cores[chunk % len(self.reader_cores)]
            return self.cpus[idx]
        return super().core_for(stage_name, skb, from_core)


def _mflow_scenario(
    n_branches: int,
    reader_cores,
    costs: Optional[CostModel] = None,
    n_cores: int = 14,
) -> Scenario:
    alloc = list(range(2, 2 + n_branches))
    rest = list(range(2 + n_branches, 2 + 2 * n_branches))
    config = MflowConfig.full_path_tcp(alloc_cores=alloc, rest_cores=rest)
    sc = Scenario(
        DatapathKind.OVERLAY,
        "tcp",
        lambda cpus: ParallelCopyMflowPolicy(cpus, config, reader_cores),
        costs=costs,
        n_receiver_cores=n_cores,
    )
    sc.add_tcp_sender(64 * 1024)
    return sc


@dataclass
class ExtensionsResult:
    summary: ExperimentTable
    raw: Dict[str, ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        return self.summary.table()

    def gbps(self, label: str) -> float:
        return self.raw[label].throughput_gbps


def run(costs: Optional[CostModel] = None, quick: bool = False) -> ExtensionsResult:
    base = costs if costs is not None else DEFAULT_COSTS
    win = windows(quick)
    summary = ExperimentTable(
        "Future-work extensions: single TCP flow beyond the paper's 30 Gbps",
        ["configuration", "gbps", "bottleneck"],
    )
    result = ExtensionsResult(summary=summary)

    def record(label: str, res: ScenarioResult) -> None:
        result.raw[label] = res
        hottest = max(
            range(len(res.cpu_utilization)), key=res.cpu_utilization.__getitem__
        )
        summary.add(
            label,
            res.throughput_gbps,
            f"core{hottest} {res.cpu_utilization[hottest] * 100:.0f}%",
        )

    # paper's configuration: single delivery thread, 2 branches
    record("paper mflow (2 branches, 1 reader)",
           run_single_flow("mflow", "tcp", 64 * 1024, costs=base, **win))
    # future work 1: parallel delivery threads (readers on cores 0 and 13)
    sc = _mflow_scenario(2, reader_cores=[0, 13], costs=base)
    record("+ 2 reader threads", sc.run(**win))
    # future work 1b: wider split once the copy wall is gone
    sc = _mflow_scenario(3, reader_cores=[0, 13], costs=base)
    record("+ 3 branches, 2 readers", sc.run(**win))
    sc = _mflow_scenario(3, reader_cores=[0, 12, 13], costs=base)
    record("+ 3 branches, 3 readers", sc.run(**win))
    # future work 2: faster sender (half-cost segmentation), widest config
    fast_sender = base.with_overrides(
        send_per_seg_tcp_ns=base.send_per_seg_tcp_ns / 2,
        send_syscall_ns=base.send_syscall_ns / 2,
    )
    sc = _mflow_scenario(3, reader_cores=[0, 12, 13], costs=fast_sender)
    record("+ faster sender", sc.run(**win))
    summary.notes.append(
        "paper §VII: the single data-copying thread and the sender are the next "
        "bottlenecks; parallelizing delivery lets wider splitting keep scaling"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
