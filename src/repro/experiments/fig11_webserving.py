"""Figure 11 — CloudSuite Web Serving under vanilla / FALCON / MFLOW.

200 users; reports per-operation success rate, mean response time, and
mean delay time (actual − target for missed deadlines), as in the
paper's three panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.base import ExperimentTable, execute
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.workloads.webserving import OP_TYPES

EXPERIMENT = "fig11"
SYSTEMS = ["vanilla", "falcon", "mflow"]
N_USERS = 200


class WebServingSummary:
    """Per-op web-serving metrics rebuilt from a run record.

    API-compatible (for reading) with
    :class:`repro.workloads.webserving.WebServingResult`.
    """

    def __init__(self, measurements: Dict[str, Any]):
        self._per_op: Dict[str, Dict[str, float]] = measurements["per_op"]
        self.system: str = measurements["system"]
        self.n_users: int = measurements["n_users"]
        self.window_s: float = measurements["window_s"]
        self._total = float(measurements["total_success_per_sec"])

    def success_ops_per_sec(self, op: str) -> float:
        return float(self._per_op[op]["success_per_sec"])

    def total_success_per_sec(self) -> float:
        return self._total

    def mean_response_us(self, op: str) -> float:
        return float(self._per_op[op]["mean_response_us"])

    def mean_delay_us(self, op: str) -> float:
        return float(self._per_op[op]["mean_delay_us"])


@dataclass
class Fig11Result:
    success: ExperimentTable
    response: ExperimentTable
    delay: ExperimentTable
    raw: Dict[str, WebServingSummary] = field(default_factory=dict)

    def table(self) -> str:
        return "\n\n".join(
            [self.success.table(), self.response.table(), self.delay.table()]
        )


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    n_users: int = N_USERS,
    systems: Optional[List[str]] = None,
) -> List[RunSpec]:
    systems = systems if systems is not None else SYSTEMS
    measure_ns = 6e7 if quick else 2e8
    warmup_ns = 2e7 if quick else 5e7
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for system in systems:
        params: Dict[str, Any] = {"system": system, "n_users": n_users}
        if overrides:
            params["cost_overrides"] = overrides
        out.append(
            RunSpec.make(
                "webserving",
                params,
                warmup_ns=warmup_ns,
                measure_ns=measure_ns,
                tags=(EXPERIMENT, system, f"{n_users}users"),
            )
        )
    return out


def reduce(records: List[RunRecord]) -> Fig11Result:
    n_users = records[0].params["n_users"] if records else N_USERS
    op_names = [op.name for op in OP_TYPES]
    success = ExperimentTable(
        f"Fig 11a: successful operations/sec ({n_users} users)",
        ["system"] + op_names + ["total"],
    )
    response = ExperimentTable(
        "Fig 11b: mean response time (us)", ["system"] + op_names
    )
    delay = ExperimentTable(
        "Fig 11c: mean delay time over target (us)", ["system"] + op_names
    )
    result = Fig11Result(success=success, response=response, delay=delay)
    for rec in records:
        assert rec.measurements is not None
        res = WebServingSummary(rec.measurements)
        system = rec.params["system"]
        result.raw[system] = res
        success.add(
            system,
            *[res.success_ops_per_sec(op) for op in op_names],
            res.total_success_per_sec(),
        )
        response.add(system, *[res.mean_response_us(op) for op in op_names])
        delay.add(system, *[res.mean_delay_us(op) for op in op_names])
    success.notes.append(
        "paper: MFLOW 2.3x-7.5x vanilla overlay success rate; response time -35%..-65%; "
        "delay time reduced by up to 75%"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    n_users: int = N_USERS,
    systems: Optional[List[str]] = None,
    engine: Optional[RunEngine] = None,
) -> Fig11Result:
    return reduce(execute(EXPERIMENT, specs(quick, costs, n_users, systems), engine))


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
