"""Figure 11 — CloudSuite Web Serving under vanilla / FALCON / MFLOW.

200 users; reports per-operation success rate, mean response time, and
mean delay time (actual − target for missed deadlines), as in the
paper's three panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentTable
from repro.netstack.costs import CostModel
from repro.workloads.webserving import OP_TYPES, WebServingResult, run_webserving

SYSTEMS = ["vanilla", "falcon", "mflow"]
N_USERS = 200


@dataclass
class Fig11Result:
    success: ExperimentTable
    response: ExperimentTable
    delay: ExperimentTable
    raw: Dict[str, WebServingResult] = field(default_factory=dict)

    def table(self) -> str:
        return "\n\n".join(
            [self.success.table(), self.response.table(), self.delay.table()]
        )


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    n_users: int = N_USERS,
    systems: Optional[List[str]] = None,
) -> Fig11Result:
    systems = systems if systems is not None else SYSTEMS
    measure_ns = 6e7 if quick else 2e8
    warmup_ns = 2e7 if quick else 5e7
    op_names = [op.name for op in OP_TYPES]
    success = ExperimentTable(
        f"Fig 11a: successful operations/sec ({n_users} users)",
        ["system"] + op_names + ["total"],
    )
    response = ExperimentTable(
        "Fig 11b: mean response time (us)", ["system"] + op_names
    )
    delay = ExperimentTable(
        "Fig 11c: mean delay time over target (us)", ["system"] + op_names
    )
    result = Fig11Result(success=success, response=response, delay=delay)
    for system in systems:
        res = run_webserving(
            system, n_users=n_users, costs=costs,
            warmup_ns=warmup_ns, measure_ns=measure_ns,
        )
        result.raw[system] = res
        success.add(
            system,
            *[res.success_ops_per_sec(op) for op in op_names],
            res.total_success_per_sec(),
        )
        response.add(system, *[res.mean_response_us(op) for op in op_names])
        delay.add(system, *[res.mean_delay_us(op) for op in op_names])
    success.notes.append(
        "paper: MFLOW 2.3x-7.5x vanilla overlay success rate; response time -35%..-65%; "
        "delay time reduced by up to 75%"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
