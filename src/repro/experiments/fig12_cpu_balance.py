"""Figure 12 — CPU load distribution and MFLOW's steering overhead.

Ten concurrent 64 KB TCP flows on the 10-kernel-core layout: compares
FALCON and MFLOW on (a) per-core utilization spread — the paper reports
a std-dev of 20.5 (FALCON) vs 11.6 (MFLOW) percentage points — and (b)
total kernel-CPU consumed per delivered Gbps (MFLOW trades up to ~15%
more CPU for its throughput/balance gains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.base import ExperimentTable, execute, windows
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.workloads.multiflow import (
    KERNEL_POOL,
    kernel_pool_utilization,
    utilization_stddev,
)
from repro.workloads.scenario import ScenarioResult

EXPERIMENT = "fig12"
N_FLOWS = 8
MESSAGE_SIZE = 65536
SYSTEMS = ["vanilla", "falcon", "mflow"]


@dataclass
class Fig12Result:
    summary: ExperimentTable
    per_core: Dict[str, List[float]] = field(default_factory=dict)
    stddev: Dict[str, float] = field(default_factory=dict)
    raw: Dict[str, ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        out = [self.summary.table(), "", "per-kernel-core utilization (%):"]
        for system, utils in self.per_core.items():
            bars = " ".join(f"{u * 100:4.0f}" for u in utils)
            out.append(f"  {system:>8}: {bars}")
        return "\n".join(out)


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    n_flows: int = N_FLOWS,
    systems: Optional[List[str]] = None,
    placement: str = "round-robin",
) -> List[RunSpec]:
    """Defaults to 8 flows with round-robin placement: the non-saturated
    regime where per-core spread is meaningful (with this calibration, 10
    flows pin every pool core at 100% and the spread trivially collapses;
    the paper's testbed had more headroom).  Fig. 10 uses least-loaded
    placement for throughput instead."""
    systems = systems if systems is not None else SYSTEMS
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for system in systems:
        params = {
            "system": system,
            "n_flows": n_flows,
            "size": MESSAGE_SIZE,
            "placement": placement,
        }
        if overrides:
            params["cost_overrides"] = overrides
        out.append(
            RunSpec.make(
                "multiflow",
                params,
                warmup_ns=win["warmup_ns"],
                measure_ns=win["measure_ns"],
                tags=(EXPERIMENT, system, f"{n_flows}flows", placement),
            )
        )
    return out


def reduce(records: List[RunRecord]) -> Fig12Result:
    n_flows = records[0].params["n_flows"] if records else N_FLOWS
    placement = records[0].params["placement"] if records else "round-robin"
    summary = ExperimentTable(
        f"Fig 12: kernel-core load balance, {n_flows} TCP flows x 64 KB"
        f" ({placement} placement)",
        ["system", "gbps", "util_mean_%", "util_std_%", "cpu_cores_per_10gbps"],
    )
    result = Fig12Result(summary=summary)
    for rec in records:
        system = rec.params["system"]
        res = rec.scenario_result()
        utils = kernel_pool_utilization(res)
        std = utilization_stddev(res)
        mean = float(np.mean(utils)) * 100.0
        cores_per_10g = sum(utils) / max(res.throughput_gbps, 1e-9) * 10.0
        result.per_core[system] = utils
        result.stddev[system] = std
        result.raw[system] = res
        summary.add(system, res.throughput_gbps, mean, std, cores_per_10g)
    summary.notes.append(
        "paper (10 flows): MFLOW spreads load far more evenly (std 11.6 vs FALCON's "
        "20.5) at the price of up to ~15% extra CPU in the worst case"
    )
    summary.notes.append(f"kernel pool = cores {KERNEL_POOL}")
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    n_flows: int = N_FLOWS,
    systems: Optional[List[str]] = None,
    placement: str = "round-robin",
    engine: Optional[RunEngine] = None,
) -> Fig12Result:
    return reduce(
        execute(EXPERIMENT, specs(quick, costs, n_flows, systems, placement), engine)
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
