"""Figure 12 — CPU load distribution and MFLOW's steering overhead.

Ten concurrent 64 KB TCP flows on the 10-kernel-core layout: compares
FALCON and MFLOW on (a) per-core utilization spread — the paper reports
a std-dev of 20.5 (FALCON) vs 11.6 (MFLOW) percentage points — and (b)
total kernel-CPU consumed per delivered Gbps (MFLOW trades up to ~15%
more CPU for its throughput/balance gains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.base import ExperimentTable, windows
from repro.netstack.costs import CostModel
from repro.workloads.multiflow import (
    KERNEL_POOL,
    kernel_pool_utilization,
    run_multiflow,
    utilization_stddev,
)
from repro.workloads.scenario import ScenarioResult

N_FLOWS = 8
MESSAGE_SIZE = 65536
SYSTEMS = ["vanilla", "falcon", "mflow"]


@dataclass
class Fig12Result:
    summary: ExperimentTable
    per_core: Dict[str, List[float]] = field(default_factory=dict)
    stddev: Dict[str, float] = field(default_factory=dict)
    raw: Dict[str, ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        out = [self.summary.table(), "", "per-kernel-core utilization (%):"]
        for system, utils in self.per_core.items():
            bars = " ".join(f"{u * 100:4.0f}" for u in utils)
            out.append(f"  {system:>8}: {bars}")
        return "\n".join(out)


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    n_flows: int = N_FLOWS,
    systems: Optional[List[str]] = None,
    placement: str = "round-robin",
) -> Fig12Result:
    """Defaults to 8 flows with round-robin placement: the non-saturated
    regime where per-core spread is meaningful (with this calibration, 10
    flows pin every pool core at 100% and the spread trivially collapses;
    the paper's testbed had more headroom).  Fig. 10 uses least-loaded
    placement for throughput instead."""
    systems = systems if systems is not None else SYSTEMS
    summary = ExperimentTable(
        f"Fig 12: kernel-core load balance, {n_flows} TCP flows x 64 KB"
        f" ({placement} placement)",
        ["system", "gbps", "util_mean_%", "util_std_%", "cpu_cores_per_10gbps"],
    )
    result = Fig12Result(summary=summary)
    win = windows(quick)
    for system in systems:
        res = run_multiflow(
            system, n_flows, MESSAGE_SIZE, costs=costs,
            warmup_ns=win["warmup_ns"], measure_ns=win["measure_ns"],
            placement=placement,
        )
        utils = kernel_pool_utilization(res)
        std = utilization_stddev(res)
        mean = float(np.mean(utils)) * 100.0
        cores_per_10g = sum(utils) / max(res.throughput_gbps, 1e-9) * 10.0
        result.per_core[system] = utils
        result.stddev[system] = std
        result.raw[system] = res
        summary.add(system, res.throughput_gbps, mean, std, cores_per_10g)
    summary.notes.append(
        "paper (10 flows): MFLOW spreads load far more evenly (std 11.6 vs FALCON's "
        "20.5) at the price of up to ~15% extra CPU in the worst case"
    )
    summary.notes.append(f"kernel pool = cores {KERNEL_POOL}")
    return result


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
