"""Figure 8 — MFLOW single-flow throughput and CPU breakdown.

* 8a: single-flow throughput of native / vanilla / RPS / FALCON / MFLOW
  (FALCON in its best per-protocol mode), TCP and UDP, 16 B – 64 KB;
* 8b: MFLOW's per-core CPU utilization breakdown at 64 KB — full-path
  scaling for TCP (dispatch core + 2 alloc cores + 2 rest cores + app
  core), device scaling for UDP (dispatch + 2 splitting cores + app).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import (
    ExperimentTable,
    breakdown_row,
    execute,
    ordered_unique,
    size_label,
    windows,
)
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec
from repro.runner.factories import costs_to_overrides
from repro.workloads.scenario import ScenarioResult

EXPERIMENT = "fig8"
SYSTEMS = ["native", "vanilla", "rps", "falcon", "mflow"]
MESSAGE_SIZES = [16, 1024, 4096, 16384, 65536]
BREAKDOWN_SIZE = 65536


@dataclass
class Fig8Result:
    throughput: ExperimentTable
    cpu_tables: Dict[str, List[str]] = field(default_factory=dict)
    raw: Dict[str, Dict[str, Dict[int, ScenarioResult]]] = field(default_factory=dict)

    def table(self) -> str:
        out = [self.throughput.table(), "", "Fig 8b: MFLOW per-core CPU breakdown (64 KB):"]
        for key, lines in self.cpu_tables.items():
            out.append(f"-- {key} --")
            out.extend("  " + line for line in lines)
        return "\n".join(out)

    def gbps(self, proto: str, system: str, size: int = BREAKDOWN_SIZE) -> float:
        return self.raw[proto][system][size].throughput_gbps


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    systems: Optional[List[str]] = None,
    message_sizes: Optional[List[int]] = None,
) -> List[RunSpec]:
    systems = systems if systems is not None else SYSTEMS
    message_sizes = message_sizes if message_sizes is not None else MESSAGE_SIZES
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    out: List[RunSpec] = []
    for proto in ("tcp", "udp"):
        for size in message_sizes:
            for system in systems:
                params = {"system": system, "proto": proto, "size": size}
                if overrides:
                    params["cost_overrides"] = overrides
                out.append(
                    RunSpec.make(
                        "sockperf",
                        params,
                        warmup_ns=win["warmup_ns"],
                        measure_ns=win["measure_ns"],
                        tags=(EXPERIMENT, proto, system, str(size)),
                    )
                )
    return out


def reduce(records: List[RunRecord]) -> Fig8Result:
    systems = ordered_unique(r.params["system"] for r in records)
    table = ExperimentTable(
        "Fig 8a: single-flow throughput (Gbps), MFLOW vs state-of-the-art",
        ["proto", "msg_size"] + systems,
    )
    result = Fig8Result(throughput=table)
    for rec in records:
        proto, system, size = rec.params["proto"], rec.params["system"], rec.params["size"]
        result.raw.setdefault(proto, {}).setdefault(system, {})[size] = (
            rec.scenario_result()
        )
    for proto, by_system in result.raw.items():
        for size in ordered_unique(s for cells in by_system.values() for s in cells):
            row: List[object] = [proto, size_label(size)]
            for system in systems:
                row.append(by_system[system][size].throughput_gbps)
            table.add(*row)
        if "mflow" in by_system and BREAKDOWN_SIZE in by_system["mflow"]:
            res = by_system["mflow"][BREAKDOWN_SIZE]
            n_cores = 6 if proto == "tcp" else 4
            result.cpu_tables[proto] = [
                breakdown_row(i, res.cpu_breakdown[i]) for i in range(n_cores)
            ]
    table.notes.append(
        "paper (64 KB): MFLOW +81% TCP / +139% UDP over vanilla; TCP 29.8 vs native 26.6 Gbps; "
        "MFLOW +22%/+21% over FALCON; UDP stays below native (client-bound)"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    systems: Optional[List[str]] = None,
    message_sizes: Optional[List[int]] = None,
    engine: Optional[RunEngine] = None,
) -> Fig8Result:
    return reduce(
        execute(EXPERIMENT, specs(quick, costs, systems, message_sizes), engine)
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
