"""Figure 9 — per-message latency under load.

The paper measures sockperf latency in the "overloaded" scenario: each
system driven to its maximum throughput before packet drops occur.

* TCP: the sender is window-limited, so running the continuous workload
  and sampling per-message delivery latency reproduces the paper's
  standing-queue regime directly.
* UDP: open-loop senders would overload every system unboundedly, so
  each cell first measures the system's goodput capacity, then replays
  at 90% of it (max throughput *before drops*) and samples latency there
  (both phases inside the ``sockperf_loaded`` factory, so a cell stays
  one self-contained spec).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentTable, execute, size_label, windows
from repro.metrics.summary import LatencySummary
from repro.netstack.costs import CostModel
from repro.runner import RunEngine, RunRecord, RunSpec, run_specs
from repro.runner.factories import costs_to_overrides
from repro.workloads.scenario import ScenarioResult

EXPERIMENT = "fig9"
SYSTEMS = ["native", "vanilla", "rps", "falcon", "mflow"]
MESSAGE_SIZES = [4096, 65536]
UDP_LOAD_FACTOR = 0.9
#: latency-oriented micro-flow batch for the UDP runs: at sub-saturation,
#: large batches make each branch serve the full stream for a whole batch
#: window, oscillating queue depth by O(batch); small batches interleave
#: the branches finely.  Goodput capacity is within noise of the
#: throughput-default 256 (see the batch-size ablation bench).
UDP_MFLOW_BATCH = 16


@dataclass
class Fig9Result:
    summary: ExperimentTable
    latencies: Dict[Tuple[str, str, int], LatencySummary] = field(default_factory=dict)
    raw: Dict[Tuple[str, str, int], ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        return self.summary.table()


def _cell_spec(
    system: str,
    proto: str,
    size: int,
    win: Dict[str, float],
    overrides: Optional[dict],
) -> RunSpec:
    if proto == "tcp":
        factory = "sockperf"
        params = {"system": system, "proto": proto, "size": size}
    else:
        factory = "sockperf_loaded"
        params = {
            "system": system,
            "proto": proto,
            "size": size,
            "batch_size": UDP_MFLOW_BATCH if system == "mflow" else 256,
            "load_factor": UDP_LOAD_FACTOR,
        }
    if overrides:
        params["cost_overrides"] = overrides
    return RunSpec.make(
        factory,
        params,
        warmup_ns=win["warmup_ns"],
        measure_ns=win["measure_ns"],
        tags=(EXPERIMENT, proto, system, str(size)),
    )


def specs(
    quick: bool = False,
    costs: Optional[CostModel] = None,
    systems: Optional[List[str]] = None,
    message_sizes: Optional[List[int]] = None,
) -> List[RunSpec]:
    systems = systems if systems is not None else SYSTEMS
    message_sizes = message_sizes if message_sizes is not None else MESSAGE_SIZES
    win = windows(quick)
    overrides = costs_to_overrides(costs)
    return [
        _cell_spec(system, proto, size, win, overrides)
        for proto in ("tcp", "udp")
        for size in message_sizes
        for system in systems
    ]


def reduce(records: List[RunRecord]) -> Fig9Result:
    summary = ExperimentTable(
        "Fig 9: per-message latency under max pre-drop load (us)",
        ["proto", "msg_size", "system", "mean", "p50", "p99", "gbps"],
    )
    result = Fig9Result(summary=summary)
    for rec in records:
        proto, system, size = rec.params["proto"], rec.params["system"], rec.params["size"]
        res = rec.scenario_result()
        key = (proto, system, size)
        result.latencies[key] = res.latency
        result.raw[key] = res
        summary.add(
            proto,
            size_label(size),
            system,
            res.latency.mean_us,
            res.latency.p50_us,
            res.latency.p99_us,
            res.throughput_gbps,
        )
    summary.notes.append(
        "paper (TCP 64 KB): MFLOW cuts median ~46% and p99 ~21% vs vanilla overlay; "
        "a latency gap to native remains (longer overlay path)"
    )
    return result


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    systems: Optional[List[str]] = None,
    message_sizes: Optional[List[int]] = None,
    engine: Optional[RunEngine] = None,
) -> Fig9Result:
    return reduce(
        execute(EXPERIMENT, specs(quick, costs, systems, message_sizes), engine)
    )


def run_cell(
    system: str,
    proto: str,
    size: int,
    costs: Optional[CostModel] = None,
    quick: bool = False,
) -> ScenarioResult:
    """One figure cell, serial and in-process (the CLI's ``latency`` path)."""
    spec = _cell_spec(system, proto, size, windows(quick), costs_to_overrides(costs))
    [record] = run_specs(EXPERIMENT, [spec])
    return record.scenario_result()


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
