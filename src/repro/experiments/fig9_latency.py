"""Figure 9 — per-message latency under load.

The paper measures sockperf latency in the "overloaded" scenario: each
system driven to its maximum throughput before packet drops occur.

* TCP: the sender is window-limited, so running the continuous workload
  and sampling per-message delivery latency reproduces the paper's
  standing-queue regime directly.
* UDP: open-loop senders would overload every system unboundedly, so we
  first measure each system's goodput capacity, then replay at 90% of it
  (max throughput *before drops*) and sample latency there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentTable, windows
from repro.metrics.summary import LatencySummary
from repro.netstack.costs import CostModel
from repro.workloads.scenario import ScenarioResult
from repro.workloads.sockperf import CLIENTS, build_scenario

SYSTEMS = ["native", "vanilla", "rps", "falcon", "mflow"]
MESSAGE_SIZES = [4096, 65536]
UDP_LOAD_FACTOR = 0.9
#: latency-oriented micro-flow batch for the UDP runs: at sub-saturation,
#: large batches make each branch serve the full stream for a whole batch
#: window, oscillating queue depth by O(batch); small batches interleave
#: the branches finely.  Goodput capacity is within noise of the
#: throughput-default 256 (see the batch-size ablation bench).
UDP_MFLOW_BATCH = 16


@dataclass
class Fig9Result:
    summary: ExperimentTable
    latencies: Dict[Tuple[str, str, int], LatencySummary] = field(default_factory=dict)
    raw: Dict[Tuple[str, str, int], ScenarioResult] = field(default_factory=dict)

    def table(self) -> str:
        return self.summary.table()


def run(
    costs: Optional[CostModel] = None,
    quick: bool = False,
    systems: Optional[List[str]] = None,
    message_sizes: Optional[List[int]] = None,
) -> Fig9Result:
    systems = systems if systems is not None else SYSTEMS
    message_sizes = message_sizes if message_sizes is not None else MESSAGE_SIZES
    summary = ExperimentTable(
        "Fig 9: per-message latency under max pre-drop load (us)",
        ["proto", "msg_size", "system", "mean", "p50", "p99", "gbps"],
    )
    result = Fig9Result(summary=summary)
    for proto in ("tcp", "udp"):
        for size in message_sizes:
            for system in systems:
                res = _run_cell(system, proto, size, costs, quick)
                key = (proto, system, size)
                result.latencies[key] = res.latency
                result.raw[key] = res
                summary.add(
                    proto,
                    _size_label(size),
                    system,
                    res.latency.mean_us,
                    res.latency.p50_us,
                    res.latency.p99_us,
                    res.throughput_gbps,
                )
    summary.notes.append(
        "paper (TCP 64 KB): MFLOW cuts median ~46% and p99 ~21% vs vanilla overlay; "
        "a latency gap to native remains (longer overlay path)"
    )
    return result


def _run_cell(
    system: str, proto: str, size: int, costs: Optional[CostModel], quick: bool
) -> ScenarioResult:
    if proto == "tcp":
        sc = build_scenario(system, proto, size, costs=costs)
        return sc.run(**windows(quick))
    # UDP: measure capacity first, then run at 90% of it
    batch = UDP_MFLOW_BATCH if system == "mflow" else 256
    probe = build_scenario(system, proto, size, costs=costs, batch_size=batch)
    cap = probe.run(**windows(quick)).throughput_gbps
    cap = max(cap, 1e-3)
    per_client_gbps = cap * UDP_LOAD_FACTOR / CLIENTS[proto]
    interval_ns = size * 8.0 / per_client_gbps
    sc = build_scenario(
        system, proto, size, costs=costs, interval_ns=interval_ns, batch_size=batch
    )
    return sc.run(**windows(quick))


def _size_label(size: int) -> str:
    return f"{size // 1024}KB" if size >= 1024 else f"{size}B"


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run(quick=True).table())
