"""Deterministic fault injection across the simulated datapath."""

from repro.faults.health import FlowHealthMonitor
from repro.faults.injectors import FaultInjectors, clone_packet
from repro.faults.plan import PLANS, FaultPlan, resolve_fault_plan
from repro.faults.watchdog import ConservationWatchdog

__all__ = [
    "PLANS",
    "ConservationWatchdog",
    "FaultInjectors",
    "FaultPlan",
    "FlowHealthMonitor",
    "clone_packet",
    "resolve_fault_plan",
]
