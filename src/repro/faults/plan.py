"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, JSON-canonicalizable description of
every adverse condition a run should suffer: wire impairments (loss,
duplication, corruption, reordering, jitter, a bandwidth clamp), NIC
degradation (ring shrink, delayed IRQs), CPU interference ("noisy
neighbour" stall windows, softirq starvation, delayed IPIs) and a merge
branch blackout.  The default-constructed plan is *inert*: attaching it
to a scenario is bit-identical to attaching nothing at all (no extra
events are scheduled, no RNG stream is consumed).

Plans embed directly into :class:`~repro.runner.spec.RunSpec` params via
:meth:`FaultPlan.to_dict`, so the runner cache key covers them and the
same seed + plan replays the same fault schedule under any ``--jobs``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union


@dataclass(frozen=True)
class FaultPlan:
    """One run's complete fault specification (all-defaults = no faults)."""

    name: str = "custom"

    # ------------------------------------------------------ wire impairments
    #: probability a frame is silently dropped on the wire
    loss_rate: float = 0.0
    #: probability a frame is delivered twice
    dup_rate: float = 0.0
    #: probability a frame arrives with a bad FCS (dropped by the NIC MAC,
    #: counted separately from wire loss)
    corrupt_rate: float = 0.0
    #: probability a frame is held back by ``reorder_delay_ns`` (overtaken
    #: by later frames — path-level reordering)
    reorder_rate: float = 0.0
    reorder_delay_ns: float = 30_000.0
    #: uniform extra per-frame delay in [0, jitter_ns)
    jitter_ns: float = 0.0
    #: clamp the link below its configured rate (0 = no clamp)
    bandwidth_gbps: float = 0.0

    # ------------------------------------------------------- NIC degradation
    #: shrink every RX descriptor ring to this many slots (0 = leave alone)
    nic_ring_size: int = 0
    #: delay between frame arrival and the IRQ top half firing
    irq_delay_ns: float = 0.0

    # ------------------------------------------------------ CPU interference
    #: receiver-core indices periodically stolen by a noisy neighbour
    stall_cores: Tuple[int, ...] = ()
    stall_period_ns: float = 0.0
    stall_duration_ns: float = 0.0
    #: extra entry cost added to every softirq invocation (starvation)
    softirq_entry_extra_ns: float = 0.0
    #: delay before a remote softirq raise lands on its target core
    ipi_delay_ns: float = 0.0

    # ------------------------------------------------------- branch blackout
    #: MFLOW branch index whose packets vanish post-split (-1 = none);
    #: models a branch core going dark mid-run
    blackout_branch: int = -1
    blackout_start_ns: float = 0.0
    blackout_duration_ns: float = 0.0

    # ------------------------------------------------------- window + extras
    #: faults apply only within [start_ns, stop_ns) of sim time
    start_ns: float = 0.0
    #: 0 means "until the run ends"
    stop_ns: float = 0.0
    #: period of the in-run conservation watchdog checks
    watchdog_period_ns: float = 1_000_000.0
    #: decorrelates the fault RNG stream from other plans at the same seed
    seed_salt: int = 0

    # ------------------------------------------------------------ properties
    @property
    def wire_active(self) -> bool:
        return (
            self.loss_rate > 0.0
            or self.dup_rate > 0.0
            or self.corrupt_rate > 0.0
            or self.reorder_rate > 0.0
            or self.jitter_ns > 0.0
        )

    @property
    def bandwidth_clamped(self) -> bool:
        return self.bandwidth_gbps > 0.0

    @property
    def nic_active(self) -> bool:
        return self.nic_ring_size > 0 or self.irq_delay_ns > 0.0

    @property
    def cpu_active(self) -> bool:
        return (
            bool(self.stall_cores)
            and self.stall_period_ns > 0.0
            and self.stall_duration_ns > 0.0
        ) or self.softirq_entry_extra_ns > 0.0 or self.ipi_delay_ns > 0.0

    @property
    def blackout_active(self) -> bool:
        return self.blackout_branch >= 0 and self.blackout_duration_ns > 0.0

    @property
    def active(self) -> bool:
        """True when the plan injects anything at all."""
        return (
            self.wire_active
            or self.bandwidth_clamped
            or self.nic_active
            or self.cpu_active
            or self.blackout_active
        )

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        for f in ("loss_rate", "dup_rate", "corrupt_rate", "reorder_rate"):
            v = getattr(self, f)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{f} must be in [0, 1], got {v}")
        for f in (
            "reorder_delay_ns", "jitter_ns", "bandwidth_gbps", "irq_delay_ns",
            "stall_period_ns", "stall_duration_ns", "softirq_entry_extra_ns",
            "ipi_delay_ns", "blackout_start_ns", "blackout_duration_ns",
            "start_ns", "stop_ns",
        ):
            if getattr(self, f) < 0.0:
                raise ValueError(f"{f} must be >= 0, got {getattr(self, f)}")
        if self.nic_ring_size < 0:
            raise ValueError(f"nic_ring_size must be >= 0, got {self.nic_ring_size}")
        if self.watchdog_period_ns <= 0.0:
            raise ValueError("watchdog_period_ns must be positive")
        if self.stall_cores and self.stall_period_ns > 0.0:
            if self.stall_duration_ns > self.stall_period_ns:
                raise ValueError("stall_duration_ns must not exceed stall_period_ns")
        if self.stop_ns and self.stop_ns <= self.start_ns:
            raise ValueError("stop_ns must be 0 (open-ended) or > start_ns")

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict, suitable for embedding in RunSpec params."""
        out = asdict(self)
        out["stall_cores"] = list(self.stall_cores)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {unknown}")
        kwargs = dict(data)
        if "stall_cores" in kwargs:
            kwargs["stall_cores"] = tuple(int(c) for c in kwargs["stall_cores"])
        plan = cls(**kwargs)
        plan.validate()
        return plan

    def describe(self) -> str:
        """One-line summary of the non-default knobs (for ``faults list``)."""
        parts = []
        for f in fields(self):
            if f.name == "name":
                continue
            v = getattr(self, f.name)
            if v != f.default:
                parts.append(f"{f.name}={v}")
        return " ".join(parts) if parts else "no faults (inert)"


FaultPlanLike = Union[None, str, Mapping[str, Any], FaultPlan]


#: named plans selectable via ``--fault-plan`` and ``repro faults list``
PLANS: Dict[str, FaultPlan] = {
    p.name: p
    for p in (
        FaultPlan(name="clean"),
        FaultPlan(name="loss1", loss_rate=0.01),
        FaultPlan(name="loss5", loss_rate=0.05),
        FaultPlan(name="dup1", dup_rate=0.01),
        FaultPlan(name="corrupt1", corrupt_rate=0.01),
        FaultPlan(
            name="jitter",
            reorder_rate=0.10, reorder_delay_ns=50_000.0, jitter_ns=2_000.0,
        ),
        FaultPlan(name="slow-link", bandwidth_gbps=5.0),
        FaultPlan(name="ring-squeeze", nic_ring_size=64),
        FaultPlan(name="irq-delay", irq_delay_ns=50_000.0),
        FaultPlan(
            name="noisy-core",
            stall_cores=(1, 2, 3),
            stall_period_ns=500_000.0, stall_duration_ns=150_000.0,
        ),
        FaultPlan(
            name="branch-blackout",
            blackout_branch=1,
            blackout_start_ns=2_000_000.0, blackout_duration_ns=2_000_000.0,
        ),
        FaultPlan(
            name="chaos",
            loss_rate=0.01, dup_rate=0.002, reorder_rate=0.05,
            reorder_delay_ns=40_000.0, jitter_ns=1_000.0,
            stall_cores=(2,), stall_period_ns=1_000_000.0,
            stall_duration_ns=200_000.0,
        ),
    )
}


def resolve_fault_plan(value: FaultPlanLike) -> Optional[FaultPlan]:
    """Normalize a plan reference (name / dict / instance / None).

    Returns ``None`` both for ``None`` and for an inert plan — callers can
    treat "no plan" and "plan that does nothing" identically, which is
    what makes the zero-fault bit-identity guarantee trivial to audit.
    """
    if value is None:
        return None
    if isinstance(value, FaultPlan):
        plan = value
    elif isinstance(value, str):
        if value not in PLANS:
            raise KeyError(
                f"unknown fault plan {value!r}; known plans: {sorted(PLANS)}"
            )
        plan = PLANS[value]
    elif isinstance(value, Mapping):
        plan = FaultPlan.from_dict(value)
    else:
        raise TypeError(f"cannot interpret {type(value).__name__} as a FaultPlan")
    plan.validate()
    return plan if plan.active else None
