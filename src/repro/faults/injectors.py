"""Runtime fault injectors: a compiled :class:`FaultPlan`.

One :class:`FaultInjectors` instance per scenario owns all fault state:
a dedicated RNG substream (``"faults/<salt>"`` — independent of every
other stream, so enabling faults never perturbs workload randomness),
the plan's time window, and the per-layer hook entry points:

* :meth:`wire_frame_fate` — called by :class:`~repro.netstack.nic.Wire`
  for each frame; decides corrupt/loss/dup/reorder/jitter in one fixed
  draw order so schedules replay bit-identically for a given seed+plan;
* :meth:`apply_to_nic` — ring shrink and softirq-starvation knobs,
  applied once at scenario build time;
* :meth:`irq_fire_delay` — extra latency before the IRQ top half runs;
* :meth:`schedule_core_stalls` — periodic "noisy neighbour" busy windows
  submitted as tagged work (shows up as ``fault_stall`` in breakdowns);
* :meth:`blackout_drop` — post-split branch blackout, suppressed for
  quarantined flows (their traffic no longer crosses the dead branch).

Every injected event increments a ``fault_*`` telemetry counter so the
runner's JSON artifacts carry the full fault ledger.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.netstack.packet import FlowKey, Packet
from repro.faults.plan import FaultPlan


def clone_packet(pkt: Packet) -> Packet:
    """An independent copy of a wire frame (for duplication injection).

    Arrival metadata (``arrival_ts``/``wire_seq``) is stamped per copy by
    the NIC, so only the sender-side fields are carried over.
    """
    copy = Packet(
        pkt.flow,
        pkt.payload,
        seq=pkt.seq,
        msg_id=pkt.msg_id,
        frag_index=pkt.frag_index,
        frag_count=pkt.frag_count,
        encap=pkt.encap,
        messages_completed=pkt.messages_completed,
    )
    copy.send_ts = pkt.send_ts
    return copy


class FaultInjectors:
    """Compiled fault plan bound to one scenario's sim / RNG / telemetry."""

    def __init__(self, plan: FaultPlan, sim, rngs, telemetry):
        plan.validate()
        self.plan = plan
        self.sim = sim
        self.telemetry = telemetry
        #: dedicated substream: fault draws never touch workload streams
        self._rng = rngs.stream(f"faults/{plan.seed_salt}")
        self.active = plan.active
        self.wire_active = plan.wire_active
        self._quarantine_check: Optional[Callable[[FlowKey], bool]] = None
        #: stall ticks stop re-arming past this horizon (set by the scenario)
        self.stall_horizon_ns: float = float("inf")
        #: optional FlightRecorder — None (the default) disables all probes
        self.obs = None

    # -------------------------------------------------------------- windowing
    def in_window(self, now: Optional[float] = None) -> bool:
        t = self.sim.now if now is None else now
        if t < self.plan.start_ns:
            return False
        return self.plan.stop_ns <= 0.0 or t < self.plan.stop_ns

    # ------------------------------------------------------------------- wire
    def wire_frame_fate(self, pkt: Packet) -> List[Tuple[Packet, float]]:
        """Decide one frame's fate: ``[(frame, extra_delay_ns), ...]``.

        Empty list = dropped.  Draw order is fixed (corrupt, loss, dup,
        then per-delivery jitter/reorder) and draws happen only for
        enabled faults, so a plan consumes a deterministic number of
        variates per frame.
        """
        p = self.plan
        rng = self._rng
        if p.corrupt_rate > 0.0 and rng.random() < p.corrupt_rate:
            self.telemetry.count("fault_corrupt_frames")
            self._probe("fault_corrupt")
            return []
        if p.loss_rate > 0.0 and rng.random() < p.loss_rate:
            self.telemetry.count("fault_lost_frames")
            self._probe("fault_loss")
            return []
        deliveries = [pkt]
        if p.dup_rate > 0.0 and rng.random() < p.dup_rate:
            self.telemetry.count("fault_dup_frames")
            self._probe("fault_dup")
            deliveries.append(clone_packet(pkt))
        out: List[Tuple[Packet, float]] = []
        for frame in deliveries:
            extra = 0.0
            if p.jitter_ns > 0.0:
                extra += float(rng.random()) * p.jitter_ns
            if p.reorder_rate > 0.0 and rng.random() < p.reorder_rate:
                extra += p.reorder_delay_ns
                self.telemetry.count("fault_reordered_frames")
                self._probe("fault_reorder", delay_ns=p.reorder_delay_ns)
            out.append((frame, extra))
        return out

    def _probe(self, name: str, core: int = -1, **fields) -> None:
        if self.obs is not None:
            self.obs.instant(name, core=core, **fields)

    def link_gbps(self, configured_gbps: float) -> float:
        """The effective line rate under the plan's bandwidth clamp."""
        p = self.plan
        if p.bandwidth_gbps > 0.0 and self.in_window():
            return min(configured_gbps, p.bandwidth_gbps)
        return configured_gbps

    # -------------------------------------------------------------------- NIC
    def apply_to_nic(self, nic) -> None:
        """Build-time NIC degradation: ring shrink + softirq knobs."""
        p = self.plan
        for queue in nic._queues:
            if p.nic_ring_size > 0:
                queue.ring.size = min(queue.ring.size, p.nic_ring_size)
            if p.softirq_entry_extra_ns > 0.0:
                queue.napi.entry_cost_ns += p.softirq_entry_extra_ns
            if p.ipi_delay_ns > 0.0:
                queue.napi.ipi_delay_ns = p.ipi_delay_ns

    def irq_fire_delay(self) -> float:
        """Extra ns between frame arrival and the IRQ top half (0 = none)."""
        if self.plan.irq_delay_ns > 0.0 and self.in_window():
            self.telemetry.count("fault_delayed_irqs")
            self._probe("fault_irq_delay", delay_ns=self.plan.irq_delay_ns)
            return self.plan.irq_delay_ns
        return 0.0

    # -------------------------------------------------------------------- CPU
    def schedule_core_stalls(self, cpus) -> None:
        """Arm the periodic noisy-neighbour stall on each targeted core."""
        p = self.plan
        if not (p.stall_cores and p.stall_period_ns > 0.0 and p.stall_duration_ns > 0.0):
            return
        for idx in p.stall_cores:
            if 0 <= idx < len(cpus):
                self.sim.call_at(max(p.start_ns, 0.0), self._stall_tick, cpus[idx])

    def _stall_tick(self, core) -> None:
        p = self.plan
        if self.sim.now >= self.stall_horizon_ns:
            return
        if p.stop_ns > 0.0 and self.sim.now >= p.stop_ns:
            return
        if self.in_window():
            self.telemetry.count("fault_core_stalls")
            self._probe("fault_core_stall", core=core.id,
                        duration_ns=p.stall_duration_ns)
            core.submit_call("fault_stall", p.stall_duration_ns, _noop)
        self.sim.call_in(p.stall_period_ns, self._stall_tick, core)

    # --------------------------------------------------------- branch blackout
    def set_quarantine_check(self, check: Callable[[FlowKey], bool]) -> None:
        """Blackout drops are suppressed for flows ``check`` deems
        quarantined: their traffic was re-steered off the dead branch."""
        self._quarantine_check = check

    def blackout_live(self) -> bool:
        p = self.plan
        if not p.blackout_active:
            return False
        now = self.sim.now
        return p.blackout_start_ns <= now < p.blackout_start_ns + p.blackout_duration_ns

    def blackout_drop(self, skb) -> bool:
        """True when ``skb`` vanishes into the blacked-out branch."""
        if skb.branch != self.plan.blackout_branch or not self.blackout_live():
            return False
        if self._quarantine_check is not None and self._quarantine_check(skb.flow):
            return False
        self.telemetry.count("fault_branch_blackout", skb.segs)
        self._probe("fault_blackout_drop", branch=skb.branch, segs=skb.segs)
        return True

    # ---------------------------------------------------------------- summary
    def summary(self) -> dict:
        """The run's fault ledger: every ``fault_*`` telemetry counter."""
        return {
            k: v for k, v in self.telemetry.counters.items() if k.startswith("fault_")
        }


def _noop() -> None:
    return None
