"""In-run packet-conservation watchdog.

Re-runs :func:`repro.analysis.conservation.check_conservation` every
``period_ns`` of sim time while a fault plan is active, so a counting
bug introduced by an injected fault (double delivery after duplication,
an unaccounted drop path) surfaces *at fault time* with a timestamp,
instead of as a mysterious gap at reduce time.  Violations are recorded
as structured events and as ``conservation_violations`` telemetry.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.analysis.conservation import ConservationReport, check_conservation


class ConservationWatchdog:
    """Periodic invariant checks over a live scenario's counters."""

    def __init__(
        self,
        sim,
        telemetry,
        proto: str,
        sent_packets: Callable[[], int],
        period_ns: float = 1_000_000.0,
        in_flight_slack: int = 4096,
    ):
        if period_ns <= 0.0:
            raise ValueError("watchdog period must be positive")
        self.sim = sim
        self.telemetry = telemetry
        self.proto = proto
        self.sent_packets = sent_packets
        self.period_ns = period_ns
        self.in_flight_slack = in_flight_slack
        self.checks = 0
        self.violations: List[Dict] = []

    def arm(self) -> None:
        self.sim.call_in(self.period_ns, self._tick)

    def _report(self) -> ConservationReport:
        return check_conservation(
            self.telemetry.counters,
            self.sent_packets(),
            self.proto,
            in_flight_estimate=self.in_flight_slack,
        )

    def check_now(self) -> ConservationReport:
        """One check at the current sim time (also used as the final check)."""
        self.checks += 1
        self.telemetry.count("conservation_checks")
        report = self._report()
        if not report.ok():
            self.telemetry.count("conservation_violations")
            self.violations.append(
                {
                    "t_ns": self.sim.now,
                    "sent": report.sent_packets,
                    "received_at_nic": report.received_at_nic,
                    "delivered": report.delivered_segments,
                    "unaccounted": report.unaccounted,
                }
            )
        return report

    def _tick(self) -> None:
        self.check_now()
        self.sim.call_in(self.period_ns, self._tick)
