"""Per-flow MFLOW health monitoring and graceful degradation.

Packet-level parallelism buys throughput at the price of a fragile merge
point: under loss, reordering or a stalled branch core, the reassembler
burns through its liveness escapes (merge skips, parked-skb pressure)
instead of making clean progress.  The :class:`FlowHealthMonitor`
periodically inspects each flow's merge state and branch cores and, when
a flow looks sick, *quarantines* it: the policy re-steers every stage of
that flow onto its dispatch core — operationally vanilla single-core
steering, which cannot deadlock on a missing micro-flow because arrivals
are serialized end to end.  A quarantined flow that stays clean for
``readmit_clean_checks`` consecutive checks is re-admitted to split
processing (hysteresis, so a marginal flow does not flap every check).

Telemetry: ``mflow_degraded`` / ``mflow_readmitted`` counters plus a
structured ``events`` list the scenario exports into run records.
"""

from __future__ import annotations

from typing import Dict, List

from repro.netstack.packet import FlowKey


def flow_label(flow: FlowKey) -> str:
    return f"{flow.src}:{flow.sport}->{flow.dst}:{flow.dport}/{flow.proto}"


class FlowHealthMonitor:
    """Watches merge-skip storms, parked pressure, and branch stalls."""

    def __init__(
        self,
        policy,
        sim,
        telemetry,
        check_interval_ns: float = 500_000.0,
        skip_storm_threshold: int = 3,
        parked_threshold: int = 0,
        stall_depth_threshold: int = 2048,
        readmit_clean_checks: int = 10,
    ):
        if check_interval_ns <= 0.0:
            raise ValueError("check interval must be positive")
        self.policy = policy
        self.merge = policy.merge_stage
        self.sim = sim
        self.telemetry = telemetry
        self.check_interval_ns = check_interval_ns
        #: cumulative merge skips (since the last state change) that mark a
        #: flow as sick — healthy merges skip exactly never
        self.skip_storm_threshold = skip_storm_threshold
        #: parked skbs that mark the merge as pressured; default derives
        #: from the stage's own stall threshold
        self.parked_threshold = parked_threshold or max(
            64, self.merge.stall_skbs // 2
        )
        #: branch-core run-queue depth treated as a stall signal; healthy
        #: mflow branches burst to a few hundred entries, a stalled core
        #: accumulates without bound
        self.stall_depth_threshold = stall_depth_threshold
        self.readmit_clean_checks = readmit_clean_checks
        self._skips_at_transition: Dict[FlowKey, int] = {}
        self._clean_streak: Dict[FlowKey, int] = {}
        self.events: List[dict] = []
        #: per-flow transition tallies (run-record summary; the ``events``
        #: list has the full timeline, this is the cheap-to-scan rollup)
        self.counts: Dict[str, Dict[str, int]] = {}
        self.checks = 0
        #: optional FlightRecorder — None (the default) disables all probes
        self.obs = None

    def arm(self) -> None:
        self.sim.call_in(self.check_interval_ns, self._tick)

    # ------------------------------------------------------------- inspection
    def _branch_stalled(self, flow: FlowKey) -> bool:
        for core in self.policy.branch_cores_for(flow):
            if core.queue_depth >= self.stall_depth_threshold:
                return True
        return False

    def _sick_reason(self, flow: FlowKey, state) -> str:
        skips = state.skips - self._skips_at_transition.get(flow, 0)
        if skips >= self.skip_storm_threshold:
            return "merge_skip_storm"
        if state.parked >= self.parked_threshold:
            return "parked_pressure"
        if self._branch_stalled(flow):
            return "branch_stall"
        return ""

    # ------------------------------------------------------------ transitions
    def _degrade(self, flow: FlowKey, state, reason: str) -> None:
        if not self.policy.quarantine_flow(flow):
            return
        self._skips_at_transition[flow] = state.skips
        self._clean_streak[flow] = 0
        self.telemetry.count("mflow_degraded")
        self._bump(flow, "quarantined")
        self.events.append(
            {
                "t_ns": self.sim.now,
                "event": "mflow_degraded",
                "flow": flow_label(flow),
                "reason": reason,
                "merge_skips": state.skips,
                "parked": state.parked,
            }
        )
        if self.obs is not None:
            self.obs.instant(
                "mflow_degraded", flow=flow_label(flow), reason=reason,
                merge_skips=state.skips, parked=state.parked,
            )

    def _readmit(self, flow: FlowKey, state) -> None:
        if not self.policy.readmit_flow(flow):
            return
        self._skips_at_transition[flow] = state.skips
        self._clean_streak[flow] = 0
        self.telemetry.count("mflow_readmitted")
        self._bump(flow, "readmitted")
        self.events.append(
            {
                "t_ns": self.sim.now,
                "event": "mflow_readmitted",
                "flow": flow_label(flow),
            }
        )
        if self.obs is not None:
            self.obs.instant("mflow_readmitted", flow=flow_label(flow))

    def _bump(self, flow: FlowKey, what: str) -> None:
        per_flow = self.counts.setdefault(
            flow_label(flow), {"quarantined": 0, "readmitted": 0}
        )
        per_flow[what] += 1

    def check_once(self) -> None:
        """One health pass over every flow the merge has seen."""
        self.checks += 1
        for flow, state in list(self.merge.iter_flows()):
            if self.policy.is_quarantined(flow):
                reason = self._sick_reason(flow, state)
                if reason:
                    # still sick: restart the clean streak and re-baseline
                    # skips so recovery is measured from now
                    self._clean_streak[flow] = 0
                    self._skips_at_transition[flow] = state.skips
                    continue
                streak = self._clean_streak.get(flow, 0) + 1
                self._clean_streak[flow] = streak
                if streak >= self.readmit_clean_checks:
                    self._readmit(flow, state)
            else:
                reason = self._sick_reason(flow, state)
                if reason:
                    self._degrade(flow, state, reason)

    def _tick(self) -> None:
        self.check_once()
        self.sim.call_in(self.check_interval_ns, self._tick)
