"""Bounded FIFO queues and fixed-size ring buffers.

:class:`FifoQueue` is the general packet queue used between processing
stages (per-core backlogs, socket queues, MFLOW buffer queues).  It is
callback-reactive: a consumer registers ``on_put`` to be poked when the
queue transitions from empty to non-empty, which is how softirq handlers
get (re)armed.

:class:`RingBuffer` models a NIC descriptor ring: fixed capacity,
drop-on-full semantics, drop counting.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """Raised by :meth:`FifoQueue.put` when the queue is at capacity."""


class FifoQueue(Generic[T]):
    """Unbounded-or-bounded FIFO with drop accounting and wakeup callback."""

    __slots__ = ("name", "capacity", "_items", "drops", "puts", "gets", "_on_first_put")

    def __init__(
        self,
        name: str = "queue",
        capacity: Optional[int] = None,
        on_first_put: Optional[Callable[["FifoQueue[T]"], None]] = None,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.drops = 0
        self.puts = 0
        self.gets = 0
        self._on_first_put = on_first_put

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: T) -> None:
        """Enqueue, raising :class:`QueueFullError` at capacity."""
        if self.full:
            self.drops += 1
            raise QueueFullError(f"{self.name} full (capacity={self.capacity})")
        was_empty = not self._items
        self._items.append(item)
        self.puts += 1
        if was_empty and self._on_first_put is not None:
            self._on_first_put(self)

    def try_put(self, item: T) -> bool:
        """Enqueue unless full; returns False (and counts a drop) when full."""
        if self.full:
            self.drops += 1
            return False
        was_empty = not self._items
        self._items.append(item)
        self.puts += 1
        if was_empty and self._on_first_put is not None:
            self._on_first_put(self)
        return True

    def get(self) -> T:
        """Dequeue the head item; raises IndexError when empty."""
        item = self._items.popleft()
        self.gets += 1
        return item

    def peek(self) -> Optional[T]:
        """Head item without removing it, or None when empty."""
        return self._items[0] if self._items else None

    def drain(self, max_items: Optional[int] = None) -> List[T]:
        """Dequeue up to ``max_items`` (all, when None) as a list."""
        n = len(self._items) if max_items is None else min(max_items, len(self._items))
        out = [self._items.popleft() for _ in range(n)]
        self.gets += n
        return out

    def set_wakeup(self, cb: Optional[Callable[["FifoQueue[T]"], None]]) -> None:
        """Install/replace the empty→non-empty transition callback."""
        self._on_first_put = cb

    def stats(self) -> dict:
        """Traffic snapshot (consumed by the self-profiler's queue report)."""
        return {
            "name": self.name,
            "kind": "fifo",
            "depth": len(self._items),
            "capacity": self.capacity,
            "puts": self.puts,
            "gets": self.gets,
            "drops": self.drops,
        }


class RingBuffer(Generic[T]):
    """NIC-style descriptor ring: fixed slots, tail-drop, drop counter."""

    __slots__ = ("name", "size", "_items", "drops", "total_enqueued")

    def __init__(self, name: str, size: int):
        if size <= 0:
            raise ValueError(f"ring size must be positive, got {size}")
        self.name = name
        self.size = size
        self._items: Deque[T] = deque()
        self.drops = 0
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.size

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item: T) -> bool:
        """Add a descriptor; returns False and counts a drop when full."""
        if self.full:
            self.drops += 1
            return False
        self._items.append(item)
        self.total_enqueued += 1
        return True

    def pop(self) -> T:
        """Remove and return the oldest descriptor."""
        return self._items.popleft()

    def pop_up_to(self, budget: int) -> List[T]:
        """Remove and return at most ``budget`` oldest descriptors."""
        n = min(budget, len(self._items))
        return [self._items.popleft() for _ in range(n)]

    def stats(self) -> dict:
        """Traffic snapshot (consumed by the self-profiler's queue report)."""
        return {
            "name": self.name,
            "kind": "ring",
            "depth": len(self._items),
            "capacity": self.size,
            "puts": self.total_enqueued,
            "gets": self.total_enqueued - len(self._items),
            "drops": self.drops,
        }
