"""Per-packet path tracing.

Wraps a :class:`~repro.netstack.pipeline.Pipeline` to record, for a
sample of skbs, the timestamp and core at every stage hop — the tool for
answering "where does the time go?" questions (it found two real
modeling bugs during this reproduction: per-stage queue inflation and
merge-boundary stalls).

Usage::

    tracer = PathTracer(pipeline, sim, max_traces=1000, start_ns=2e6)
    tracer.install()
    ... run ...
    print(tracer.hop_report())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class HopStat:
    """Latency statistics for one stage→stage hop."""

    __slots__ = ("src", "dst", "samples_ns")

    def __init__(self, src: str, dst: str):
        self.src = src
        self.dst = dst
        self.samples_ns: List[float] = []

    @property
    def mean_us(self) -> float:
        return float(np.mean(self.samples_ns)) / 1e3 if self.samples_ns else 0.0

    @property
    def p90_us(self) -> float:
        return float(np.percentile(self.samples_ns, 90)) / 1e3 if self.samples_ns else 0.0

    @property
    def count(self) -> int:
        return len(self.samples_ns)


class PathTracer:
    """Samples skb journeys through a pipeline."""

    def __init__(self, pipeline, sim, max_traces: int = 2000, start_ns: float = 0.0):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.pipeline = pipeline
        self.sim = sim
        self.max_traces = max_traces
        self.start_ns = start_ns
        # keyed by skb.trace_id, assigned monotonically on first sight.
        # Never key by id(skb): CPython reuses object ids after GC, which
        # silently merged journeys of distinct skbs into one trace.
        self._traces: Dict[int, List[Tuple[str, float, int]]] = {}
        self._next_id = 0
        self._orig_inject = None
        self.installed = False

    # ----------------------------------------------------------- lifecycle
    def install(self) -> None:
        """Interpose on ``pipeline.inject`` (idempotent)."""
        if self.installed:
            return
        self._orig_inject = self.pipeline.inject
        tracer = self

        def traced_inject(node, skb, from_core, front=False):
            if node is not None and tracer.sim.now >= tracer.start_ns:
                tid = skb.trace_id
                if tid is None:
                    if len(tracer._traces) < tracer.max_traces:
                        tid = tracer._next_id
                        tracer._next_id += 1
                        skb.trace_id = tid
                elif tid >= tracer._next_id:
                    # id assigned by another tracker (journey tracker):
                    # adopt it and never hand out the same id ourselves
                    tracer._next_id = tid + 1
                if tid is not None:
                    tracer._traces.setdefault(tid, []).append(
                        (node.stage.name, tracer.sim.now, from_core.id if from_core else -1)
                    )
            return tracer._orig_inject(node, skb, from_core, front)

        self.pipeline.inject = traced_inject
        self.installed = True

    def uninstall(self) -> None:
        """Remove the interposer (idempotent); tracing stops immediately."""
        if self.installed:
            # drop the instance attribute so the class method shows through
            self.pipeline.__dict__.pop("inject", None)
            self.installed = False

    # ------------------------------------------------------------- results
    @property
    def n_traces(self) -> int:
        return len(self._traces)

    def hops(self) -> List[HopStat]:
        """Aggregate hop latencies across all sampled skbs, worst first."""
        agg: Dict[Tuple[str, str], HopStat] = {}
        for trace in self._traces.values():
            for (a, ta, _), (b, tb, _) in zip(trace, trace[1:]):
                stat = agg.get((a, b))
                if stat is None:
                    stat = agg[(a, b)] = HopStat(a, b)
                stat.samples_ns.append(tb - ta)
        return sorted(agg.values(), key=lambda s: -s.mean_us)

    def hop_report(self, top: Optional[int] = None) -> str:
        """Human-readable table of the slowest hops."""
        rows = self.hops()
        if top is not None:
            rows = rows[:top]
        if not rows:
            return "(no hops traced)"
        width = max(len(f"{s.src}->{s.dst}") for s in rows)
        lines = [f"{'hop':<{width}}  {'mean us':>8}  {'p90 us':>8}  {'n':>6}"]
        for s in rows:
            lines.append(
                f"{s.src + '->' + s.dst:<{width}}  {s.mean_us:8.2f}  "
                f"{s.p90_us:8.2f}  {s.count:6d}"
            )
        return "\n".join(lines)

    def path_of(self, nth: int = 0) -> List[Tuple[str, float, int]]:
        """The (stage, time, from_core) trace of the nth sampled skb."""
        keys = list(self._traces)
        if not keys:
            raise IndexError("no traces recorded")
        return self._traces[keys[nth]]
