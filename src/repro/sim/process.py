"""Generator-based simulated processes.

A process is a Python generator that yields *wait descriptors*:

* :class:`Timeout` — resume after a simulated delay;
* :class:`SimEvent` / :class:`WaitEvent` — resume when another actor
  triggers the event (optionally carrying a value);
* another :class:`Process` — resume when that process terminates.

Workload generators (sockperf clients, web-serving users, memcached
clients) are written in this style; the hot packet path uses plain
callbacks on the engine instead.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.engine import Simulator


class Timeout:
    """Wait descriptor: resume the process after ``delay_ns``."""

    __slots__ = ("delay_ns",)

    def __init__(self, delay_ns: float):
        if delay_ns < 0:
            raise ValueError(f"negative timeout: {delay_ns}")
        self.delay_ns = delay_ns


class SimEvent:
    """A one-shot level-triggered event that processes can wait on.

    ``trigger(value)`` wakes every waiter; waiting on an already-triggered
    event resumes immediately with the stored value.
    """

    __slots__ = ("sim", "_triggered", "_value", "_waiters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._triggered = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters at the current sim time."""
        if self._triggered:
            raise RuntimeError("SimEvent may only be triggered once")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.sim.sched_soon(cb, value)

    def _subscribe(self, cb: Callable[[Any], None]) -> None:
        if self._triggered:
            self.sim.sched_soon(cb, self._value)
        else:
            self._waiters.append(cb)


#: Alias kept for readability at yield sites: ``yield WaitEvent(ev)`` reads
#: better than yielding the event object itself, but both are accepted.
class WaitEvent:
    __slots__ = ("event",)

    def __init__(self, event: SimEvent):
        self.event = event


class Process:
    """Drives a generator as a simulated process.

    The generator receives the value of whatever it waited on via ``send``.
    When the generator returns, the process's :attr:`done` event triggers
    with the generator's return value.
    """

    def __init__(self, sim: Simulator, gen: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self.done = SimEvent(sim)
        self._failed: Optional[BaseException] = None
        sim.sched_soon(self._resume, None)

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def _resume(self, value: Any) -> None:
        if self.done.triggered:
            return
        try:
            wait = self._gen.send(value)
        except StopIteration as stop:
            self.done.trigger(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self._failed = exc
            raise
        self._wait_on(wait)

    def _wait_on(self, wait: Any) -> None:
        if isinstance(wait, Timeout):
            self.sim.sched_in(wait.delay_ns, self._resume, None)
        elif isinstance(wait, SimEvent):
            wait._subscribe(self._resume)
        elif isinstance(wait, WaitEvent):
            wait.event._subscribe(self._resume)
        elif isinstance(wait, Process):
            wait.done._subscribe(self._resume)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported wait {wait!r}"
            )


def spawn(sim: Simulator, gen: Generator, name: str = "proc") -> Process:
    """Convenience wrapper: start ``gen`` as a process on ``sim``."""
    return Process(sim, gen, name=name)
