"""Named, reproducible random-number substreams.

Every stochastic component (core speed jitter, workload think times,
hash functions) draws from its own named substream spawned from one root
seed, so adding a new random consumer never perturbs existing streams
and whole experiments replay bit-identically.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngStreams:
    """Factory of independent :class:`numpy.random.Generator` substreams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The substream is derived from ``(root_seed, name)`` only — the order
        in which streams are first requested does not matter.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive per-name entropy from the name bytes so stream identity
            # is positional-order independent.
            name_key = [b for b in name.encode("utf-8")]
            seq = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(name_key)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams
