"""Discrete-event simulation substrate.

Everything in this reproduction runs on the :class:`~repro.sim.engine.Simulator`:
a classic event-heap discrete-event engine with simulated time in nanoseconds.
Two programming styles are supported and freely mixed:

* **callback style** — ``sim.call_in(delay_ns, fn, *args)``; used by the
  packet-processing pipeline where millions of small events must be cheap.
* **process style** — Python generators wrapped by
  :class:`~repro.sim.process.Process` that ``yield`` :class:`Timeout` /
  :class:`WaitEvent` / queue operations; used by workload generators and
  application models where sequential logic reads better.
"""

from repro.sim.engine import Simulator
from repro.sim.process import Process, Timeout, WaitEvent, SimEvent
from repro.sim.queues import FifoQueue, RingBuffer, QueueFullError
from repro.sim.rng import RngStreams
from repro.sim.units import (
    GBPS,
    KIB,
    MIB,
    MSEC,
    SEC,
    USEC,
    bits_to_bytes,
    gbps,
    ns_per_byte_at_gbps,
)

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "WaitEvent",
    "SimEvent",
    "FifoQueue",
    "RingBuffer",
    "QueueFullError",
    "RngStreams",
    "GBPS",
    "KIB",
    "MIB",
    "MSEC",
    "SEC",
    "USEC",
    "bits_to_bytes",
    "gbps",
    "ns_per_byte_at_gbps",
]
