"""The discrete-event engine.

A single :class:`Simulator` instance owns the virtual clock and an event
heap.  Events are ``(time, seq, callback, args)`` tuples; ``seq`` is a
monotone tiebreaker so same-timestamp events fire in schedule order, which
keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. scheduling in the past)."""


class _Event:
    """A cancellable scheduled callback (returned by :meth:`Simulator.call_in`)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} {self.fn!r}{state}>"


class Simulator:
    """Event-heap discrete-event simulator with a nanosecond clock."""

    #: compaction only kicks in past this heap size (tiny heaps never pay it)
    COMPACT_MIN_EVENTS = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[_Event] = []
        self._seq: int = 0
        self._running = False
        self._cancelled: int = 0
        self.events_executed: int = 0
        #: optional :class:`repro.perf.selfprof.SelfProfiler`; when None
        #: (the default) the engine runs its original uninstrumented loop
        self.profiler: Optional[Any] = None
        #: optional :class:`repro.resilience.checkpoint.Checkpointer`;
        #: when None (the default) the original loop runs untouched, so
        #: the checkpoint-off path is bit-identical by construction
        self.checkpointer: Optional[Any] = None

    # ------------------------------------------------------------ persistence
    def __getstate__(self) -> dict:
        """Checkpoints snapshot the simulator mid-``run()``; a restored
        instance must be re-enterable, so the running flag is cleared."""
        state = self.__dict__.copy()
        state["_running"] = False
        return state

    def checkpoint_every(
        self,
        checkpointer: Optional[Any],
        *,
        sim_ns: Optional[float] = None,
        wall_s: Optional[float] = None,
    ) -> None:
        """Attach (or with ``None`` detach) a periodic checkpointer.

        ``sim_ns`` / ``wall_s`` override the checkpointer's own snapshot
        intervals when given.  Checkpointing and self-profiling both
        replace the run loop with an instrumented twin, so they are
        mutually exclusive.
        """
        if checkpointer is not None and self.profiler is not None:
            raise SimulationError(
                "checkpointing and self-profiling are mutually exclusive"
            )
        if checkpointer is not None:
            if sim_ns is not None:
                checkpointer.every_sim_ns = sim_ns
            if wall_s is not None:
                checkpointer.every_wall_s = wall_s
        self.checkpointer = checkpointer

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------- scheduling
    def call_in(self, delay_ns: float, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        return self.call_at(self._now + delay_ns, fn, *args)

    def call_at(self, time_ns: float, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ns} (now={self._now})"
            )
        ev = _Event(time_ns, self._seq, fn, args, sim=self)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        if self.profiler is not None:
            self.profiler.note_push(len(self._heap))
        return ev

    # ------------------------------------------------------ cancelled events
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once more than half of it is cancelled events.

        Long runs with many cancelled timers (e.g. per-packet timeouts that
        almost always get cancelled) would otherwise bloat the heap and slow
        every push/pop; compaction keeps it proportional to *live* events.
        """
        heap = self._heap
        if len(heap) < self.COMPACT_MIN_EVENTS or self._cancelled * 2 <= len(heap):
            return
        # in-place so the run() loop's local reference stays valid
        heap[:] = [ev for ev in heap if not ev.cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        if self.profiler is not None:
            self.profiler.note_compaction()

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` at the current time (after pending same-time events)."""
        return self.call_at(self._now, fn, *args)

    # ---------------------------------------------------------------- running
    def run(self, until_ns: Optional[float] = None) -> None:
        """Execute events until the heap is empty or the clock passes ``until_ns``.

        When ``until_ns`` is given, the clock is left exactly at ``until_ns``
        (events scheduled later stay on the heap), matching the convention of
        measurement windows: ``sim.run(until_ns=window_end)``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if self.profiler is not None:
                self._run_profiled(until_ns, self.profiler)
                return
            if self.checkpointer is not None:
                self._run_checkpointed(until_ns, self.checkpointer)
                return
            heap = self._heap
            while heap:
                ev = heap[0]
                if until_ns is not None and ev.time > until_ns:
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = ev.time
                self.events_executed += 1
                ev.fn(*ev.args)
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        finally:
            self._running = False

    def _run_profiled(self, until_ns: Optional[float], prof: Any) -> None:
        """The run loop's instrumented twin: identical event semantics,
        plus wall-clock attribution of every callback to its owner.

        Profiling reads :func:`time.perf_counter` but never feeds it back
        into the simulation, so simulated measurements are bit-identical
        with or without a profiler attached.
        """
        from time import perf_counter

        loop_started = perf_counter()
        heap = self._heap
        try:
            while heap:
                ev = heap[0]
                if until_ns is not None and ev.time > until_ns:
                    break
                heapq.heappop(heap)
                prof.heap_pops += 1
                if ev.cancelled:
                    self._cancelled -= 1
                    prof.cancelled_skips += 1
                    continue
                self._now = ev.time
                self.events_executed += 1
                started = perf_counter()
                ev.fn(*ev.args)
                prof.note_callback(ev.fn, perf_counter() - started)
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        finally:
            prof.run_wall_s += perf_counter() - loop_started

    def _run_checkpointed(self, until_ns: Optional[float], ckpt: Any) -> None:
        """The run loop's checkpointing twin: identical event semantics,
        plus a periodic snapshot of the owning object graph *between*
        events (never mid-callback, so every snapshot is consistent).

        Snapshots only read state — pickling mutates nothing — so
        measurements are bit-identical with or without checkpointing.
        """
        ckpt.begin(self)
        heap = self._heap
        while heap:
            ev = heap[0]
            if until_ns is not None and ev.time > until_ns:
                break
            heapq.heappop(heap)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self._now = ev.time
            self.events_executed += 1
            ev.fn(*ev.args)
            if ckpt.due(self._now):
                ckpt.save(self)
        if until_ns is not None and self._now < until_ns:
            self._now = until_ns

    def step(self) -> bool:
        """Execute a single event.  Returns False when no events remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self._now = ev.time
            self.events_executed += 1
            ev.fn(*ev.args)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the heap is drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones).

        Prefer :attr:`live_pending` when deciding whether real work remains;
        this raw count over-reports whenever cancelled timers linger.
        """
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Number of not-yet-cancelled events still on the heap."""
        return len(self._heap) - self._cancelled
