"""The discrete-event engine.

A single :class:`Simulator` instance owns the virtual clock and a
hierarchical timer wheel.  Entries are ``(time, seq, event)`` tuples;
``seq`` is a monotone tiebreaker so same-timestamp events fire in
schedule order, which keeps runs fully deterministic.  Tuples (not event
objects) are what the wheel stores and the heaps compare, so every
ordering operation runs at C speed.

Wheel layout (see docs/ENGINE.md for the full invariants):

* the **active heap** holds the slot currently being drained, plus any
  event scheduled at-or-before the cursor (``call_soon`` and zero-delay
  self-rescheduling land here);
* **L0** — 256 slots of 1024 ns — absorbs the dense softirq/NIC timer
  traffic with O(1) list appends;
* **L1** — 256 slots of 262144 ns — holds the mid-range timers (GRO
  flushes, merge progress checks) and cascades one slot at a time into
  L0 as the cursor crosses interval boundaries;
* the **overflow heap** takes far-future timers (beyond ~67 ms) and is
  promoted into the wheel whenever the window advances.

Every level orders identically by ``(time, seq)``: slot lists are
heapified when they become active, so the global fire order is exactly
the order a single sorted heap would produce, bit for bit.

Hot-path producers (cores, wires, softirq timers) schedule through the
no-handle :meth:`Simulator._sched` family, which draws events from a
free list and recycles them after firing — no per-event allocation or GC
pressure.  The public ``call_*`` API still returns cancellable events;
those are never recycled, so a held handle stays valid forever.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

#: _Event.state machine: PENDING -> FIRED (public events, terminal)
#:                       PENDING -> CANCELLED (terminal; skipped by run)
#:                       PENDING -> FREE (pooled events, recycled -> PENDING)
_PENDING = 0
_FIRED = 1
_CANCELLED = 2
_FREE = 3

# Wheel geometry.  L0 slot width is 2**10 ns so ``time * _INV_SLOT_NS``
# is an exact binary scaling (no float rounding can ever disagree with
# ``time // 1024``); one L1 slot covers one full L0 window.
_L0_BITS = 8
_L0_MASK = (1 << _L0_BITS) - 1
_L1_SLOTS = 1 << _L0_BITS
_SLOT_NS = 1024.0
_INV_SLOT_NS = 1.0 / _SLOT_NS


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. scheduling in the past)."""


class _Event:
    """A cancellable scheduled callback (returned by :meth:`Simulator.call_in`).

    ``gen`` counts recycles of a pooled event; a stale handle held across
    a recycle raises :class:`SimulationError` instead of silently
    cancelling whatever callback reused the object.
    """

    __slots__ = ("time", "seq", "fn", "args", "state", "gen", "pooled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.state = _PENDING
        self.gen = 0
        self.pooled = False
        self.sim = sim

    @property
    def cancelled(self) -> bool:
        return self.state == _CANCELLED

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent; cancelling an
        already-fired event is a harmless no-op."""
        state = self.state
        if state == _PENDING:
            self.state = _CANCELLED
            if self.sim is not None:
                self.sim._note_cancelled()
        elif state == _FREE:
            raise SimulationError(
                f"stale event handle: recycled {self.gen} generation(s) ago"
            )
        # _CANCELLED: idempotent; _FIRED: too late, nothing left to undo

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = {0: "", 1: " fired", 2: " cancelled", 3: " free"}
        return f"<Event t={self.time} seq={self.seq} {self.fn!r}{names[self.state]}>"


class Simulator:
    """Timer-wheel discrete-event simulator with a nanosecond clock."""

    #: compaction only kicks in past this pending count (tiny wheels never pay it)
    COMPACT_MIN_EVENTS = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._running = False
        self._cancelled: int = 0
        #: total entries across every wheel level (including cancelled)
        self._npending: int = 0
        #: heap draining the cursor slot; also takes at-or-before-cursor inserts
        self._active: List[tuple] = []
        self._slot0: List[list] = [[] for _ in range(_L1_SLOTS)]
        self._slot1: List[list] = [[] for _ in range(_L1_SLOTS)]
        #: far-future overflow, a plain (time, seq, ev) heap
        self._far: List[tuple] = []
        #: absolute L0 index covered by the active heap
        self._cur0: int = 0
        #: absolute L1 index whose interval L0 currently expands
        self._cur1: int = 0
        #: entries resident in _slot1 (skips the scan when zero)
        self._n1: int = 0
        #: free list of recycled internal events (see _sched)
        self._pool: List[_Event] = []
        self.events_executed: int = 0
        #: optional :class:`repro.perf.selfprof.SelfProfiler`; when None
        #: (the default) the engine runs its original uninstrumented loop
        self.profiler: Optional[Any] = None
        #: optional :class:`repro.resilience.checkpoint.Checkpointer`;
        #: when None (the default) the original loop runs untouched, so
        #: the checkpoint-off path is bit-identical by construction
        self.checkpointer: Optional[Any] = None

    # ------------------------------------------------------------ persistence
    def __getstate__(self) -> dict:
        """Checkpoints snapshot the simulator mid-``run()``; a restored
        instance must be re-enterable, so the running flag is cleared."""
        state = self.__dict__.copy()
        state["_running"] = False
        return state

    def checkpoint_every(
        self,
        checkpointer: Optional[Any],
        *,
        sim_ns: Optional[float] = None,
        wall_s: Optional[float] = None,
    ) -> None:
        """Attach (or with ``None`` detach) a periodic checkpointer.

        ``sim_ns`` / ``wall_s`` override the checkpointer's own snapshot
        intervals when given.  Checkpointing and self-profiling both
        replace the run loop with an instrumented twin, so they are
        mutually exclusive.
        """
        if checkpointer is not None and self.profiler is not None:
            raise SimulationError(
                "checkpointing and self-profiling are mutually exclusive"
            )
        if checkpointer is not None:
            if sim_ns is not None:
                checkpointer.every_sim_ns = sim_ns
            if wall_s is not None:
                checkpointer.every_wall_s = wall_s
        self.checkpointer = checkpointer

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------- placement
    def _place(self, time_ns: float, seq: int, ev: _Event) -> int:
        """File one entry into the right wheel level; returns the level
        (0=active, 1=L0, 2=L1, 3=overflow) for profiler attribution.

        Does *not* touch the pending count — callers that insert a new
        event account for it; cascade/promotion moves must not.

        Kept in lockstep with the inlined copy in :meth:`_sched`.
        """
        idx0 = int(time_ns * _INV_SLOT_NS)
        if idx0 <= self._cur0:
            heappush(self._active, (time_ns, seq, ev))
            return 0
        idx1 = idx0 >> _L0_BITS
        if idx1 == self._cur1:
            self._slot0[idx0 & _L0_MASK].append((time_ns, seq, ev))
            return 1
        if idx1 - self._cur1 < _L1_SLOTS:
            self._slot1[idx1 & _L0_MASK].append((time_ns, seq, ev))
            self._n1 += 1
            return 2
        heappush(self._far, (time_ns, seq, ev))
        return 3

    # ------------------------------------------------------------- scheduling
    def call_in(self, delay_ns: float, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns} ns in the past")
        return self.call_at(self._now + delay_ns, fn, *args)

    def call_at(self, time_ns: float, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ns} (now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = _Event(time_ns, seq, fn, args, sim=self)
        level = self._place(time_ns, seq, ev)
        self._npending += 1
        if self.profiler is not None:
            self.profiler.note_push(self._npending, level)
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` at the current time (after pending same-time events)."""
        return self.call_at(self._now, fn, *args)

    # ------------------------------------------------- pooled hot-path variants
    def _sched(self, time_ns: float, fn: Callable[..., Any], args: Tuple) -> None:
        """No-handle scheduling for trusted internal producers.

        The event comes from the free list and is recycled right after
        firing, so the packet hot path (core completions, wire
        deliveries, softirq timers) allocates nothing per event.  No
        past-time validation and no handle is returned — callers that
        might cancel must use :meth:`call_at`.
        """
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time_ns
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.state = _PENDING
        else:
            ev = _Event(time_ns, seq, fn, args, sim=self)
            ev.pooled = True
        # inlined _place (kept in lockstep; the call costs more than the body)
        idx0 = int(time_ns * _INV_SLOT_NS)
        if idx0 <= self._cur0:
            heappush(self._active, (time_ns, seq, ev))
            level = 0
        else:
            idx1 = idx0 >> _L0_BITS
            if idx1 == self._cur1:
                self._slot0[idx0 & _L0_MASK].append((time_ns, seq, ev))
                level = 1
            elif idx1 - self._cur1 < _L1_SLOTS:
                self._slot1[idx1 & _L0_MASK].append((time_ns, seq, ev))
                self._n1 += 1
                level = 2
            else:
                heappush(self._far, (time_ns, seq, ev))
                level = 3
        self._npending += 1
        prof = self.profiler
        if prof is not None:
            prof.note_push(self._npending, level)

    def sched_in(self, delay_ns: float, fn: Callable[..., Any], *args: Any) -> None:
        """Pooled, no-handle :meth:`call_in` for internal timers."""
        self._sched(self._now + delay_ns, fn, args)

    def sched_at(self, time_ns: float, fn: Callable[..., Any], *args: Any) -> None:
        """Pooled, no-handle :meth:`call_at` for internal timers."""
        self._sched(time_ns, fn, args)

    def sched_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Pooled, no-handle :meth:`call_soon` for internal wakeups."""
        self._sched(self._now, fn, args)

    # ------------------------------------------------------ cancelled events
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._npending >= self.COMPACT_MIN_EVENTS
            and self._cancelled * 2 > self._npending
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every wheel level once more than
        half the pending set is dead.

        Long runs with many cancelled timers (e.g. per-packet timeouts that
        almost always get cancelled) would otherwise bloat the wheel and slow
        every slot drain; compaction keeps it proportional to *live* events.
        The active heap is rebuilt in place so the run() loop's local
        reference stays valid.
        """
        active = self._active
        active[:] = [e for e in active if not e[2].state]
        heapify(active)
        live = len(active)
        slot0 = self._slot0
        for i in range(_L1_SLOTS):
            s = slot0[i]
            if s:
                slot0[i] = s = [e for e in s if not e[2].state]
                live += len(s)
        n1 = 0
        slot1 = self._slot1
        for i in range(_L1_SLOTS):
            s = slot1[i]
            if s:
                slot1[i] = s = [e for e in s if not e[2].state]
                n1 += len(s)
        live += n1
        far = [e for e in self._far if not e[2].state]
        heapify(far)
        self._far = far
        live += len(far)
        self._n1 = n1
        self._npending = live
        self._cancelled = 0
        if self.profiler is not None:
            self.profiler.note_compaction()

    # ------------------------------------------------------- wheel advancement
    def _refill(self) -> bool:
        """Advance the cursor to the next occupied L0 slot and load it as
        the active heap.  Returns False when no events remain anywhere."""
        slot0 = self._slot0
        while True:
            end0 = (self._cur1 + 1) << _L0_BITS
            i = self._cur0 + 1
            while i < end0:
                s = slot0[i & _L0_MASK]
                if s:
                    self._cur0 = i
                    slot0[i & _L0_MASK] = []
                    if len(s) > 1:
                        heapify(s)
                    self._active = s
                    return True
                i += 1
            self._cur0 = end0 - 1
            if not self._advance_l1():
                return False

    def _advance_l1(self) -> bool:
        """Move to the next occupied L1 interval, cascading its slot into
        L0 — or, when L1 is empty, jump the whole window to the overflow
        heap's horizon and promote everything it now covers."""
        far = self._far
        if self._n1:
            slot1 = self._slot1
            j = self._cur1 + 1
            while True:  # _n1 > 0 guarantees a hit within the window
                s = slot1[j & _L0_MASK]
                if s:
                    break
                j += 1
            jumped = False
        elif far:
            j = int(far[0][0] * _INV_SLOT_NS) >> _L0_BITS
            s = None
            jumped = True
        else:
            return False
        self._cur1 = j
        self._cur0 = (j << _L0_BITS) - 1
        place = self._place
        if s:
            self._slot1[j & _L0_MASK] = []
            self._n1 -= len(s)
            for t, seq, ev in s:
                place(t, seq, ev)  # lands in the freshly opened L0 window
        # promote overflow entries the advanced window now covers, so the
        # "far entries lie beyond the L1 horizon" invariant is restored
        if far:
            horizon = j + _L1_SLOTS
            while far and int(far[0][0] * _INV_SLOT_NS) >> _L0_BITS < horizon:
                t, seq, ev = heappop(far)
                place(t, seq, ev)
        if self.profiler is not None:
            self.profiler.note_cascade(jumped)
        return True

    def _pop_entry(self) -> Optional[tuple]:
        """Remove and return the globally earliest ``(time, seq, ev)``
        entry, or None when the wheel is empty.  Decrements the pending
        count; cancelled-entry bookkeeping is the caller's job."""
        active = self._active
        while not active:
            if not self._refill():
                return None
            active = self._active
        self._npending -= 1
        return heappop(active)

    # ---------------------------------------------------------------- running
    def run(self, until_ns: Optional[float] = None) -> None:
        """Execute events until the wheel is empty or the clock passes ``until_ns``.

        When ``until_ns`` is given, the clock is left exactly at ``until_ns``
        (events scheduled later stay on the wheel), matching the convention of
        measurement windows: ``sim.run(until_ns=window_end)``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if self.profiler is not None:
                self._run_profiled(until_ns, self.profiler)
                return
            if self.checkpointer is not None:
                self._run_checkpointed(until_ns, self.checkpointer)
                return
            until = float("inf") if until_ns is None else until_ns
            pop = heappop
            pool = self._pool
            active = self._active
            while True:
                if active:
                    entry = pop(active)
                    t = entry[0]
                    if t > until:
                        # no callback ran since the pop: reinserting the
                        # entry restores the exact pre-pop wheel state
                        self._place(t, entry[1], entry[2])
                        break
                    self._npending -= 1
                    ev = entry[2]
                    if ev.state:  # cancelled (only external handles can be)
                        self._cancelled -= 1
                        continue
                    self._now = t
                    self.events_executed += 1
                    fn = ev.fn
                    args = ev.args
                    if ev.pooled:
                        ev.fn = None
                        ev.args = None
                        ev.state = _FREE
                        ev.gen += 1
                        pool.append(ev)
                    else:
                        ev.state = _FIRED
                    fn(*args)
                else:
                    if not self._refill():
                        break
                    active = self._active
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        finally:
            self._running = False

    def _fire(self, entry: tuple) -> None:
        """Shared fire path of the instrumented twins: mark/recycle the
        event and invoke its callback.  Semantically identical to the
        inlined body in :meth:`run`."""
        ev = entry[2]
        self._now = entry[0]
        self.events_executed += 1
        fn = ev.fn
        args = ev.args
        if ev.pooled:
            ev.fn = None
            ev.args = None
            ev.state = _FREE
            ev.gen += 1
            self._pool.append(ev)
        else:
            ev.state = _FIRED
        fn(*args)

    def _run_profiled(self, until_ns: Optional[float], prof: Any) -> None:
        """The run loop's instrumented twin: identical event semantics,
        plus wall-clock attribution of every callback to its owner.

        Profiling reads :func:`time.perf_counter` but never feeds it back
        into the simulation, so simulated measurements are bit-identical
        with or without a profiler attached.
        """
        from time import perf_counter

        loop_started = perf_counter()
        try:
            while True:
                entry = self._pop_entry()
                if entry is None:
                    break
                prof.heap_pops += 1
                if until_ns is not None and entry[0] > until_ns:
                    self._place(entry[0], entry[1], entry[2])
                    self._npending += 1
                    prof.note_push(self._npending, 0)
                    break
                ev = entry[2]
                if ev.state:
                    self._cancelled -= 1
                    prof.cancelled_skips += 1
                    continue
                fn = ev.fn
                started = perf_counter()
                self._fire(entry)
                prof.note_callback(fn, perf_counter() - started)
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        finally:
            prof.run_wall_s += perf_counter() - loop_started

    def _run_checkpointed(self, until_ns: Optional[float], ckpt: Any) -> None:
        """The run loop's checkpointing twin: identical event semantics,
        plus a periodic snapshot of the owning object graph *between*
        events (never mid-callback, so every snapshot is consistent).

        Snapshots only read state — pickling mutates nothing — so
        measurements are bit-identical with or without checkpointing.
        """
        ckpt.begin(self)
        while True:
            entry = self._pop_entry()
            if entry is None:
                break
            if until_ns is not None and entry[0] > until_ns:
                self._place(entry[0], entry[1], entry[2])
                self._npending += 1
                break
            ev = entry[2]
            if ev.state:
                self._cancelled -= 1
                continue
            self._fire(entry)
            if ckpt.due(self._now):
                ckpt.save(self)
        if until_ns is not None and self._now < until_ns:
            self._now = until_ns

    def step(self) -> bool:
        """Execute a single event.  Returns False when no events remain."""
        while True:
            entry = self._pop_entry()
            if entry is None:
                return False
            if entry[2].state:
                self._cancelled -= 1
                continue
            self._fire(entry)
            return True

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the wheel is drained."""
        while True:
            entry = self._pop_entry()
            if entry is None:
                return None
            if entry[2].state:  # drop cancelled entries lazily, like run()
                self._cancelled -= 1
                continue
            self._place(entry[0], entry[1], entry[2])
            self._npending += 1
            return entry[0]

    @property
    def pending(self) -> int:
        """Number of events still on the wheel (including cancelled ones).

        Prefer :attr:`live_pending` when deciding whether real work remains;
        this raw count over-reports whenever cancelled timers linger.
        """
        return self._npending

    @property
    def live_pending(self) -> int:
        """Number of not-yet-cancelled events still on the wheel."""
        return self._npending - self._cancelled
