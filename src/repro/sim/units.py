"""Time and size units used across the simulator.

The simulator clock counts **nanoseconds** (floats).  These helpers keep
unit conversions explicit and greppable rather than scattering magic
constants through the packet pipeline.
"""

from __future__ import annotations

#: one microsecond, in simulator ticks (ns)
USEC: float = 1_000.0
#: one millisecond, in simulator ticks (ns)
MSEC: float = 1_000_000.0
#: one second, in simulator ticks (ns)
SEC: float = 1_000_000_000.0

#: kibibyte / mebibyte in bytes
KIB: int = 1024
MIB: int = 1024 * 1024

#: one gigabit per second expressed as bytes per nanosecond
GBPS: float = 1e9 / 8 / 1e9  # = 0.125 bytes/ns


def gbps(byte_count: float, duration_ns: float) -> float:
    """Convert a byte count over a duration (ns) into gigabits per second."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    return byte_count * 8.0 / duration_ns  # bytes/ns * 8 = Gbps exactly


def ns_per_byte_at_gbps(rate_gbps: float) -> float:
    """Serialization cost of one byte on a link of ``rate_gbps``."""
    if rate_gbps <= 0:
        raise ValueError(f"rate must be positive, got {rate_gbps}")
    return 8.0 / rate_gbps


def bits_to_bytes(bits: float) -> float:
    """Bit count to byte count."""
    return bits / 8.0
