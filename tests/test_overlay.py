"""Unit tests for overlay devices, datapath construction and namespaces."""

import pytest

from helpers import Harness, TEST_FLOW, make_skb
from repro.faults.plan import FaultPlan
from repro.netstack.costs import DEFAULT_COSTS
from repro.netstack.protocol.tcp import TcpDeliverStage, TcpReceiverStage
from repro.netstack.protocol.udp import UdpDeliverStage
from repro.netstack.stages import CountingSink
from repro.overlay.devices import (
    BridgeStage,
    OuterUdpDemuxStage,
    VethRxStage,
    VethXmitStage,
    VxlanDecapStage,
)
from repro.overlay.namespace import ContainerNamespace, OverlayNetwork
from repro.overlay.topology import DatapathKind, build_datapath_stages


class TestDevices:
    def test_vxlan_decapsulates(self):
        sink = CountingSink()
        h = Harness([VxlanDecapStage(), sink], mapping={"vxlan": 1})
        skb = make_skb(encap=True)
        assert skb.head.encap
        h.inject(skb)
        h.run()
        assert not sink.received[0].head.encap
        assert h.telemetry.get("vxlan_decapped") == skb.segs

    def test_vxlan_cost_is_heavyweight(self):
        sink = CountingSink()
        h = Harness([VxlanDecapStage(), sink], mapping={"vxlan": 1})
        h.inject(make_skb(encap=True))
        h.run()
        assert h.cpus[1].busy_ns["vxlan"] == pytest.approx(DEFAULT_COSTS.vxlan_decap_ns)

    @pytest.mark.parametrize(
        "stage_cls,name,attr",
        [
            (BridgeStage, "bridge", "bridge_fwd_ns"),
            (VethXmitStage, "veth_xmit", "veth_xmit_ns"),
            (VethRxStage, "veth_rx", "veth_rx_ns"),
            (OuterUdpDemuxStage, "udp_outer", "udp_rcv_outer_ns"),
        ],
    )
    def test_passthrough_devices(self, stage_cls, name, attr):
        sink = CountingSink()
        h = Harness([stage_cls(), sink], mapping={name: 1})
        h.inject(make_skb())
        h.run()
        assert len(sink.received) == 1
        assert h.cpus[1].busy_ns[name] == pytest.approx(getattr(DEFAULT_COSTS, attr))


class TestDatapathConstruction:
    def test_native_tcp_stage_order(self):
        names = [s.name for s in build_datapath_stages(DatapathKind.NATIVE, "tcp")]
        assert names == ["skb_alloc", "gro", "ip_rcv", "tcp_rcv", "tcp_deliver"]

    def test_overlay_tcp_stage_order(self):
        names = [s.name for s in build_datapath_stages(DatapathKind.OVERLAY, "tcp")]
        assert names == [
            "skb_alloc",
            "gro",
            "ip_outer",
            "udp_outer",
            "vxlan",
            "bridge",
            "veth_xmit",
            "veth_rx",
            "ip_inner",
            "tcp_rcv",
            "tcp_deliver",
        ]

    def test_overlay_udp_terminates_in_udp(self):
        names = [s.name for s in build_datapath_stages(DatapathKind.OVERLAY, "udp")]
        assert names[-2:] == ["udp_rcv", "udp_deliver"]

    def test_injected_instances_used(self):
        rcv = TcpReceiverStage()
        dlv = TcpDeliverStage()
        stages = build_datapath_stages(
            DatapathKind.NATIVE, "tcp", tcp_receiver=rcv, tcp_deliver=dlv
        )
        assert stages[-2] is rcv
        assert stages[-1] is dlv

    def test_udp_deliver_instance_used(self):
        dlv = UdpDeliverStage()
        stages = build_datapath_stages(DatapathKind.NATIVE, "udp", udp_deliver=dlv)
        assert stages[-1] is dlv

    def test_invalid_proto_rejected(self):
        with pytest.raises(ValueError):
            build_datapath_stages(DatapathKind.NATIVE, "sctp")

    def test_overlay_path_is_longer(self):
        native = build_datapath_stages(DatapathKind.NATIVE, "tcp")
        overlay = build_datapath_stages(DatapathKind.OVERLAY, "tcp")
        assert len(overlay) > len(native)


class TestNamespaces:
    def test_attach_allocates_private_ips(self):
        net = OverlayNetwork()
        a = net.attach("web")
        b = net.attach("db")
        assert a.private_ip != b.private_ip

    def test_duplicate_name_rejected(self):
        net = OverlayNetwork()
        net.attach("web")
        with pytest.raises(ValueError):
            net.attach("web")

    def test_lookup(self):
        net = OverlayNetwork()
        ns = net.attach("cache")
        assert net.lookup("cache") is ns
        with pytest.raises(KeyError):
            net.lookup("missing")

    def test_ephemeral_ports_monotonic(self):
        ns = ContainerNamespace("c", 42)
        p1, p2 = ns.ephemeral_port(), ns.ephemeral_port()
        assert p2 == p1 + 1


class TestNamespaceLifecycle:
    def test_freeze_restore_retire(self):
        ns = ContainerNamespace("c", 42)
        assert ns.state == "running"
        ns.freeze()
        assert ns.state == "frozen"
        ns.restore()
        assert ns.state == "running"
        ns.retire()
        assert ns.state == "retired"

    def test_double_freeze_raises(self):
        from repro.sim.engine import SimulationError

        ns = ContainerNamespace("c", 42)
        ns.freeze()
        with pytest.raises(SimulationError, match="cannot freeze"):
            ns.freeze()

    def test_restore_running_raises(self):
        from repro.sim.engine import SimulationError

        ns = ContainerNamespace("c", 42)
        with pytest.raises(SimulationError, match="cannot restore"):
            ns.restore()

    def test_retired_is_terminal(self):
        from repro.sim.engine import SimulationError

        ns = ContainerNamespace("c", 42)
        ns.retire()
        for op in (ns.freeze, ns.restore, ns.retire):
            with pytest.raises(SimulationError):
                op()

    def test_attach_frozen_destination(self):
        net = OverlayNetwork()
        dst = net.attach("dst", state="frozen")
        assert dst.state == "frozen"
        dst.restore()
        assert dst.state == "running"

    def test_attach_invalid_state_rejected(self):
        net = OverlayNetwork()
        with pytest.raises(ValueError):
            net.attach("x", state="retired")


class TestOverlayUnderFaults:
    """The overlay devices under wire fault plans: VxLAN decap and the
    bridge must keep conserving packets when the wire corrupts or
    reorders frames (satellite coverage riding the migration PR)."""

    WIN = {"warmup_ns": 0.5e6, "measure_ns": 2.0e6}

    def _run(self, plan, proto="tcp"):
        from repro.workloads.sockperf import run_single_flow

        return run_single_flow("vanilla", proto, 65536, faults=plan, **self.WIN)

    def test_vxlan_decap_under_corrupt_wire(self):
        plan = FaultPlan(name="corrupt", corrupt_rate=0.02)
        res = self._run(plan)
        assert res.fault_counters.get("fault_corrupt_frames", 0) > 0
        # corrupted frames die on the wire: they never reach the decap
        # stage, and everything that did decap is accounted for
        arrivals = res.counters["nic_rx_packets"] + res.counters.get(
            "nic_ring_drops", 0
        )
        assert res.counters["vxlan_decapped"] <= arrivals
        # frames that survived the wire still decapsulate (the stock TCP
        # sender never retransmits, so delivery itself may stall — the
        # device layer must stay lossless regardless)
        assert res.counters["vxlan_decapped"] > 0
        assert res.conservation_violations == 0

    def test_vxlan_decap_under_reordering_wire(self):
        plan = FaultPlan(
            name="reorder", reorder_rate=0.05, reorder_delay_ns=30_000.0,
            jitter_ns=1_000.0,
        )
        res = self._run(plan)
        assert res.fault_counters.get("fault_reordered_frames", 0) > 0
        # reordering delays but never destroys frames: every frame the
        # NIC accepted crossed the bridge and was decapsulated
        assert res.counters["vxlan_decapped"] > 0
        assert res.conservation_violations == 0
        assert res.messages_delivered > 0

    def test_bridge_conserves_under_corrupt_udp(self):
        plan = FaultPlan(name="corrupt", corrupt_rate=0.02)
        res = self._run(plan, proto="udp")
        assert res.fault_counters.get("fault_corrupt_frames", 0) > 0
        assert res.conservation_violations == 0
        assert res.messages_delivered > 0

    def test_clean_plan_matches_no_plan(self):
        baseline = self._run(None)
        clean = self._run(FaultPlan(name="clean"))
        assert clean.throughput_gbps == baseline.throughput_gbps
        assert clean.messages_delivered == baseline.messages_delivered
        assert dict(clean.counters) == dict(baseline.counters)
