"""Live container migration: plans, hash ring, balancer, cutover, records.

The hard guarantees under test:

* **inert bit-identity** — attaching an inert :class:`MigrationPlan` (or
  ``None``) leaves the scenario's object graph and every record byte
  untouched: no balancer stage, no namespaces, no scheduled events;
* **ride-through** — every overlay steering system survives the
  ``default`` mid-run cutover with zero connection drops, and the
  ``drop-blackout`` plan recovers purely on TCP retransmission;
* **determinism** — the hash ring is a pure function of its membership,
  and a repoint moves exactly the migrated backend's flows.
"""

import json

import pytest

from helpers import Harness, TEST_FLOW, make_skb
from repro.migration import (
    MigrationController,
    MigrationPlan,
    PLANS,
    resolve_migration_plan,
)
from repro.netstack.packet import FlowKey
from repro.netstack.stages import CountingSink
from repro.overlay.balancer import ConsistentHashBalancerStage, HashRing
from repro.runner import scenario_result_from_dict, scenario_result_to_dict
from repro.sim.engine import SimulationError
from repro.sim.units import MSEC
from repro.steering.base import stable_flow_hash
from repro.workloads.sockperf import build_scenario, run_single_flow

#: the default plan fires at 2.5 ms, inside this measure window
WIN = {"warmup_ns": 1.0 * MSEC, "measure_ns": 3.0 * MSEC}

OVERLAY_SYSTEMS = ["vanilla", "rss", "rps", "falcon", "mflow"]


def fingerprint(res) -> str:
    return json.dumps(scenario_result_to_dict(res), sort_keys=True)


# ---------------------------------------------------------------- plan basics
class TestMigrationPlan:
    def test_default_plan_is_inert(self):
        plan = MigrationPlan()
        assert not plan.active
        assert plan.describe() == "no migration (inert)"

    def test_resolve_variants(self):
        assert resolve_migration_plan(None) is None
        assert resolve_migration_plan(MigrationPlan()) is None  # inert
        assert resolve_migration_plan("default") is PLANS["default"]
        via_dict = resolve_migration_plan(PLANS["default"].to_dict())
        assert via_dict == PLANS["default"]
        with pytest.raises(KeyError):
            resolve_migration_plan("bogus")
        with pytest.raises(TypeError):
            resolve_migration_plan(42)

    def test_registry_plans_are_valid_and_active(self):
        for name, plan in PLANS.items():
            plan.validate()
            assert plan.active, f"registry plan {name} must schedule a cutover"
            assert plan.name == name

    def test_dict_roundtrip(self):
        plan = PLANS["fast-cutover"]
        assert MigrationPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            MigrationPlan.from_dict({"start_ns": 1.0, "warp_factor": 9})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_ns": -1.0},
            {"transfer_gbps": 0.0},
            {"probe_interval_ns": 0.0},
            {"buffer_packets": -1},
            {"vnodes": 0},
            {"source": "same", "dest": "same"},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            MigrationPlan(**kwargs).validate()


# ------------------------------------------------------------------ hash ring
class TestHashRing:
    def test_membership_is_the_whole_state(self):
        """Two rings with the same membership agree on every lookup,
        regardless of the order the membership was reached in."""
        a, b = HashRing(vnodes=16), HashRing(vnodes=16)
        for backend in ["c1", "c2", "c3"]:
            a.add(backend)
        for backend in ["c3", "c1", "c2"]:
            b.add(backend)
        a.remove("c2")
        b.remove("c2")
        for key in range(0, 2**64, 2**58):
            assert a.node_for(key) == b.node_for(key)

    def test_consistent_hashing_minimal_disruption(self):
        ring = HashRing(vnodes=32)
        for backend in ["c1", "c2", "c3"]:
            ring.add(backend)
        keys = [stable_flow_hash(FlowKey(1, 2, "tcp", 1000 + i, 80)) for i in range(200)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("c2")
        moved = [k for k in keys if before[k] != ring.node_for(k)]
        # only keys that lived on the removed backend may move
        assert all(before[k] == "c2" for k in moved)

    def test_empty_ring_raises(self):
        with pytest.raises(KeyError):
            HashRing().node_for(0)

    def test_duplicate_and_missing_backends(self):
        ring = HashRing()
        ring.add("c1")
        with pytest.raises(ValueError):
            ring.add("c1")
        with pytest.raises(KeyError):
            ring.remove("c2")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


# ------------------------------------------------------------- balancer stage
class TestBalancerStage:
    def _harness(self, buffer_packets=4096):
        ring = HashRing(vnodes=8)
        ring.add("c-src")
        lb = ConsistentHashBalancerStage(ring, buffer_packets=buffer_packets)
        sink = CountingSink()
        h = Harness([lb, sink], mapping={"lb": 1})
        return h, lb, sink

    def test_forwards_and_pins_sticky(self):
        h, lb, sink = self._harness()
        h.inject(make_skb(msg_id=0))
        h.run()
        assert len(sink.received) == 1
        assert lb.packets_forwarded == 1
        assert lb.backend_for(TEST_FLOW) == "c-src"

    def test_drain_buffers_in_fifo_order(self):
        h, lb, sink = self._harness()
        lb.begin_drain("c-src")
        for i in range(3):
            h.inject(make_skb(msg_id=i, start_seq=i * 2000))
        h.run()
        assert not sink.received
        assert lb.packets_buffered == 3
        assert lb.buffered_count() == 3
        released = lb.release("c-src")
        assert [s.head.msg_id for s in released] == [0, 1, 2]
        assert lb.buffered_count() == 0

    def test_full_buffer_drops_and_recycles(self):
        h, lb, sink = self._harness(buffer_packets=2)
        lb.begin_drain("c-src")
        for i in range(5):
            h.inject(make_skb(msg_id=i, start_seq=i * 2000))
        h.run()
        assert lb.packets_buffered == 2
        assert lb.packets_dropped == 3
        assert h.telemetry.get("lb_blackout_dropped") > 0

    def test_zero_buffer_drops_everything(self):
        h, lb, sink = self._harness(buffer_packets=0)
        lb.begin_drain("c-src")
        h.inject(make_skb())
        h.run()
        assert lb.packets_dropped == 1
        assert lb.packets_buffered == 0

    def test_repoint_moves_only_source_flows(self):
        h, lb, sink = self._harness()
        lb.ring.add("c-other")
        flows = [FlowKey(1, 2, "tcp", 1000 + i, 80) for i in range(50)]
        for f in flows:
            lb.backend_for(f)
        pinned_src = [f for f in flows if lb.backend_for(f) == "c-src"]
        pinned_other = {f: lb.backend_for(f) for f in flows if lb.backend_for(f) != "c-src"}
        moved = lb.repoint("c-src", "c-dst")
        assert moved == len(pinned_src)
        for f in pinned_src:
            assert lb.backend_for(f) != "c-src"
        for f, backend in pinned_other.items():
            assert lb.backend_for(f) == backend

    def test_mark_restore_counts_per_flow(self):
        h, lb, sink = self._harness()
        h.inject(make_skb(msg_id=0))
        h.run()
        assert lb.post_restore_forwarded == {}
        lb.mark_restore()
        h.inject(make_skb(msg_id=1, start_seq=2000))
        h.run()
        assert lb.post_restore_forwarded == {TEST_FLOW: 1}


# ------------------------------------------------------------- inert identity
class TestInertIdentity:
    @pytest.mark.parametrize("system,proto", [("mflow", "tcp"), ("vanilla", "udp")])
    def test_inert_plan_is_bit_identical(self, system, proto):
        baseline = run_single_flow(system, proto, 65536, **WIN)
        inert = run_single_flow(system, proto, 65536, migration=MigrationPlan(), **WIN)
        none = run_single_flow(system, proto, 65536, migration=None, **WIN)
        assert fingerprint(baseline) == fingerprint(inert) == fingerprint(none)

    def test_inert_scenario_builds_no_migration_graph(self):
        sc = build_scenario("vanilla", "tcp", 65536, migration=MigrationPlan())
        assert sc.migration_plan is None
        assert sc.network is None
        assert sc.balancer is None
        assert sc.migration is None
        with pytest.raises(KeyError):
            sc.pipeline.find_node("lb")

    def test_native_rejects_migration(self):
        with pytest.raises(ValueError, match="overlay"):
            build_scenario("native", "tcp", 65536, migration="default")


# -------------------------------------------------------------- ride-through
@pytest.mark.chaos
class TestCutoverRideThrough:
    @pytest.mark.parametrize("system", OVERLAY_SYSTEMS)
    def test_default_plan_zero_connection_drops(self, system):
        res = run_single_flow(system, "tcp", 65536, migration="default", **WIN)
        mig = res.migration
        assert mig is not None
        assert mig["phase"] == "restored"
        assert mig["connection_drops"] == 0
        assert mig["unrecovered_flows"] == []
        assert mig["packets_dropped"] == 0
        assert mig["packets_replayed"] == mig["packets_buffered"]
        assert mig["flows_repointed"] == 1
        assert len(mig["snapshot_digest"]) == 64
        assert mig["snapshot_bytes"] > 0
        assert mig["source_state"] == "retired"
        assert mig["dest_state"] == "running"
        assert mig["recovery_ns"], "every flow must report a recovery time"
        assert res.conservation_violations == 0
        assert res.messages_delivered > 0

    def test_udp_clients_ride_through(self):
        res = run_single_flow("mflow", "udp", 65536, migration="default", **WIN)
        mig = res.migration
        assert mig["connection_drops"] == 0
        # three UDP clients, all re-pointed and all recovered
        assert mig["flows_repointed"] == 3
        assert len(mig["recovery_ns"]) == 3
        assert res.conservation_violations == 0

    def test_timeline_ordering(self):
        res = run_single_flow("vanilla", "tcp", 65536, migration="default", **WIN)
        mig = res.migration
        plan = PLANS["default"]
        assert mig["drain_start_ns"] == plan.start_ns
        assert mig["freeze_ns"] == plan.start_ns + plan.drain_ns
        assert mig["restore_ns"] == pytest.approx(
            mig["freeze_ns"] + mig["blackout_ns"]
        )
        assert mig["blackout_ns"] >= plan.min_downtime_ns

    def test_drop_blackout_recovers_via_retransmit(self):
        res = run_single_flow("vanilla", "tcp", 65536, migration="drop-blackout", **WIN)
        mig = res.migration
        assert mig["packets_buffered"] == 0
        assert mig["packets_replayed"] == 0
        assert mig["packets_dropped"] > 0
        assert mig["tcp_retransmit_segments"] > 0
        assert mig["connection_drops"] == 0
        assert res.conservation_violations == 0

    def test_ride_through_under_wire_loss(self):
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(name="loss", loss_rate=0.01)
        res = run_single_flow(
            "mflow", "tcp", 65536, migration="default", faults=plan, **WIN
        )
        assert res.migration["connection_drops"] == 0
        assert res.conservation_violations == 0

    def test_pre_frozen_source_fails_loudly(self):
        """A cutover against an already-frozen source is a scripting bug
        and must raise, not silently double-freeze."""
        sc = build_scenario("vanilla", "tcp", 65536, migration="default")
        sc.network.lookup("c-src").freeze()
        with pytest.raises(SimulationError, match="cannot freeze"):
            sc.run(**WIN)

    def test_determinism_same_seed_same_cutover(self):
        a = run_single_flow("mflow", "tcp", 65536, migration="default", **WIN)
        b = run_single_flow("mflow", "tcp", 65536, migration="default", **WIN)
        assert fingerprint(a) == fingerprint(b)


# ------------------------------------------------------------------- records
class TestRecords:
    def test_migration_payload_roundtrips(self):
        res = run_single_flow("vanilla", "tcp", 65536, migration="default", **WIN)
        data = scenario_result_to_dict(res)
        assert "migration" in data
        clone = scenario_result_from_dict(data)
        assert clone.migration == res.migration

    def test_no_migration_key_when_absent(self):
        res = run_single_flow("vanilla", "tcp", 65536, **WIN)
        data = scenario_result_to_dict(res)
        assert "migration" not in data
        assert "health_counts" not in data
        assert scenario_result_from_dict(data).migration is None

    def test_health_counts_in_records(self):
        """Satellite: the health monitor's per-flow quarantine/readmission
        tallies surface in run records."""
        res = run_single_flow("mflow", "udp", 16384, faults="loss1", **WIN)
        assert res.health_counts, "sustained loss must quarantine flows"
        for label, counts in res.health_counts.items():
            assert set(counts) == {"quarantined", "readmitted"}
            assert counts["quarantined"] >= 1
        data = scenario_result_to_dict(res)
        assert data["health_counts"] == res.health_counts
        assert scenario_result_from_dict(data).health_counts == res.health_counts

    def test_migration_summary_is_json_safe(self):
        res = run_single_flow("mflow", "tcp", 65536, migration="default", **WIN)
        json.dumps(res.migration)  # raises on any non-JSON type


# ------------------------------------------------------------------ teardown
class TestFlowTeardown:
    def test_retire_flow_releases_everything(self):
        sc = build_scenario("mflow", "tcp", 65536)
        sc.run(**WIN)
        flows = list(sc._senders)
        for flow in flows:
            sc.retire_flow(flow)
        assert not sc._senders
        assert list(sc.tcp_receiver.iter_flows()) == []
        merge = getattr(sc.policy, "merge_stage", None)
        if merge is not None:
            assert list(merge.iter_flows()) == []

    def test_retire_flow_is_idempotent_per_flow(self):
        sc = build_scenario("vanilla", "udp", 16384)
        sc.run(**WIN)
        for flow in list(sc._senders):
            sc.retire_flow(flow)
            sc.retire_flow(flow)  # second retire finds nothing, breaks nothing
        assert not sc._senders


# -------------------------------------------------------------- experiment
class TestMigrationMatrix:
    def test_specs_shape(self):
        from repro.experiments import migration_matrix

        specs = migration_matrix.specs(quick=True)
        assert len(specs) == len(migration_matrix.FAULTS) * len(migration_matrix.SYSTEMS)
        for spec in specs:
            # params are stored canonically as sorted (key, value) tuples
            mig = dict(dict(spec.params)["migration"])
            assert mig["name"] == "default"
            assert spec.tags[0] == "migration"

    def test_single_cell_reduction(self):
        from repro.experiments import migration_matrix
        from repro.faults.plan import FaultPlan

        specs = migration_matrix.specs(
            quick=True, systems=["vanilla"],
            faults={"clean": FaultPlan(name="clean")},
        )
        records = migration_matrix.execute("migration-test", specs)
        result = migration_matrix.reduce(records)
        assert result.connection_drops("clean", "vanilla") == 0
        assert result.total_connection_drops() == 0
        table = result.table()
        assert "conn_drops" in table and "vanilla" in table


# ------------------------------------------------------------------------ CLI
class TestMigrateCli:
    def test_list_plans(self, capsys):
        from repro.cli import main

        assert main(["migrate", "--list"]) == 0
        out = capsys.readouterr().out
        for name in PLANS:
            assert name in out

    def test_migrate_run(self, capsys):
        from repro.cli import main

        rc = main([
            "migrate", "--system", "vanilla", "--plan", "default",
            "--warmup-ms", "1", "--measure-ms", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ride-through OK" in out
        assert "blackout" in out

    def test_throughput_accepts_migration_plan(self, capsys):
        from repro.cli import main

        rc = main([
            "throughput", "--system", "vanilla", "--migration-plan", "default",
            "--warmup-ms", "1", "--measure-ms", "3",
        ])
        assert rc == 0
        assert "migration plan: default" in capsys.readouterr().out
