"""Shared test harness utilities."""

from typing import Dict, List, Optional

import pytest

from repro.cpu.core import Core
from repro.cpu.topology import CpuSet
from repro.metrics.telemetry import Telemetry
from repro.netstack.costs import DEFAULT_COSTS, CostModel
from repro.netstack.packet import FlowKey, Skb, fragment_message
from repro.netstack.pipeline import Pipeline, link_nodes
from repro.netstack.stages import Stage
from repro.sim.engine import Simulator
from repro.steering.base import SteeringPolicy

TEST_FLOW = FlowKey(1, 2, "tcp", 1000, 2000)
TEST_UDP_FLOW = FlowKey(1, 2, "udp", 1000, 2000)


class MapPolicy(SteeringPolicy):
    """Test policy: explicit stage→core-index map with a default."""

    def __init__(self, cpus: CpuSet, mapping: Optional[Dict[str, int]] = None, default: int = 1):
        super().__init__(cpus, app_core=0)
        self.mapping = mapping or {}
        self.default = default

    def kernel_core_for(self, stage_name: str, skb: Skb, from_core: Optional[Core]) -> Core:
        return self.cpus[self.mapping.get(stage_name, self.default)]


class Harness:
    """A tiny testbed: sim + cpus + pipeline over the given stages."""

    def __init__(
        self,
        stages: List[Stage],
        n_cores: int = 4,
        mapping: Optional[Dict[str, int]] = None,
        costs: Optional[CostModel] = None,
        policy: Optional[SteeringPolicy] = None,
    ):
        self.sim = Simulator()
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.cpus = CpuSet(self.sim, n_cores)
        self.telemetry = Telemetry(self.sim)
        self.policy = policy if policy is not None else MapPolicy(self.cpus, mapping)
        if hasattr(self.policy, "cpus") and self.policy.cpus is not self.cpus:
            self.policy.cpus = self.cpus
        stages = self.policy.build_pipeline_stages(stages)
        self.pipeline = Pipeline(self.sim, self.costs, self.policy, self.telemetry)
        self.pipeline.set_head(link_nodes(stages))

    def inject(self, skb: Skb, from_core=None) -> None:
        self.pipeline.inject(self.pipeline.head, skb, from_core)

    def run(self, until_ns: Optional[float] = None) -> None:
        self.sim.run(until_ns=until_ns)


def make_skb(flow=TEST_FLOW, size=1000, msg_id=0, start_seq=0, wire_seq=None, encap=False) -> Skb:
    skb = Skb(fragment_message(flow, msg_id, size, start_seq=start_seq, encap=encap))
    if wire_seq is not None:
        for i, pkt in enumerate(skb.packets):
            pkt.wire_seq = wire_seq + i
    return skb


@pytest.fixture
def sim():
    return Simulator()
