"""Unit tests for UDP receive/deliver stages and the UDP sender."""

import pytest

from helpers import Harness, TEST_UDP_FLOW, make_skb
from repro.netstack.costs import DEFAULT_COSTS
from repro.netstack.packet import FlowKey, Skb, fragment_message
from repro.netstack.protocol.udp import (
    REASSEMBLY_WINDOW,
    UdpDeliverStage,
    UdpReceiverStage,
    UdpSender,
)


def deliver_harness():
    deliver = UdpDeliverStage()
    h = Harness([UdpReceiverStage(), deliver], mapping={"udp_rcv": 1, "udp_deliver": 0})
    h.telemetry.start_window()
    return h, deliver


def frags_of(size, msg_id=0, flow=TEST_UDP_FLOW):
    return [Skb([f]) for f in fragment_message(flow, msg_id, size)]


class TestUdpDeliver:
    def test_single_fragment_datagram_delivered(self):
        h, deliver = deliver_harness()
        h.inject(frags_of(500)[0])
        h.run()
        assert h.telemetry.get("udp_delivered_messages") == 1
        assert h.telemetry.get("udp_delivered_bytes") == 500

    def test_multi_fragment_datagram_complete(self):
        h, deliver = deliver_harness()
        for skb in frags_of(10_000):
            h.inject(skb)
        h.run()
        assert h.telemetry.get("udp_delivered_messages") == 1
        assert h.telemetry.get("udp_delivered_bytes") == 10_000

    def test_missing_fragment_means_no_delivery(self):
        h, deliver = deliver_harness()
        skbs = frags_of(10_000)
        for skb in skbs[:-1]:  # drop the last fragment
            h.inject(skb)
        h.run()
        assert h.telemetry.get("udp_delivered_messages") == 0

    def test_out_of_order_fragments_still_complete(self):
        h, deliver = deliver_harness()
        skbs = frags_of(5_000)
        for skb in reversed(skbs):
            h.inject(skb)
        h.run()
        assert h.telemetry.get("udp_delivered_messages") == 1
        assert h.telemetry.get("udp_delivered_bytes") == 5_000

    def test_duplicate_fragment_ignored(self):
        h, deliver = deliver_harness()
        skbs = frags_of(4_000)
        h.inject(skbs[0])
        h.inject(Skb(fragment_message(TEST_UDP_FLOW, 0, 4_000)[:1]))  # dup of frag 0
        for skb in skbs[1:]:
            h.inject(skb)
        h.run()
        assert h.telemetry.get("udp_delivered_messages") == 1
        assert h.telemetry.get("udp_dup_fragments") == 1

    def test_reassembly_window_evicts_oldest(self):
        h, deliver = deliver_harness()
        # open REASSEMBLY_WINDOW+1 incomplete datagrams
        for msg in range(REASSEMBLY_WINDOW + 1):
            h.inject(frags_of(5_000, msg_id=msg)[0])
        h.run()
        assert deliver.incomplete_evicted == 1
        assert h.telemetry.get("udp_datagrams_expired") == 1

    def test_latency_recorded_per_datagram(self):
        h, deliver = deliver_harness()
        for skb in frags_of(3_000):
            for p in skb.packets:
                p.send_ts = 0.0
            h.inject(skb)
        h.run()
        assert len(h.telemetry.sample_list("udp_msg_latency_ns")) == 1

    def test_interleaved_flows_reassemble_independently(self):
        other = FlowKey(7, 2, "udp", 9, 9)
        h, deliver = deliver_harness()
        a = frags_of(4_000)
        b = frags_of(4_000, flow=other)
        for x, y in zip(a, b):
            h.inject(x)
            h.inject(y)
        h.run()
        assert h.telemetry.get("udp_delivered_messages") == 2


class _FakeWire:
    def __init__(self):
        self.sent = []

    def send(self, pkt):
        self.sent.append(pkt)


class TestUdpSender:
    def _make(self, sim, message_size=4096, **kw):
        from repro.cpu.core import Core
        from repro.metrics.telemetry import Telemetry

        wire = _FakeWire()
        sender = UdpSender(
            sim,
            DEFAULT_COSTS,
            TEST_UDP_FLOW,
            message_size,
            wire,
            app_core=Core(sim, 0),
            kernel_core=Core(sim, 1),
            telemetry=Telemetry(sim),
            **kw,
        )
        return sender, wire

    def test_open_loop_sends_continuously(self, sim):
        sender, wire = self._make(sim)
        sender.start()
        sim.run(until_ns=1e6)
        assert sender.messages_sent > 1

    def test_fragments_paced_by_kernel_work(self, sim):
        sender, wire = self._make(sim, message_size=1448 * 4)
        sender.start()
        sim.run(until_ns=1e5)
        times = [p.arrival_ts for p in wire.sent]  # not set; use count spacing
        # fragments leave one per kernel work item, so wire sees them
        # spread over time rather than as one burst
        assert len(wire.sent) >= 2

    def test_max_messages_stops(self, sim):
        sender, wire = self._make(sim, max_messages=3)
        sender.start()
        sim.run(until_ns=1e7)
        assert sender.messages_sent == 3

    def test_stop_halts_sending(self, sim):
        sender, wire = self._make(sim)
        sender.start()
        sim.run(until_ns=1e5)
        sender.stop()
        count = sender.messages_sent
        sim.run(until_ns=2e5)
        assert sender.messages_sent <= count + 1  # at most the in-flight one

    def test_interval_rate_limits(self, sim):
        sender, wire = self._make(sim, message_size=100, interval_ns=50_000.0)
        sender.start()
        sim.run(until_ns=1e6)
        # ~1e6/5e4 = 20 messages at the configured rate
        assert 15 <= sender.messages_sent <= 21

    def test_encap_flag_and_cost(self, sim):
        sender, wire = self._make(sim, message_size=100, encap=True)
        sender.start()
        sim.run(until_ns=1e5)
        assert all(p.encap for p in wire.sent)

    def test_rejects_nonpositive_message(self, sim):
        with pytest.raises(ValueError):
            self._make(sim, message_size=-1)
