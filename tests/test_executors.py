"""Executor-protocol tests: local/process/socket backends, the journal
single-writer lock, and runner-loss chaos (the pool's kill-anywhere
guarantee: records stay byte-identical to a serial run)."""

import json
import os
import re
import subprocess
import sys

import pytest

from repro.obs.live.openmetrics import parse_openmetrics, render_openmetrics, sweep_families
from repro.obs.live.status import SweepStatus
from repro.obs.live.top import render
from repro.runner import (
    JournalLockError,
    LocalExecutor,
    ProcessExecutor,
    RunEngine,
    RunSpec,
    SocketExecutor,
    make_executor,
)

TINY = {"warmup_ns": 100_000.0, "measure_ns": 400_000.0}


def echo_spec(value, **kw):
    return RunSpec.make("_test_echo", {"value": value}, **kw)


def sockperf_specs(n=4):
    """Real-simulation cells: fully deterministic measurements (unlike
    the echo double, whose payload includes the worker pid)."""
    return [
        RunSpec.make(
            "sockperf",
            {"system": "mflow", "proto": "tcp", "size": 1024 * (i + 1)},
            tags=(f"cell{i}",),
            **TINY,
        )
        for i in range(n)
    ]


def measurements_by_key(records):
    return {
        r.spec_key: json.dumps(r.measurements, sort_keys=True) for r in records
    }


# ------------------------------------------------------------- local executor
class TestLocalExecutor:
    def test_serial_records_admit_unenforced_timeout(self, tmp_path):
        engine = RunEngine(jobs=1, results_dir=tmp_path, use_cache=False)
        [record] = engine.run("exp", [echo_spec(1, **TINY)])
        assert record.ok
        assert record.timeout_enforced is False
        assert record.runner is None

    def test_overrun_of_unenforced_timeout_warns(self):
        spec = RunSpec.make(
            "_test_sleepy", {"sleep_s": 0.05, "hang_attempts": 1},
            timeout_s=0.01, **TINY,
        )
        engine = RunEngine(jobs=1, timeout_s=0.01)
        [record] = engine.run("exp", [spec])
        assert record.ok and record.attempts == 1    # completed, not killed
        assert record.timeout_enforced is False
        kinds = [e.kind for e in engine.events]
        assert kinds == ["timeout_overrun"]
        assert "unenforced" in engine.events[0].detail

    def test_no_overrun_event_within_timeout(self):
        engine = RunEngine(jobs=1, timeout_s=30.0)
        [record] = engine.run("exp", [echo_spec(2, **TINY)])
        assert record.ok and engine.events == []

    def test_explicit_local_executor_matches_default(self):
        serial = RunEngine(jobs=1).run("exp", [echo_spec(3, **TINY)])
        forced = RunEngine(jobs=4, executor=LocalExecutor()).run(
            "exp", [echo_spec(3, **TINY)]
        )
        assert serial[0].measurements == forced[0].measurements


# ----------------------------------------------------------- process executor
class TestProcessExecutor:
    def test_parallel_records_claim_enforced_timeout(self, tmp_path):
        engine = RunEngine(jobs=2, results_dir=tmp_path, use_cache=False)
        records = engine.run("exp", [echo_spec(i, **TINY) for i in range(3)])
        assert all(r.timeout_enforced is True for r in records)
        assert all(r.runner is None for r in records)

    def test_explicit_process_executor_runs_in_subprocess(self):
        engine = RunEngine(jobs=1, executor=ProcessExecutor(jobs=2))
        [record] = engine.run("exp", [echo_spec(9, **TINY)])
        assert record.ok
        assert record.measurements["pid"] != os.getpid()

    def test_crash_is_retried_through_executor(self):
        spec = RunSpec.make(
            "_test_crashy", {"fail_attempts": 1, "mode": "exit"}, **TINY
        )
        engine = RunEngine(jobs=2, retries=1, backoff_base_s=0.0)
        [record] = engine.run("exp", [spec])
        assert record.ok and record.attempts == 2
        assert [e.kind for e in engine.events] == ["crash", "retry"]


# --------------------------------------------------------------- journal lock
class TestJournalLock:
    def test_second_engine_fails_fast(self, tmp_path):
        import fcntl

        sweep_dir = tmp_path / "exp"
        sweep_dir.mkdir()
        lock_path = sweep_dir / "journal.jsonl.lock"
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR)
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        try:
            engine = RunEngine(jobs=1, results_dir=tmp_path, use_cache=False)
            with pytest.raises(JournalLockError, match="journal"):
                engine.run("exp", [echo_spec(1, **TINY)])
        finally:
            os.close(fd)

    def test_stale_lockfile_from_killed_run_is_harmless(self, tmp_path):
        # flock dies with its process: a leftover lock *file* must not
        # wedge resume (PR-5 kill-anywhere contract)
        sweep_dir = tmp_path / "exp"
        sweep_dir.mkdir()
        (sweep_dir / "journal.jsonl.lock").write_text("99999\n")
        engine = RunEngine(jobs=1, results_dir=tmp_path, use_cache=False)
        [record] = engine.run("exp", [echo_spec(1, **TINY)])
        assert record.ok

    def test_lock_released_after_run(self, tmp_path):
        engine = RunEngine(jobs=1, results_dir=tmp_path, use_cache=False)
        engine.run("exp", [echo_spec(1, **TINY)])
        again = RunEngine(jobs=1, results_dir=tmp_path, use_cache=False)
        [record] = again.run("exp", [echo_spec(2, **TINY)])
        assert record.ok

    def test_lock_released_on_failure(self, tmp_path):
        # mode=raise: jobs=1 executes inline, a hard exit would kill pytest
        spec = RunSpec.make(
            "_test_crashy", {"fail_attempts": 9, "mode": "raise"}, **TINY
        )
        engine = RunEngine(
            jobs=1, retries=0, results_dir=tmp_path, use_cache=False
        )
        with pytest.raises(Exception):
            engine.run("exp", [spec])
        ok_engine = RunEngine(jobs=1, results_dir=tmp_path, use_cache=False)
        [record] = ok_engine.run("exp", [echo_spec(1, **TINY)])
        assert record.ok


# ---------------------------------------------------------------- socket pool
def spawn_runner(*extra):
    """Start `repro runner serve --port 0` and scrape its bound address."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "runner", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        bufsize=1,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+:\d+)", line)
    assert match, f"runner failed to start: {line!r}"
    return proc, match.group(1)


class RunnerPool:
    """Spawns `repro runner serve` subprocesses and keeps kill handles."""

    def __init__(self):
        self.procs = []
        self.addrs = []

    def spawn(self, n=2, *extra):
        for _ in range(n):
            proc, addr = spawn_runner(*extra)
            self.procs.append(proc)
            self.addrs.append(addr)
        return self.addrs

    def shutdown(self):
        for proc in self.procs:
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture
def runner_pool():
    pool = RunnerPool()
    yield pool
    pool.shutdown()


class TestSocketExecutor:
    def test_make_executor_socket_requires_runners(self):
        with pytest.raises(ValueError, match="runners"):
            make_executor("socket", jobs=2)
        assert make_executor("auto", jobs=2) is None

    def test_unreachable_fleet_refuses_to_start(self):
        engine = RunEngine(
            jobs=2, executor=SocketExecutor(["127.0.0.1:1"], connect_timeout_s=0.5)
        )
        with pytest.raises(RuntimeError, match="no runners reachable"):
            engine.run("exp", [echo_spec(1, **TINY)])

    def test_pool_matches_serial_bit_for_bit(self, tmp_path, runner_pool):
        specs = sockperf_specs(4)
        serial = RunEngine(jobs=1, results_dir=tmp_path / "serial",
                           use_cache=False).run("exp", specs)
        addrs = runner_pool.spawn(2)
        pooled = RunEngine(
            jobs=2, results_dir=tmp_path / "pool", use_cache=False,
            executor=SocketExecutor(addrs),
        ).run("exp", specs)
        assert measurements_by_key(serial) == measurements_by_key(pooled)
        used = {r.runner for r in pooled}
        assert len(used) == 2, f"expected both runners used, got {used}"
        assert all(r.timeout_enforced is True for r in pooled)

    def test_pool_enforces_timeouts_and_retries(self, runner_pool):
        addrs = runner_pool.spawn(1)
        spec = RunSpec.make(
            "_test_sleepy", {"sleep_s": 30.0, "hang_attempts": 1},
            timeout_s=0.5, **TINY,
        )
        engine = RunEngine(
            jobs=1, retries=1, backoff_base_s=0.0,
            executor=SocketExecutor(addrs),
        )
        [record] = engine.run("exp", [spec])
        assert record.ok and record.attempts == 2
        assert [e.kind for e in engine.events] == ["timeout", "retry"]
        assert "killed after" in engine.events[0].detail

    def test_pool_isolates_cell_crashes(self, runner_pool):
        addrs = runner_pool.spawn(1)
        spec = RunSpec.make(
            "_test_crashy", {"fail_attempts": 1, "mode": "exit"}, **TINY
        )
        engine = RunEngine(
            jobs=1, retries=1, backoff_base_s=0.0,
            executor=SocketExecutor(addrs),
        )
        [record] = engine.run("exp", [spec])
        assert record.ok and record.attempts == 2     # runner survived the crash
        assert [e.kind for e in engine.events] == ["crash", "retry"]

    @pytest.mark.chaos
    def test_runner_sigkill_mid_sweep_is_byte_identical(self, tmp_path, runner_pool):
        """The acceptance scenario: SIGKILL one of two live runners
        mid-sweep; the sweep completes with zero quarantines and records
        byte-identical to `--jobs 1` serial."""
        specs = sockperf_specs(6)
        serial = RunEngine(jobs=1, results_dir=tmp_path / "serial",
                           use_cache=False).run("exp", specs)

        addrs = runner_pool.spawn(2)

        def progress(done, total, record):
            # first completion: the fleet is mid-flight on the rest —
            # SIGKILL runner 0 now
            if done == 1:
                runner_pool.procs[0].kill()

        executor = SocketExecutor(addrs, heartbeat_s=0.2, redispatch_backoff_s=0.05)
        engine = RunEngine(
            jobs=2, results_dir=tmp_path / "pool", use_cache=False,
            progress=progress, executor=executor,
        )
        pooled = engine.run("exp", specs)

        assert engine.quarantined == []
        assert all(r.ok for r in pooled)
        assert measurements_by_key(serial) == measurements_by_key(pooled)
        lost = [e for e in engine.runner_events if e.get("event") == "lost"]
        assert lost, "the killed runner was never declared lost"

    def test_fleet_drained_to_zero_degrades_to_local(self, tmp_path, runner_pool):
        specs = sockperf_specs(3)
        serial = RunEngine(jobs=1, results_dir=tmp_path / "serial",
                           use_cache=False).run("exp", specs)
        addrs = runner_pool.spawn(1)

        def progress(done, total, record):
            if done == 1:
                runner_pool.procs[0].kill()

        engine = RunEngine(
            jobs=1, results_dir=tmp_path / "pool", use_cache=False,
            progress=progress,
            executor=SocketExecutor(addrs, heartbeat_s=0.2, redispatch_backoff_s=0.05),
        )
        pooled = engine.run("exp", specs)
        assert engine.quarantined == []
        assert measurements_by_key(serial) == measurements_by_key(pooled)
        events = [e.get("event") for e in engine.runner_events]
        assert "lost" in events and "degraded" in events
        assert any(r.runner == "local" for r in pooled)
        # degraded cells ran in-process: no hang protection, records say so
        local = [r for r in pooled if r.runner == "local"]
        assert all(r.timeout_enforced is False for r in local)

    def test_fleet_visibility_in_journal_top_and_metrics(self, tmp_path, runner_pool):
        addrs = runner_pool.spawn(2)
        engine = RunEngine(
            jobs=2, results_dir=tmp_path, use_cache=False,
            executor=SocketExecutor(addrs),
        )
        engine.run("fleet", sockperf_specs(3))

        status = SweepStatus.load(tmp_path / "fleet")
        assert status.executor == "socket"
        assert len(status.runners) == 2
        assert status.runners_live == 2
        assert all(c.runner for c in status.cells)

        screen = render([status])
        assert "RUNNER" in screen and "fleet 2/2 live" in screen

        text = render_openmetrics(sweep_families([status]))
        families = parse_openmetrics(text)
        assert "repro_sweep_runners" in families

        manifest = json.loads((tmp_path / "fleet" / "manifest.json").read_text())
        assert manifest["executor"] == "socket"
        registered = [
            e for e in manifest["runner_events"] if e.get("event") == "registered"
        ]
        assert len(registered) == 2
        assert all(run["runner"] for run in manifest["runs"])
