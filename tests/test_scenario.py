"""Integration tests for the scenario harness (short windows)."""

import pytest

from repro.overlay.topology import DatapathKind
from repro.steering.vanilla import VanillaPolicy
from repro.workloads.scenario import Scenario, make_flow

WARM = 0.5e6
MEAS = 2e6


def vanilla_factory(cpus):
    return VanillaPolicy(cpus, app_core=0, role_cores={"first": 1})


class TestScenarioBasics:
    def test_invalid_proto_rejected(self):
        with pytest.raises(ValueError):
            Scenario(DatapathKind.NATIVE, "sctp", vanilla_factory)

    def test_run_without_senders_rejected(self):
        sc = Scenario(DatapathKind.NATIVE, "tcp", vanilla_factory)
        with pytest.raises(RuntimeError):
            sc.run()

    def test_wrong_proto_sender_rejected(self):
        sc = Scenario(DatapathKind.NATIVE, "tcp", vanilla_factory)
        with pytest.raises(RuntimeError):
            sc.add_udp_sender(1000)

    def test_make_flow_distinct_per_client(self):
        assert make_flow("tcp", 0) != make_flow("tcp", 1)

    def test_make_client_flow_uses_proto(self):
        sc = Scenario(DatapathKind.NATIVE, "udp", vanilla_factory)
        assert sc.make_client_flow(0).proto == "udp"


class TestTcpScenario:
    def test_native_tcp_delivers(self):
        sc = Scenario(DatapathKind.NATIVE, "tcp", vanilla_factory)
        sc.add_tcp_sender(65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        assert res.throughput_gbps > 1.0
        assert res.messages_delivered > 0

    def test_overlay_slower_than_native(self):
        results = {}
        for kind in (DatapathKind.NATIVE, DatapathKind.OVERLAY):
            sc = Scenario(kind, "tcp", vanilla_factory, seed=1)
            sc.add_tcp_sender(65536)
            results[kind] = sc.run(warmup_ns=WARM, measure_ns=MEAS).throughput_gbps
        assert results[DatapathKind.OVERLAY] < results[DatapathKind.NATIVE]

    def test_tcp_no_drops(self):
        sc = Scenario(DatapathKind.OVERLAY, "tcp", vanilla_factory)
        sc.add_tcp_sender(65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        assert res.counters.get("backlog_drops", 0) == 0
        assert res.counters.get("nic_ring_drops", 0) == 0

    def test_delivered_bytes_bounded_by_sent(self):
        sc = Scenario(DatapathKind.NATIVE, "tcp", vanilla_factory)
        sender = sc.add_tcp_sender(65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        assert res.counters["tcp_delivered_bytes"] <= sender.next_seq

    def test_kernel_core_is_bottleneck(self):
        sc = Scenario(DatapathKind.OVERLAY, "tcp", vanilla_factory)
        sc.add_tcp_sender(65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        assert res.cpu_utilization[1] > 0.95

    def test_latency_samples_collected(self):
        sc = Scenario(DatapathKind.NATIVE, "tcp", vanilla_factory)
        sc.add_tcp_sender(65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        assert res.latency.count > 0
        assert res.latency.p99_us >= res.latency.p50_us

    def test_deterministic_same_seed(self):
        def once():
            sc = Scenario(DatapathKind.OVERLAY, "tcp", vanilla_factory, seed=3)
            sc.add_tcp_sender(65536)
            return sc.run(warmup_ns=WARM, measure_ns=MEAS).throughput_gbps

        assert once() == once()

    def test_different_seeds_differ_slightly(self):
        vals = set()
        for seed in (1, 2):
            sc = Scenario(DatapathKind.OVERLAY, "tcp", vanilla_factory, seed=seed)
            sc.add_tcp_sender(65536)
            vals.add(sc.run(warmup_ns=WARM, measure_ns=MEAS).throughput_gbps)
        assert len(vals) == 2


class TestUdpScenario:
    def test_udp_goodput_counts_complete_datagrams(self):
        sc = Scenario(DatapathKind.OVERLAY, "udp", vanilla_factory)
        for _ in range(3):
            sc.add_udp_sender(65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        assert res.messages_delivered > 0
        # totals are self-consistent: bytes == complete datagrams * size
        assert (
            res.counters["udp_delivered_bytes"]
            == res.counters["udp_delivered_messages"] * 65536
        )

    def test_udp_overload_drops(self):
        from repro.netstack.costs import DEFAULT_COSTS

        costs = DEFAULT_COSTS.with_overrides(rx_ring_size=512, backlog_limit=300)
        sc = Scenario(DatapathKind.OVERLAY, "udp", vanilla_factory, costs=costs)
        for _ in range(3):
            sc.add_udp_sender(65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        total_drops = res.counters.get("nic_ring_drops", 0) + res.counters.get(
            "backlog_drops", 0
        )
        assert total_drops > 0  # vanilla overlay is overloaded by 3 clients

    def test_udp_goodput_below_offered(self):
        sc = Scenario(DatapathKind.OVERLAY, "udp", vanilla_factory)
        senders = [sc.add_udp_sender(65536) for _ in range(3)]
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        offered = sum(s.messages_sent for s in senders)
        assert res.counters["udp_delivered_messages"] < offered
