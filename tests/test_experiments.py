"""Smoke tests for the per-figure experiment harnesses (tiny configs)."""

import pytest

from repro.experiments import fig4_motivation, fig7_batch_size, fig8_throughput
from repro.experiments import fig9_latency, fig10_multiflow, fig11_webserving
from repro.experiments import fig12_cpu_balance, fig13_memcached
from repro.experiments.base import ExperimentTable, format_table, group_breakdown
from repro.experiments.runner import EXPERIMENTS, main


class TestBase:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.123]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.50" in out and "0.12" in out

    def test_experiment_table_renders(self):
        t = ExperimentTable("Title", ["x", "y"])
        t.add(1, 2.0)
        t.notes.append("a note")
        rendered = t.table()
        assert "Title" in rendered and "note: a note" in rendered

    def test_group_breakdown_collapses_tags(self):
        grouped = group_breakdown(
            {"irq:pnic": 0.1, "driver_poll:pnic": 0.2, "vxlan": 0.3, "ip_outer": 0.1}
        )
        assert grouped["driver"] == pytest.approx(0.3)
        assert grouped["vxlan_dev"] == pytest.approx(0.4)


class TestFigureModules:
    def test_fig4_subset(self):
        res = fig4_motivation.run(
            quick=True, systems=["native", "vanilla"], message_sizes=[65536]
        )
        assert "Fig 4a" in res.table()
        assert res.raw["tcp"]["native"][65536].throughput_gbps > 0

    def test_fig7_subset(self):
        res = fig7_batch_size.run(quick=True, batch_sizes=[16, 256])
        assert res.ooo_packets[16] >= res.ooo_packets[256]
        assert "Fig 7" in res.table()

    def test_fig8_subset(self):
        res = fig8_throughput.run(
            quick=True, systems=["vanilla", "mflow"], message_sizes=[65536]
        )
        assert res.gbps("tcp", "mflow") > res.gbps("tcp", "vanilla")
        assert "tcp" in res.cpu_tables  # Fig 8b breakdown present

    def test_fig9_subset(self):
        res = fig9_latency.run(
            quick=True, systems=["vanilla", "mflow"], message_sizes=[65536]
        )
        key_v = ("tcp", "vanilla", 65536)
        key_m = ("tcp", "mflow", 65536)
        assert res.latencies[key_m].p50_us < res.latencies[key_v].p50_us

    def test_fig10_subset(self):
        res = fig10_multiflow.run(quick=True, flow_counts=[1, 2], message_sizes=[65536])
        assert res.gbps("mflow", 65536, 2) > res.gbps("mflow", 65536, 1)

    def test_fig11_subset(self):
        res = fig11_webserving.run(quick=True, n_users=60, systems=["vanilla", "mflow"])
        assert res.raw["mflow"].total_success_per_sec() >= 0
        assert "Fig 11a" in res.table()

    def test_fig12_subset(self):
        res = fig12_cpu_balance.run(quick=True, systems=["falcon", "mflow"])
        assert res.stddev["mflow"] < res.stddev["falcon"]

    def test_fig13_subset(self):
        res = fig13_memcached.run(quick=True, client_counts=[1], systems=["vanilla"])
        assert res.latency("vanilla", 1).requests_per_sec > 0


class TestRunner:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "sensitivity", "extensions", "chaos", "migration",
        }

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])


class TestSensitivity:
    def test_baseline_orderings_hold(self):
        from repro.experiments import sensitivity

        res = sensitivity.run(quick=True, swept=["skb_alloc_ns"], factors=[0.5])
        # the baseline row and the skb_alloc perturbations must be clean
        assert not res.violations
        assert ("baseline", 1.0) in res.raw

    def test_violation_reporting_format(self):
        from repro.experiments import sensitivity

        # an absurd perturbation that flips an ordering must be reported
        res = sensitivity.run(quick=True, swept=["copy_per_byte_ns"], factors=[8.0])
        assert "copy_per_byte_ns" in res.table()


class TestExtensions:
    def test_bottleneck_walks_when_relieved(self):
        """Relieving the copy thread and the sender (the paper's future
        work) lets a single flow scale past the paper's configuration."""
        from repro.experiments import extensions

        res = extensions.run(quick=True)
        assert res.gbps("+ faster sender") > 1.1 * res.gbps(
            "paper mflow (2 branches, 1 reader)"
        )

    def test_parallel_copy_policy_validates(self):
        import pytest

        from repro.core.config import MflowConfig
        from repro.cpu.topology import CpuSet
        from repro.experiments.extensions import ParallelCopyMflowPolicy
        from repro.sim.engine import Simulator

        with pytest.raises(ValueError):
            ParallelCopyMflowPolicy(
                CpuSet(Simulator(), 8), MflowConfig.full_path_tcp(), reader_cores=[]
            )
