"""Unit tests for packet/skb structures and fragmentation."""

import pytest

from repro.netstack.packet import (
    MAX_SEGMENT_PAYLOAD,
    MTU,
    VXLAN_OVERHEAD,
    FlowKey,
    Packet,
    Skb,
    fragment_message,
)

FLOW = FlowKey(1, 2, "tcp", 1000, 2000)


class TestPacket:
    def test_positive_payload_required(self):
        with pytest.raises(ValueError):
            Packet(FLOW, 0)

    def test_wire_bytes_includes_headers(self):
        pkt = Packet(FLOW, MAX_SEGMENT_PAYLOAD)
        assert pkt.wire_bytes == MTU

    def test_wire_bytes_includes_encap_overhead(self):
        plain = Packet(FLOW, 100)
        encap = Packet(FLOW, 100, encap=True)
        assert encap.wire_bytes - plain.wire_bytes == VXLAN_OVERHEAD

    def test_defaults(self):
        pkt = Packet(FLOW, 10)
        assert pkt.frag_count == 1
        assert pkt.wire_seq == -1
        assert pkt.messages_completed == 0


class TestFragmentation:
    def test_small_message_single_fragment(self):
        frags = fragment_message(FLOW, 0, 100)
        assert len(frags) == 1
        assert frags[0].payload == 100
        assert frags[0].messages_completed == 1

    def test_exact_mss_single_fragment(self):
        frags = fragment_message(FLOW, 0, MAX_SEGMENT_PAYLOAD)
        assert len(frags) == 1

    def test_64k_message_fragment_count(self):
        size = 64 * 1024
        frags = fragment_message(FLOW, 0, size)
        assert len(frags) == (size + MAX_SEGMENT_PAYLOAD - 1) // MAX_SEGMENT_PAYLOAD
        assert sum(f.payload for f in frags) == size

    def test_sequence_numbers_contiguous(self):
        frags = fragment_message(FLOW, 0, 5000, start_seq=100)
        assert frags[0].seq == 100
        for a, b in zip(frags, frags[1:]):
            assert b.seq == a.seq + a.payload

    def test_frag_indices_and_count(self):
        frags = fragment_message(FLOW, 7, 4000)
        assert [f.frag_index for f in frags] == list(range(len(frags)))
        assert all(f.frag_count == len(frags) for f in frags)
        assert all(f.msg_id == 7 for f in frags)

    def test_only_last_fragment_completes_message(self):
        frags = fragment_message(FLOW, 0, 4000)
        assert [f.messages_completed for f in frags] == [0] * (len(frags) - 1) + [1]

    def test_encap_flag_propagates(self):
        frags = fragment_message(FLOW, 0, 3000, encap=True)
        assert all(f.encap for f in frags)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            fragment_message(FLOW, 0, 0)


class TestSkb:
    def test_requires_packets(self):
        with pytest.raises(ValueError):
            Skb([])

    def test_segs_and_bytes(self):
        frags = fragment_message(FLOW, 0, 3000)
        skb = Skb(frags)
        assert skb.segs == len(frags)
        assert skb.payload_bytes == 3000

    def test_seq_and_end_seq(self):
        frags = fragment_message(FLOW, 0, 3000, start_seq=50)
        skb = Skb(frags)
        assert skb.seq == 50
        assert skb.end_seq == 50 + 3000

    def test_can_merge_contiguous_same_flow(self):
        a = Skb(fragment_message(FLOW, 0, 1448, start_seq=0))
        b = Skb(fragment_message(FLOW, 1, 1448, start_seq=1448))
        assert a.can_merge(b, max_segs=16)

    def test_cannot_merge_gap(self):
        a = Skb(fragment_message(FLOW, 0, 1448, start_seq=0))
        b = Skb(fragment_message(FLOW, 1, 1448, start_seq=2000))
        assert not a.can_merge(b, max_segs=16)

    def test_cannot_merge_other_flow(self):
        other = FlowKey(9, 9, "tcp", 1, 2)
        a = Skb(fragment_message(FLOW, 0, 1448, start_seq=0))
        b = Skb(fragment_message(other, 0, 1448, start_seq=1448))
        assert not a.can_merge(b, max_segs=16)

    def test_cannot_merge_past_cap(self):
        a = Skb(fragment_message(FLOW, 0, 1448 * 4, start_seq=0))
        b = Skb(fragment_message(FLOW, 1, 1448, start_seq=1448 * 4))
        assert not a.can_merge(b, max_segs=4)
        assert a.can_merge(b, max_segs=5)

    def test_merge_extends(self):
        a = Skb(fragment_message(FLOW, 0, 1448, start_seq=0))
        b = Skb(fragment_message(FLOW, 1, 1448, start_seq=1448))
        a.merge(b)
        assert a.segs == 2
        assert a.end_seq == 2896

    def test_mflow_fields_default_none(self):
        skb = Skb(fragment_message(FLOW, 0, 100))
        assert skb.microflow_id is None
        assert skb.branch is None
        assert skb.flow_serial is None
