"""Tests for the analysis package: bottleneck model, charts, conservation."""

import pytest

from repro.analysis.bottleneck import BottleneckModel
from repro.analysis.charts import bar_chart, line_chart
from repro.analysis.conservation import check_conservation
from repro.netstack.costs import DEFAULT_COSTS


class TestBottleneckModel:
    def test_rejects_unknown_proto(self):
        with pytest.raises(ValueError):
            BottleneckModel(DEFAULT_COSTS, proto="sctp")

    def test_gro_factor_udp_is_one(self):
        assert BottleneckModel(DEFAULT_COSTS, proto="udp").gro_factor() == 1.0

    def test_gro_factor_encap_smaller(self):
        native = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=False)
        overlay = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=True)
        assert overlay.gro_factor() < native.gro_factor()

    def test_vanilla_native_ceiling_matches_calibration(self):
        """The analytic native TCP ceiling must sit near the paper's
        26.6 Gbps target (that is what the cost model is calibrated to)."""
        model = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=False)
        assert 22.0 < model.vanilla_ceiling() < 31.0

    def test_overlay_ceiling_below_native(self):
        native = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=False)
        overlay = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=True)
        assert overlay.vanilla_ceiling() < 0.75 * native.vanilla_ceiling()

    def test_falcon_above_vanilla_overlay(self):
        m = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=True)
        assert m.falcon_fun_ceiling() > m.vanilla_ceiling()

    def test_mflow_branches_raise_ceiling(self):
        m = BottleneckModel(DEFAULT_COSTS, proto="udp", overlay=True)
        assert m.mflow_branch_ceiling(2) > m.vanilla_ceiling()
        assert m.mflow_branch_ceiling(2) >= m.mflow_branch_ceiling(1)

    def test_missing_stage_in_assignment_rejected(self):
        m = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=False)
        with pytest.raises(KeyError):
            m.core_loads({"driver_poll": 1})

    def test_simulator_respects_analytic_ceiling(self):
        """Measured throughput must not exceed the closed-form upper bound."""
        from repro.workloads.sockperf import run_single_flow

        model = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=True)
        measured = run_single_flow(
            "vanilla", "tcp", 65536, warmup_ns=1e6, measure_ns=3e6
        ).throughput_gbps
        assert measured <= model.vanilla_ceiling() * 1.02  # float slack

    def test_core_loads_sum_handoffs(self):
        m = BottleneckModel(DEFAULT_COSTS, proto="udp", overlay=True)
        one_core = m.core_loads({n: 1 for n, _, _ in m.stage_list()})
        split = dict.fromkeys([n for n, _, _ in m.stage_list()], 1)
        split["vxlan"] = 2
        two_core = m.core_loads(split)
        # splitting adds handoff + dispatch overhead to total work
        assert sum(two_core.values()) > sum(one_core.values())


class TestCharts:
    def test_bar_chart_contains_labels_and_values(self):
        out = bar_chart({"native": 26.6, "mflow": 29.8}, unit=" Gbps", title="t")
        assert "native" in out and "29.80 Gbps" in out and out.startswith("t")

    def test_bar_chart_peak_fills_width(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        rows = out.splitlines()
        assert rows[0].count("#") == 20
        assert rows[1].count("#") == 10

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_line_chart_renders_all_series(self):
        out = line_chart(
            {"x2": [(1, 1), (2, 4)], "x3": [(1, 1), (2, 8)]}, width=20, height=6
        )
        assert "x2" in out and "x3" in out
        assert "*" in out and "o" in out

    def test_line_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})


class TestConservation:
    def test_balanced_run_is_ok(self):
        counters = {
            "nic_rx_packets": 100,
            "nic_ring_drops": 0,
            "backlog_drops": 10,
            "tcp_delivered_segments": 85,
        }
        rep = check_conservation(counters, sent_packets=100, proto="tcp",
                                 in_flight_estimate=10)
        assert rep.unaccounted == 5
        assert rep.ok()

    def test_overdelivery_fails(self):
        counters = {"nic_rx_packets": 10, "tcp_delivered_segments": 20}
        rep = check_conservation(counters, sent_packets=10, proto="tcp")
        assert not rep.ok()

    def test_unknown_proto_rejected(self):
        with pytest.raises(ValueError):
            check_conservation({}, 0, "sctp")

    def test_real_tcp_run_conserves(self):
        from repro.overlay.topology import DatapathKind
        from repro.steering.vanilla import VanillaPolicy
        from repro.workloads.scenario import Scenario

        sc = Scenario(
            DatapathKind.OVERLAY,
            "tcp",
            lambda c: VanillaPolicy(c, app_core=0, role_cores={"first": 1}),
        )
        sender = sc.add_tcp_sender(65536)
        res = sc.run(warmup_ns=1e6, measure_ns=3e6)
        sent_packets = res.counters.get("nic_rx_packets", 0)  # lossless wire
        rep = check_conservation(res.counters, sent_packets, "tcp")
        assert rep.ok()

    def test_real_udp_overload_run_conserves(self):
        from repro.overlay.topology import DatapathKind
        from repro.steering.vanilla import VanillaPolicy
        from repro.workloads.scenario import Scenario

        sc = Scenario(
            DatapathKind.OVERLAY,
            "udp",
            lambda c: VanillaPolicy(c, app_core=0, role_cores={"first": 1}),
        )
        for _ in range(3):
            sc.add_udp_sender(65536)
        res = sc.run(warmup_ns=1e6, measure_ns=4e6)
        rep = check_conservation(
            res.counters, res.counters.get("nic_rx_packets", 0), "udp",
            in_flight_estimate=2 * DEFAULT_COSTS.backlog_limit + DEFAULT_COSTS.rx_ring_size,
        )
        assert rep.ok()
