"""Tests for the hierarchical timer wheel and the event/skb pools.

Exercises the paths a single sorted heap never had: same-timestamp FIFO
for entries that lived in *different* wheel levels, overflow-heap
promotion when the window jumps, cancel bookkeeping after a slot has
been collected into the active heap, recycled-handle poisoning, and
checkpoint round-trips with every level populated.
"""

import pickle

import pytest

from helpers import Harness, make_skb
from repro.netstack.stages import CountingSink, PassthroughStage
from repro.perf.selfprof import SelfProfiler
from repro.sim.engine import SimulationError, Simulator

#: one L0 slot is 1024 ns; one L1 slot is 256 L0 slots (262144 ns); the
#: wheel horizon (L1 window) is 256 L1 slots ~ 67.1 ms
L0_NS = 1024.0
L1_NS = 262_144.0
HORIZON_NS = 256 * L1_NS


class Recorder:
    """Picklable callback target: appends labels to a log."""

    def __init__(self):
        self.log = []

    def hit(self, label):
        self.log.append(label)


class TestSameTimestampFifoAcrossLevels:
    def test_fire_order_is_schedule_order_regardless_of_level(self):
        """Four events at the exact same timestamp, filed (in schedule
        order) into the overflow heap, L1, L0, and the active heap, must
        still fire in schedule order."""
        sim = Simulator()
        rec = Recorder()
        T = 104_900_000.0  # ~104.9 ms: beyond the horizon at t=0

        sim.call_at(T, self._fire_a, sim, rec, T)  # seq 0 -> overflow
        sim.call_at(50_000_000.0, self._sched_b, sim, rec, T)
        sim.call_at(104_860_000.0, self._sched_c, sim, rec, T)
        sim.run()
        assert rec.log == ["A", "B", "C", "D"]
        assert sim.now == T

    def test_levels_actually_used(self):
        """Same scenario with the profiler attached: each wheel level
        must have received at least one push (guards against the test
        silently degenerating into a single-level schedule)."""
        sim = Simulator()
        sim.profiler = prof = SelfProfiler()
        rec = Recorder()
        T = 104_900_000.0
        sim.call_at(T, self._fire_a, sim, rec, T)
        sim.call_at(50_000_000.0, self._sched_b, sim, rec, T)
        sim.call_at(104_860_000.0, self._sched_c, sim, rec, T)
        sim.run()
        assert rec.log == ["A", "B", "C", "D"]
        active, l0, l1, far = prof.level_pushes
        assert far >= 1, "A must start on the overflow heap"
        assert l1 >= 1, "B must be filed into an L1 slot"
        assert l0 >= 1, "C must be filed into an L0 slot"
        assert active >= 1, "D (scheduled at now) must land in the active heap"

    # callbacks are methods of the test class so they stay picklable and
    # self-contained; labels mirror their intended fire order
    def _fire_a(self, sim, rec, T):
        rec.hit("A")
        sim.call_at(T, rec.hit, "D")  # same-time schedule from inside T

    def _sched_b(self, sim, rec, T):
        sim.call_at(T, rec.hit, "B")  # ~55 ms out: lands in L1

    def _sched_c(self, sim, rec, T):
        sim.call_at(T, rec.hit, "C")  # same L1 interval as T: lands in L0


class TestOverflowPromotion:
    def test_far_future_event_fires(self):
        sim = Simulator()
        rec = Recorder()
        T = 3 * HORIZON_NS  # ~201 ms, far beyond the wheel
        sim.call_at(T, rec.hit, "far")
        sim.run()
        assert rec.log == ["far"]
        assert sim.now == T

    def test_window_jump_promotes_everything_it_covers(self):
        """When the wheel is empty and the window jumps to the overflow
        horizon, every entry the advanced window now covers must be
        promoted — including ones several L1 slots past the jump target."""
        sim = Simulator()
        sim.profiler = prof = SelfProfiler()
        rec = Recorder()
        base = 70_000_000.0  # first far event (~70 ms)
        times = [
            base,
            base + 100.0,            # same L0 slot as base
            base + 60_000_000.0,     # ~229 L1 slots later: promoted to L1
            base + 70_000_000.0,     # ~267 L1 slots later: stays on overflow
        ]
        for i, t in enumerate(times):
            sim.call_at(t, rec.hit, i)
        sim.run()
        assert rec.log == [0, 1, 2, 3]
        assert sim.now == times[-1]
        assert prof.wheel_jumps >= 1

    def test_dense_then_sparse_interleaving(self):
        """Mixing sub-slot, L0, L1, and overflow timers preserves global
        (time, seq) order end to end."""
        sim = Simulator()
        rec = Recorder()
        times = [
            10.0, 1_500.0, 300_000.0, 5_000_000.0,
            66_000_000.0, 68_000_000.0, 200_000_000.0,
        ]
        # schedule in reverse so schedule order disagrees with fire order
        for t in reversed(times):
            sim.call_at(t, rec.hit, t)
        sim.run()
        assert rec.log == times


class TestZeroDelaySelfReschedule:
    def test_call_in_zero_makes_progress(self):
        sim = Simulator()
        rec = Recorder()

        def tick(n):
            rec.hit(n)
            if n > 0:
                sim.call_in(0, tick, n - 1)

        sim.call_soon(tick, 5)
        sim.run()
        assert rec.log == [5, 4, 3, 2, 1, 0]
        assert sim.now == 0.0

    def test_zero_delay_is_fifo_with_queued_same_time_events(self):
        """A zero-delay reschedule runs *after* already-queued events at
        the same timestamp (seq order), never before."""
        sim = Simulator()
        rec = Recorder()

        def first():
            rec.hit("first")
            sim.call_in(0, rec.hit, "resched")

        sim.call_soon(first)
        sim.call_soon(rec.hit, "second")
        sim.run()
        assert rec.log == ["first", "second", "resched"]

    def test_pooled_zero_delay_self_reschedule(self):
        """The pooled no-handle path supports the same pattern; the event
        recycled by the firing is immediately reused for the reschedule."""
        sim = Simulator()
        rec = Recorder()

        def tick(n):
            rec.hit(n)
            if n > 0:
                sim.sched_in(0.0, tick, n - 1)

        sim.sched_soon(tick, 3)
        sim.run()
        assert rec.log == [3, 2, 1, 0]
        assert len(sim._pool) == 1, "one pooled event, recycled each hop"


class TestCancelAfterSlotCollected:
    def test_cancel_after_slot_loaded_into_active_heap(self):
        """run(until) can leave an event's L0 slot already collected into
        the active heap; cancelling it afterwards must keep the pending
        bookkeeping exact."""
        sim = Simulator()
        rec = Recorder()
        ev = sim.call_at(5_000.0, rec.hit, "x")
        sim.run(until_ns=4_999.0)  # collects the slot, reinserts the entry
        assert sim.pending == 1 and sim.live_pending == 1
        ev.cancel()
        assert sim.pending == 1 and sim.live_pending == 0
        ev.cancel()  # idempotent, does not double-count
        assert sim.live_pending == 0
        sim.run()
        assert rec.log == []
        assert sim.pending == 0 and sim.live_pending == 0

    def test_cancel_then_more_scheduling_stays_consistent(self):
        """After a skipped cancelled entry, later schedules and runs see
        clean counters (no drift from the collected-slot path)."""
        sim = Simulator()
        rec = Recorder()
        ev = sim.call_at(2_000.0, rec.hit, "dead")
        sim.run(until_ns=1_999.0)
        ev.cancel()
        sim.call_at(3_000.0, rec.hit, "live")
        sim.run()
        assert rec.log == ["live"]
        assert sim.pending == 0 and sim.live_pending == 0

    def test_cancelled_in_unloaded_slot_also_consistent(self):
        sim = Simulator()
        rec = Recorder()
        keep = sim.call_at(10_000.0, rec.hit, "keep")
        dead = sim.call_at(500_000.0, rec.hit, "dead")  # L1 slot
        dead.cancel()
        assert sim.pending == 2 and sim.live_pending == 1
        sim.run()
        assert rec.log == ["keep"]
        assert keep.state and sim.pending == 0 and sim.live_pending == 0


class TestRecycleSafety:
    def test_stale_pooled_event_handle_raises(self):
        """Reaching into the free list and cancelling a recycled event is
        a loud error, not a silent cancellation of the next reuse."""
        sim = Simulator()
        sim.sched_in(100.0, _noop)
        sim.run()
        assert len(sim._pool) == 1
        stale = sim._pool[0]
        assert stale.gen == 1
        with pytest.raises(SimulationError, match="stale event handle"):
            stale.cancel()

    def test_public_handles_survive_forever(self):
        """call_* events are never recycled: a handle cancelled long
        after firing stays a harmless no-op."""
        sim = Simulator()
        rec = Recorder()
        ev = sim.call_in(50.0, rec.hit, "x")
        sim.sched_in(60.0, _noop)  # pooled traffic alongside
        sim.run()
        assert rec.log == ["x"]
        ev.cancel()  # fired: nothing to undo, never raises
        assert ev.gen == 0 and not ev.pooled

    def test_recycled_skb_reinjection_raises(self):
        h = Harness([PassthroughStage("s1", "ip_rcv_ns"), CountingSink()])
        skb = h.pipeline.alloc_skb(make_skb().packets[0])
        h.pipeline.recycle_skb(skb)
        assert skb.packets is None and skb.gen == 1
        with pytest.raises(SimulationError, match="recycled skb"):
            h.inject(skb)

    def test_skb_pool_reuse_resets_identity(self):
        h = Harness([PassthroughStage("s1", "ip_rcv_ns"), CountingSink()])
        first = h.pipeline.alloc_skb(make_skb(size=100).packets[0])
        first.trace_id = 7
        first.microflow_id = 3
        h.pipeline.recycle_skb(first)
        again = h.pipeline.alloc_skb(make_skb(size=200, msg_id=1).packets[0])
        assert again is first, "free list must hand back the recycled object"
        assert again.gen == 1
        assert again.trace_id is None and again.microflow_id is None
        assert again.segs == 1 and again.payload_bytes == 200


class TestWheelCheckpointRoundTrip:
    def _populate(self):
        """A simulator with live entries on every level, a primed event
        pool, and a cancelled entry — the worst case for a snapshot."""
        sim = Simulator()
        rec = Recorder()
        sim.sched_in(10.0, rec.hit, "warm")  # fires pre-snapshot, primes pool
        sim.call_at(100.0, rec.hit, "active-ish")
        sim.call_at(5_000.0, rec.hit, "l0")
        sim.call_at(1_000_000.0, rec.hit, "l1")
        sim.call_at(200_000_000.0, rec.hit, "far")
        dead = sim.call_at(7_000.0, rec.hit, "dead")
        dead.cancel()
        sim.sched_in(2_000_000.0, rec.hit, "pooled-l1")
        sim.run(until_ns=50.0)  # past the warmup event only
        assert rec.log == ["warm"]
        return sim, rec

    def test_pickle_restore_fires_identically(self):
        sim, rec = self._populate()
        clone = pickle.loads(pickle.dumps(sim))
        # the clone's callbacks target the *cloned* recorder: fish it out
        # of a still-pending overflow entry before running
        crec = clone._far[0][2].fn.__self__
        assert isinstance(crec, Recorder) and crec is not rec
        sim.run()
        clone.run()
        expected = ["active-ish", "l0", "l1", "pooled-l1", "far"]
        assert rec.log[1:] == expected
        assert crec.log[1:] == expected
        assert clone.now == sim.now
        assert clone.events_executed == sim.events_executed
        assert clone.pending == sim.pending == 0
        assert clone.live_pending == sim.live_pending == 0

    def test_snapshot_preserves_counters_exactly(self):
        sim, _ = self._populate()
        clone = pickle.loads(pickle.dumps(sim))
        for attr in ("_npending", "_cancelled", "_cur0", "_cur1", "_n1",
                     "_seq", "_now", "events_executed"):
            assert getattr(clone, attr) == getattr(sim, attr), attr
        assert len(clone._pool) == len(sim._pool)
        assert len(clone._far) == len(sim._far)


def _noop():
    return None
