"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Process, SimEvent, Timeout, WaitEvent, spawn


def test_process_timeout_sequence():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield Timeout(100.0)
        trace.append(sim.now)
        yield Timeout(50.0)
        trace.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert trace == [0.0, 100.0, 150.0]


def test_process_done_event_carries_return_value():
    sim = Simulator()

    def proc():
        yield Timeout(10.0)
        return 42

    p = spawn(sim, proc())
    sim.run()
    assert p.finished
    assert p.done.value == 42


def test_process_waits_on_event_value():
    sim = Simulator()
    ev = SimEvent(sim)
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    def trigger():
        yield Timeout(30.0)
        ev.trigger("payload")

    spawn(sim, waiter())
    spawn(sim, trigger())
    sim.run()
    assert got == ["payload"]


def test_wait_event_wrapper_equivalent():
    sim = Simulator()
    ev = SimEvent(sim)
    got = []

    def waiter():
        value = yield WaitEvent(ev)
        got.append(value)

    spawn(sim, waiter())
    sim.call_in(5.0, ev.trigger, "x")
    sim.run()
    assert got == ["x"]


def test_waiting_on_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.trigger("early")
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    spawn(sim, waiter())
    sim.run()
    assert got == [(0.0, "early")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.trigger()
    with pytest.raises(RuntimeError):
        ev.trigger()


def test_process_waits_on_process():
    sim = Simulator()
    trace = []

    def child():
        yield Timeout(100.0)
        return "done"

    def parent():
        result = yield spawn(sim, child())
        trace.append((sim.now, result))

    spawn(sim, parent())
    sim.run()
    assert trace == [(100.0, "done")]


def test_multiple_waiters_all_wake():
    sim = Simulator()
    ev = SimEvent(sim)
    woken = []

    def waiter(i):
        yield ev
        woken.append(i)

    for i in range(5):
        spawn(sim, waiter(i))
    sim.call_in(10.0, ev.trigger)
    sim.run()
    assert sorted(woken) == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-5.0)


def test_yielding_garbage_raises():
    sim = Simulator()

    def bad():
        yield "not a wait descriptor"

    spawn(sim, bad())
    with pytest.raises(TypeError):
        sim.run()
