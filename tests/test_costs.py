"""Unit tests for the cost model."""

import dataclasses

import pytest

from repro.netstack.costs import CostModel, DEFAULT_COSTS


class TestCostModel:
    def test_defaults_validate(self):
        DEFAULT_COSTS.validate()

    def test_with_overrides_returns_copy(self):
        c = DEFAULT_COSTS.with_overrides(vxlan_decap_ns=1234.0)
        assert c.vxlan_decap_ns == 1234.0
        assert DEFAULT_COSTS.vxlan_decap_ns != 1234.0

    def test_overrides_preserve_other_fields(self):
        c = DEFAULT_COSTS.with_overrides(skb_alloc_ns=1.0)
        assert c.tcp_rcv_ns == DEFAULT_COSTS.tcp_rcv_ns

    @pytest.mark.parametrize(
        "field",
        [
            "driver_poll_per_pkt_ns",
            "skb_alloc_ns",
            "gro_per_seg_ns",
            "ip_rcv_ns",
            "vxlan_decap_ns",
            "tcp_rcv_ns",
            "udp_rcv_ns",
            "copy_per_byte_ns",
            "link_gbps",
        ],
    )
    def test_nonpositive_cost_rejected(self, field):
        with pytest.raises(ValueError):
            DEFAULT_COSTS.with_overrides(**{field: 0.0}).validate()

    def test_gro_cap_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_COSTS.with_overrides(gro_max_segs_native=0).validate()

    def test_napi_budget_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_COSTS.with_overrides(napi_budget=0).validate()

    def test_ring_holds_at_least_one_budget(self):
        with pytest.raises(ValueError):
            DEFAULT_COSTS.with_overrides(rx_ring_size=8, napi_budget=64).validate()

    def test_heavyweight_relationships_hold(self):
        """The calibration encodes the paper's qualitative cost ordering."""
        c = DEFAULT_COSTS
        # VxLAN decap is the heavyweight device
        for lighter in (c.bridge_fwd_ns, c.veth_xmit_ns, c.veth_rx_ns, c.ip_rcv_ns):
            assert c.vxlan_decap_ns > lighter
        # skb allocation is the heavyweight per-packet function
        assert c.skb_alloc_ns > c.gro_per_seg_ns
        assert c.skb_alloc_ns > c.driver_poll_per_pkt_ns
        # encap GRO is less effective than native GRO
        assert c.gro_max_segs_encap < c.gro_max_segs_native

    def test_is_frozen_free_dataclass(self):
        # CostModel is intentionally mutable for experiments but must be a
        # dataclass with named fields (no dict-typos)
        names = {f.name for f in dataclasses.fields(CostModel)}
        assert "vxlan_decap_ns" in names
        assert "tcp_pacing_gbps" in names
