"""Integration tests for the multi-flow experiments (Fig. 10/12 claims)."""

import pytest

from repro.workloads.multiflow import (
    APP_CORES,
    KERNEL_POOL,
    MULTIFLOW_SYSTEMS,
    build_multiflow_scenario,
    kernel_pool_utilization,
    multiflow_policy_factory,
    run_multiflow,
    utilization_stddev,
)

WARM = 1e6
MEAS = 3e6


class TestBuild:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            multiflow_policy_factory("bogus")

    def test_needs_positive_flows(self):
        with pytest.raises(ValueError):
            build_multiflow_scenario("vanilla", 0, 65536)

    def test_flow_count_respected(self):
        sc = build_multiflow_scenario("mflow", 5, 65536)
        assert len(sc._senders) == 5

    def test_nic_is_multiqueue_over_pool(self):
        sc = build_multiflow_scenario("vanilla", 2, 65536)
        assert sc.nic.n_queues == len(KERNEL_POOL)


class TestScaling:
    def test_aggregate_grows_with_flows(self):
        t1 = run_multiflow("vanilla", 1, 65536, warmup_ns=WARM, measure_ns=MEAS)
        t5 = run_multiflow("vanilla", 5, 65536, warmup_ns=WARM, measure_ns=MEAS)
        assert t5.throughput_gbps > 2.5 * t1.throughput_gbps

    def test_small_messages_scale_linearly(self):
        """16 B flows are client-bound, so N flows ≈ N × one flow."""
        t1 = run_multiflow("mflow", 1, 16, warmup_ns=WARM, measure_ns=MEAS)
        t4 = run_multiflow("mflow", 4, 16, warmup_ns=WARM, measure_ns=MEAS)
        assert t4.throughput_gbps == pytest.approx(4 * t1.throughput_gbps, rel=0.15)

    def test_mflow_single_flow_advantage(self):
        van = run_multiflow("vanilla", 1, 65536, warmup_ns=WARM, measure_ns=MEAS)
        mfl = run_multiflow("mflow", 1, 65536, warmup_ns=WARM, measure_ns=MEAS)
        assert mfl.throughput_gbps > 1.3 * van.throughput_gbps

    def test_all_systems_run_at_ten_flows(self):
        for system in MULTIFLOW_SYSTEMS:
            res = run_multiflow(system, 10, 65536, warmup_ns=WARM, measure_ns=MEAS)
            assert res.throughput_gbps > 20.0


class TestBalance:
    def test_pool_utilization_has_ten_entries(self):
        res = run_multiflow("mflow", 4, 65536, warmup_ns=WARM, measure_ns=MEAS)
        assert len(kernel_pool_utilization(res)) == len(KERNEL_POOL)

    def test_stddev_nonnegative(self):
        res = run_multiflow("falcon", 4, 65536, warmup_ns=WARM, measure_ns=MEAS)
        assert utilization_stddev(res) >= 0.0

    def test_mflow_more_balanced_than_falcon_roundrobin(self):
        """Fig. 12's claim in the non-saturated round-robin regime."""
        f = run_multiflow(
            "falcon", 8, 65536, warmup_ns=WARM, measure_ns=MEAS, placement="round-robin"
        )
        m = run_multiflow(
            "mflow", 8, 65536, warmup_ns=WARM, measure_ns=MEAS, placement="round-robin"
        )
        assert utilization_stddev(m) < utilization_stddev(f)

    def test_app_cores_do_kernel_no_work(self):
        res = run_multiflow("mflow", 4, 65536, warmup_ns=WARM, measure_ns=MEAS)
        for idx in APP_CORES:
            breakdown = res.cpu_breakdown[idx]
            assert "vxlan" not in breakdown
            assert "skb_alloc" not in breakdown
