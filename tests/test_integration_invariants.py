"""Cross-cutting integration invariants over full scenario runs.

These are the guarantees the whole system must uphold regardless of
configuration: in-order TCP delivery, work conservation, utilization
bounds, determinism of the experiment harness.
"""

import pytest

from repro.core.config import MflowConfig
from repro.core.mflow import MflowPolicy
from repro.netstack.costs import DEFAULT_COSTS
from repro.overlay.topology import DatapathKind
from repro.workloads.scenario import Scenario
from repro.workloads.sockperf import build_scenario, run_single_flow

WARM = 1e6
MEAS = 3e6


class TestTcpOrderInvariant:
    """MFLOW's raison d'être: parallelism must never reorder TCP bytes."""

    @pytest.mark.parametrize("batch", [1, 16, 256])
    def test_no_ooo_segments_reach_tcp_any_batch(self, batch):
        res = run_single_flow(
            "mflow", "tcp", 65536, warmup_ns=WARM, measure_ns=MEAS, batch_size=batch
        )
        # OOO segments at TCP would mean the reassembler leaked disorder
        # into the stateful layer (timeout skips are the only excuse, and
        # a lossless TCP path must not need them)
        assert res.counters.get("tcp_dup_segments", 0) == 0
        assert res.counters.get("mflow_merge_skips", 0) == 0

    @pytest.mark.parametrize("n_cores", [1, 3])
    def test_order_with_any_branch_count(self, n_cores):
        sc = build_scenario(
            "mflow", "tcp", 65536,
            n_split_cores=n_cores, n_receiver_cores=4 + 2 * n_cores,
        )
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        assert res.counters.get("tcp_ooo_segments", 0) == 0
        assert res.throughput_gbps > 5.0

    def test_delivered_bytes_monotone_with_window(self):
        short = run_single_flow("mflow", "tcp", 65536, warmup_ns=WARM, measure_ns=2e6)
        long = run_single_flow("mflow", "tcp", 65536, warmup_ns=WARM, measure_ns=4e6)
        assert (
            long.counters["tcp_delivered_bytes"] > short.counters["tcp_delivered_bytes"]
        )


class TestUtilizationBounds:
    @pytest.mark.parametrize("system", ["native", "vanilla", "falcon", "mflow"])
    def test_utilization_in_unit_interval(self, system):
        res = run_single_flow(system, "tcp", 65536, warmup_ns=WARM, measure_ns=MEAS)
        for u in res.cpu_utilization:
            assert -1e-6 <= u <= 1.0 + 1e-6

    def test_busy_cores_match_policy_footprint(self):
        res = run_single_flow("vanilla", "tcp", 65536, warmup_ns=WARM, measure_ns=MEAS)
        # vanilla touches exactly cores 0 (app) and 1 (kernel)
        for idx, u in enumerate(res.cpu_utilization):
            if idx in (0, 1):
                assert u > 0.05
            else:
                assert u < 0.01


class TestThroughputSanity:
    def test_never_exceeds_link_rate(self):
        for system in ("native", "mflow"):
            res = run_single_flow(system, "tcp", 65536, warmup_ns=WARM, measure_ns=MEAS)
            assert res.throughput_gbps < DEFAULT_COSTS.link_gbps

    def test_udp_goodput_never_exceeds_offered(self):
        sc = build_scenario("mflow", "udp", 65536)
        senders = list(sc._senders.values())
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        offered_bytes = sum(s.messages_sent for s in senders) * 65536
        assert res.counters["udp_delivered_bytes"] <= offered_bytes

    def test_more_clients_do_not_reduce_vanilla_udp_goodput_much(self):
        """Goodput under overload stays broadly stable (drops are burst-
        aligned at the ring, not random per fragment)."""

        def goodput(n):
            from repro.steering.vanilla import VanillaPolicy

            sc = Scenario(
                DatapathKind.OVERLAY,
                "udp",
                lambda c: VanillaPolicy(c, app_core=0, role_cores={"first": 1}),
            )
            for _ in range(n):
                sc.add_udp_sender(65536)
            return sc.run(warmup_ns=WARM, measure_ns=MEAS).throughput_gbps

        assert goodput(5) > 0.4 * goodput(3)


class TestDeterminism:
    def test_mflow_run_replays_bit_identically(self):
        def run():
            res = run_single_flow("mflow", "udp", 65536, warmup_ns=WARM, measure_ns=MEAS, seed=7)
            return (
                res.throughput_gbps,
                res.messages_delivered,
                res.counters.get("mflow_ooo_packets", 0),
                tuple(round(u, 9) for u in res.cpu_utilization),
            )

        assert run() == run()

    def test_memcached_replays(self):
        from repro.workloads.memcached import run_memcached

        a = run_memcached("mflow", 2, warmup_ns=WARM, measure_ns=MEAS, seed=3)
        b = run_memcached("mflow", 2, warmup_ns=WARM, measure_ns=MEAS, seed=3)
        assert a.requests_per_sec == b.requests_per_sec
        assert a.latency.p99_us == b.latency.p99_us


class TestMflowRegionIsolation:
    def test_pre_split_work_stays_on_dispatch_core(self):
        sc = build_scenario("mflow", "udp", 65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        # device scaling: skb_alloc/gro are pre-split -> dispatch core 1
        for idx in (2, 3):
            assert "skb_alloc" not in res.cpu_breakdown[idx]
        assert "vxlan" not in res.cpu_breakdown[1]

    def test_branch_cores_share_evenly(self):
        sc = build_scenario("mflow", "udp", 65536)
        res = sc.run(warmup_ns=WARM, measure_ns=MEAS)
        u2, u3 = res.cpu_utilization[2], res.cpu_utilization[3]
        assert abs(u2 - u3) < 0.12  # even micro-flow distribution

    def test_full_path_tcp_alloc_isolated(self):
        res = run_single_flow("mflow", "tcp", 65536, warmup_ns=WARM, measure_ns=MEAS)
        # alloc cores run only skb_alloc (+steering overhead)
        for idx in (2, 3):
            tags = {t.split(":")[0] for t in res.cpu_breakdown[idx]}
            assert "vxlan" not in tags and "gro" not in tags
