"""Unit and integration tests for the RunSpec / RunEngine subsystem."""

import json

import pytest

from repro.experiments import fig7_batch_size
from repro.runner import (
    ResultCache,
    RunEngine,
    RunFailure,
    RunSpec,
    canonical_params,
    code_version,
    run_specs,
)

TINY = {"warmup_ns": 100_000.0, "measure_ns": 400_000.0}


def echo_spec(value, **kw):
    return RunSpec.make("_test_echo", {"value": value}, **kw)


class TestRunSpec:
    def test_param_order_is_canonical(self):
        a = RunSpec.make("sockperf", {"system": "mflow", "size": 65536})
        b = RunSpec.make("sockperf", {"size": 65536, "system": "mflow"})
        assert a == b
        assert a.key == b.key
        assert hash(a) == hash(b)

    def test_nested_dict_params_round_trip(self):
        params = {"cost_overrides": {"b_ns": 2.0, "a_ns": 1.0}, "size": 16}
        spec = RunSpec.make("sockperf", params)
        assert spec.params_dict() == params

    def test_tags_do_not_affect_key(self):
        a = RunSpec.make("sockperf", {"size": 16}, tags=("fig8",))
        b = RunSpec.make("sockperf", {"size": 16}, tags=("renamed", "x"))
        assert a.key == b.key

    def test_windows_and_seed_affect_key(self):
        base = RunSpec.make("sockperf", {"size": 16})
        assert base.with_windows(1.0, 2.0).key != base.key
        assert RunSpec.make("sockperf", {"size": 16}, seed=1).key != base.key

    def test_timeout_not_part_of_identity(self):
        a = RunSpec.make("sockperf", {"size": 16}, timeout_s=1.0)
        b = RunSpec.make("sockperf", {"size": 16}, timeout_s=99.0)
        assert a == b and a.key == b.key

    def test_non_json_params_rejected(self):
        with pytest.raises(TypeError):
            RunSpec.make("sockperf", {"bad": object()})

    def test_canonical_params_sorted(self):
        items = canonical_params({"b": 1, "a": [1, {"y": 2}]})
        assert [k for k, _ in items] == ["a", "b"]

    def test_derived_seed_is_content_addressed(self):
        a = RunSpec.make("sockperf", {"size": 16})
        b = RunSpec.make("sockperf", {"size": 32})
        assert a.derived_seed(0) == a.derived_seed(0)
        assert a.derived_seed(0) != b.derived_seed(0)
        assert a.derived_seed(0) != a.derived_seed(1)
        assert 0 <= a.derived_seed(0) < 2**32

    def test_describe_prefers_tags(self):
        assert echo_spec(1, tags=("fig8", "tcp")).describe() == "fig8/tcp"
        assert echo_spec(1).describe().startswith("_test_echo:")


class TestEngineBasics:
    def test_records_come_back_in_spec_order(self):
        specs = [echo_spec(i) for i in range(5)]
        records = run_specs("t", specs)
        assert [r.measurements["value"] for r in records] == list(range(5))

    def test_serial_and_parallel_identical(self):
        specs = [echo_spec(i) for i in range(4)]
        serial = RunEngine(jobs=1, global_seed=7).run("t", specs)
        parallel = RunEngine(jobs=4, global_seed=7).run("t", specs)
        for s, p in zip(serial, parallel):
            ms, mp_ = dict(s.measurements), dict(p.measurements)
            ms.pop("pid"), mp_.pop("pid")
            assert ms == mp_
            assert s.seed == p.seed

    def test_parallel_uses_separate_processes(self):
        import os

        records = RunEngine(jobs=2).run("t", [echo_spec(i) for i in range(2)])
        pids = {r.measurements["pid"] for r in records}
        assert os.getpid() not in pids


class TestFaultTolerance:
    def test_crash_is_retried_on_fresh_process(self):
        spec = RunSpec.make("_test_crashy", {"fail_attempts": 1, "mode": "exit"})
        [rec] = RunEngine(jobs=2).run("t", [spec])
        assert rec.ok and rec.attempts == 2
        assert rec.measurements["attempt"] == 1

    def test_crash_events_are_reported(self):
        spec = RunSpec.make("_test_crashy", {"fail_attempts": 1, "mode": "exit"})
        engine = RunEngine(jobs=2)
        engine.run("t", [spec])
        kinds = [e.kind for e in engine.events]
        assert "crash" in kinds and "retry" in kinds

    def test_serial_exception_is_retried(self):
        spec = RunSpec.make("_test_crashy", {"fail_attempts": 1, "mode": "raise"})
        engine = RunEngine(jobs=1)
        [rec] = engine.run("t", [spec])
        assert rec.ok and rec.attempts == 2
        assert [e.kind for e in engine.events] == ["exception", "retry"]

    def test_hung_worker_is_killed_and_retried(self):
        spec = RunSpec.make(
            "_test_sleepy", {"hang_attempts": 1, "sleep_s": 30.0}, timeout_s=0.5
        )
        engine = RunEngine(jobs=2)
        [rec] = engine.run("t", [spec])
        assert rec.ok and rec.attempts == 2
        assert "timeout" in [e.kind for e in engine.events]

    def test_persistent_failure_raises_under_strict(self):
        spec = RunSpec.make("_test_crashy", {"fail_attempts": 99, "mode": "raise"})
        with pytest.raises(RunFailure) as exc:
            RunEngine(jobs=1, retries=1).run("t", [spec])
        assert "failed after 2 attempt(s)" in str(exc.value)

    def test_persistent_failure_reported_when_not_strict(self):
        spec = RunSpec.make("_test_crashy", {"fail_attempts": 99, "mode": "raise"})
        [rec] = RunEngine(jobs=1, retries=1, strict=False).run("t", [spec])
        assert not rec.ok
        assert "failed after 2 attempt(s)" in rec.error


class TestArtifactsAndCache:
    def test_artifacts_written(self, tmp_path):
        engine = RunEngine(jobs=1, results_dir=tmp_path)
        records = engine.run("exp", [echo_spec(1, tags=("exp", "a")), echo_spec(2)])
        runs = sorted((tmp_path / "exp" / "runs").glob("*.json"))
        assert len(runs) == 2
        manifest = json.loads((tmp_path / "exp" / "manifest.json").read_text())
        assert manifest["n_specs"] == 2
        assert manifest["failed"] == 0
        assert manifest["code_version"] == code_version()
        stored = json.loads(runs[0].read_text())
        assert stored["spec_key"] in {r.spec_key for r in records}

    def test_second_run_hits_cache(self, tmp_path):
        specs = [echo_spec(i) for i in range(3)]
        first = RunEngine(jobs=1, results_dir=tmp_path).run("exp", specs)
        second = RunEngine(jobs=1, results_dir=tmp_path).run("exp", specs)
        assert not any(r.cached for r in first)
        assert all(r.cached for r in second)
        for a, b in zip(first, second):
            assert a.measurements == b.measurements

    def test_no_cache_flag_bypasses(self, tmp_path):
        specs = [echo_spec(0)]
        RunEngine(jobs=1, results_dir=tmp_path).run("exp", specs)
        [rec] = RunEngine(jobs=1, results_dir=tmp_path, use_cache=False).run(
            "exp", specs
        )
        assert not rec.cached

    def test_cache_keyed_on_code_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", "v1", {"x": 1})
        assert cache.get("k", "v1") == {"x": 1}
        assert cache.get("k", "v2") is None

    def test_failed_records_are_not_cached(self, tmp_path):
        spec = RunSpec.make("_test_crashy", {"fail_attempts": 99, "mode": "raise"})
        engine = RunEngine(jobs=1, retries=0, strict=False, results_dir=tmp_path)
        engine.run("exp", [spec])
        [rec] = RunEngine(
            jobs=1, retries=0, strict=False, results_dir=tmp_path
        ).run("exp", [spec])
        assert not rec.cached


class TestDeterminism:
    """The tentpole guarantee: serial == parallel, and seeds are stable."""

    def _sweep_specs(self):
        return [
            s.with_windows(**TINY)
            for s in fig7_batch_size.specs(quick=True, batch_sizes=[16, 256])
        ]

    def test_sim_sweep_serial_vs_parallel_bit_identical(self):
        specs = self._sweep_specs()
        serial = RunEngine(jobs=1, global_seed=3).run("fig7", specs)
        parallel = RunEngine(jobs=4, global_seed=3).run("fig7", specs)
        for s, p in zip(serial, parallel):
            assert s.measurements == p.measurements
        assert (
            fig7_batch_size.reduce(serial).table()
            == fig7_batch_size.reduce(parallel).table()
        )

    def test_seed_stability_golden(self):
        """Pinned counters: if this breaks, seeding or the sim changed."""
        spec = RunSpec.make(
            "sockperf",
            {"system": "vanilla", "proto": "tcp", "size": 65536},
            warmup_ns=200_000.0,
            measure_ns=1_000_000.0,
        )
        assert spec.derived_seed(0) == 22109247
        assert spec.derived_seed(1) == 1733021422
        [rec] = run_specs("golden", [spec])
        m = rec.measurements
        assert m["messages_delivered"] == 25
        assert m["events_executed"] == 11733
        assert m["throughput_gbps"] == pytest.approx(13.246208, abs=1e-6)
        assert m["counters"]["nic_rx_packets"] == 2346
