"""Tests for the flight recorder, its consumers, and non-perturbation.

Covers the observability acceptance criteria:

* trace export conforms to the Chrome ``trace_events`` schema,
* the latency decomposition's components sum to the mean end-to-end
  latency (the telescoping identity, pinned to within 1%),
* an obs-disabled run is bit-identical to an uninstrumented one, and an
  obs-enabled run perturbs nothing but ``events_executed``/``obs``.
"""

import io
import json

import pytest

from repro.obs import (
    Decomposition,
    FlightRecorder,
    JourneyTracker,
    ObsConfig,
    decompose,
    resolve_obs,
    to_trace_events,
    write_trace,
)
from repro.obs.decompose import Hop
from repro.obs.perfetto import GLOBAL_TRACK_TID, TRACE_PID
from repro.workloads.sockperf import run_single_flow

WINDOWS = dict(warmup_ns=0.5e6, measure_ns=2e6)


# ---------------------------------------------------------------- recorder
class TestFlightRecorder:
    def test_instants_and_spans(self):
        rec = FlightRecorder()
        rec.instant("irq_raise", t_ns=100.0, core=1, ring_depth=3)
        rec.span("gro", 200.0, 350.0, core=2)
        evs = rec.events()
        assert [e.kind for e in evs] == ["I", "X"]
        assert evs[0].fields == {"ring_depth": 3}
        assert evs[1].dur_ns == pytest.approx(150.0)
        assert evs[1].end_ns == pytest.approx(350.0)

    def test_bound_clock_supplies_timestamps(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        rec = FlightRecorder()
        rec.bind_clock(sim)
        sim.call_in(42.0, lambda: rec.instant("tick"))
        sim.run()
        assert rec.events()[0].t_ns == pytest.approx(42.0)

    def test_events_sorted_by_time_then_seq(self):
        rec = FlightRecorder()
        rec.instant("b", t_ns=50.0)
        rec.instant("a", t_ns=10.0)
        rec.instant("c", t_ns=10.0)
        assert [e.name for e in rec.events()] == ["a", "c", "b"]

    def test_exact_below_capacity(self):
        rec = FlightRecorder(capacity=100)
        for i in range(100):
            rec.instant("e", t_ns=float(i))
        assert rec.events_kept == 100
        assert rec.events_dropped == 0

    def test_reservoir_above_capacity(self):
        rec = FlightRecorder(capacity=64)
        for i in range(10_000):
            rec.instant("e", t_ns=float(i), i=i)
        assert rec.events_kept == 64
        assert rec.events_seen == 10_000
        assert rec.events_dropped == 10_000 - 64

    def test_reservoir_deterministic(self):
        def run(seed):
            rec = FlightRecorder(capacity=32, seed=seed)
            for i in range(2_000):
                rec.instant("e", t_ns=float(i))
            return [e.t_ns for e in rec.events()]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_helpers(self):
        rec = FlightRecorder()
        rec.instant("a", t_ns=1.0, core=3)
        rec.instant("b", t_ns=2.0, core=1)
        rec.instant("a", t_ns=3.0)
        assert rec.count_named("a") == 2
        assert [e.name for e in rec.iter_named("b")] == ["b"]
        assert rec.cores() == [1, 3]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# ------------------------------------------------------------------ config
class TestObsConfig:
    def test_resolve_disabled_forms(self):
        assert resolve_obs(None) is None
        assert resolve_obs(False) is None
        assert resolve_obs({"enabled": False, "capacity": 5}) is None
        assert resolve_obs(ObsConfig(enabled=False)) is None

    def test_resolve_enabled_forms(self):
        assert resolve_obs(True) == ObsConfig()
        cfg = resolve_obs({"interval_ns": 5e4, "capacity": 99})
        assert cfg.interval_ns == 5e4 and cfg.capacity == 99
        assert resolve_obs(ObsConfig(seed=3)).seed == 3

    def test_resolve_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_obs(42)

    def test_validation(self):
        with pytest.raises(ValueError):
            resolve_obs({"interval_ns": 0.0})
        with pytest.raises(ValueError):
            resolve_obs({"capacity": 0})
        with pytest.raises(ValueError):
            resolve_obs({"max_journeys": 0})

    def test_round_trips_through_dict(self):
        cfg = ObsConfig(interval_ns=1e5, capacity=10, seed=2)
        assert resolve_obs(cfg.to_dict()) == cfg


# ------------------------------------------------------------- trace export
def _validate_trace_events(trace: dict) -> None:
    """Assert the payload conforms to the trace_events JSON schema subset
    chrome://tracing and ui.perfetto.dev consume."""
    assert isinstance(trace["traceEvents"], list)
    for ev in trace["traceEvents"]:
        assert isinstance(ev["name"], str) and ev["name"]
        assert ev["ph"] in ("X", "i", "M")
        assert ev["pid"] == TRACE_PID
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name", "thread_sort_index")
            assert isinstance(ev["args"], dict)
            continue
        assert isinstance(ev["tid"], int)
        assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        assert isinstance(ev["cat"], str)
        if ev["ph"] == "X":
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
        else:
            assert ev["s"] in ("t", "g")
        if "args" in ev:
            for v in ev["args"].values():
                assert v is None or isinstance(v, (bool, int, float, str))


class TestPerfettoExport:
    def test_schema_and_tracks(self):
        rec = FlightRecorder()
        rec.span("gro", 100.0, 250.0, core=0)
        rec.instant("irq_raise", t_ns=50.0, core=1, ring_depth=2)
        rec.instant("fault_loss", t_ns=60.0)  # core-less -> global track
        trace = to_trace_events(rec, label="unit")
        _validate_trace_events(trace)
        events = trace["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        fault = next(e for e in events if e["name"] == "fault_loss")
        assert fault["tid"] == GLOBAL_TRACK_TID and fault["s"] == "g"
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == pytest.approx(0.1)  # ns -> us
        assert span["dur"] == pytest.approx(0.15)
        assert trace["otherData"]["events_seen"] == 3

    def test_write_trace_path_and_fileobj(self, tmp_path):
        rec = FlightRecorder()
        rec.instant("e", t_ns=1.0, core=0)
        path = tmp_path / "t.json"
        write_trace(rec, str(path))
        assert json.loads(path.read_text())["traceEvents"]
        buf = io.StringIO()
        write_trace(rec, buf)
        assert json.loads(buf.getvalue())["traceEvents"]

    def test_nonjson_args_coerced(self):
        rec = FlightRecorder()
        rec.instant("e", t_ns=1.0, flow=object())
        trace = to_trace_events(rec)
        _validate_trace_events(trace)


# ------------------------------------------------------------ decomposition
def _hop(stage, core, q, s, e):
    h = Hop(stage, core, q)
    h.start_ns, h.end_ns = s, e
    return h


class TestDecomposition:
    def test_telescoping_identity_synthetic(self):
        d = Decomposition()
        hops = [
            _hop("gro", 1, 100.0, 120.0, 150.0),   # queue 20, service 30
            _hop("sink", 0, 170.0, 180.0, 200.0),  # hold 20, queue 10, service 20
        ]
        d.add_journey(hops, arrival_ns=90.0)       # ring wait 10
        assert d.e2e_mean_us == pytest.approx((200.0 - 90.0) / 1e3)
        assert d.components_sum_us == pytest.approx(d.e2e_mean_us)
        rows = {r["stage"]: r for r in d.stage_rows()}
        assert rows["gro"]["queue_us"] == pytest.approx(0.020)
        assert rows["gro"]["hold_us"] == pytest.approx(0.020)
        assert rows["sink"]["service_us"] == pytest.approx(0.020)

    def test_report_and_dict(self):
        d = Decomposition()
        d.add_journey([_hop("sink", 0, 10.0, 12.0, 20.0)], arrival_ns=5.0)
        out = d.to_dict()
        assert out["n_journeys"] == 1
        assert out["components_sum_us"] == pytest.approx(out["e2e_mean_us"])
        assert "latency decomposition" in d.report()
        assert Decomposition().report() == "(no complete journeys sampled)"

    def test_incomplete_journeys_excluded(self):
        class FakeSkb:
            def __init__(self, tid):
                self.trace_id = tid
                self.packets = []

        tr = JourneyTracker(start_ns=0.0)
        done, half = FakeSkb(None), FakeSkb(None)

        class P:
            arrival_ts = 1.0

        done.packets = half.packets = [P()]
        tr.on_enqueue(done, "sink", 0, 10.0)
        tr.on_execute(done, "sink", 12.0, 20.0)
        tr.on_enqueue(half, "gro", 1, 10.0)  # never executes, never delivers
        complete = list(tr.complete_journeys())
        assert [tid for tid, _ in complete] == [done.trace_id]

    def test_dropped_journeys_excluded(self):
        class FakeSkb:
            trace_id = None

            class _P:
                arrival_ts = 0.0

            packets = [_P()]

        tr = JourneyTracker()
        skb = FakeSkb()
        tr.on_enqueue(skb, "sink", 0, 5.0)
        tr.on_execute(skb, "sink", 6.0, 9.0)
        tr.on_drop(skb, "sink")
        assert list(tr.complete_journeys()) == []

    def test_adopts_foreign_trace_ids(self):
        class FakeSkb:
            def __init__(self, tid):
                self.trace_id = tid

            class _P:
                arrival_ts = 0.0

            packets = [_P()]

        tr = JourneyTracker()
        tr.on_enqueue(FakeSkb(17), "sink", 0, 1.0)  # id from another tracker
        fresh = FakeSkb(None)
        tr.on_enqueue(fresh, "sink", 0, 2.0)
        assert fresh.trace_id == 18  # adopted id is never reused


# -------------------------------------------------------- end-to-end checks
class TestScenarioIntegration:
    @pytest.fixture(scope="class")
    def mflow_obs(self):
        return run_single_flow(
            "mflow", "tcp", 65536, n_split_cores=1, obs=True, **WINDOWS
        )

    def test_decomposition_sums_within_1pct(self, mflow_obs):
        dec = mflow_obs.obs["decomposition"]
        assert dec["n_journeys"] > 0
        assert dec["components_sum_us"] == pytest.approx(
            dec["e2e_mean_us"], rel=0.01
        )

    def test_timeseries_has_subwindow_rows(self, mflow_obs):
        ts = mflow_obs.obs["timeseries"]
        assert len(ts["rows"]) >= 4
        for col in ("goodput_gbps", "backlog_depth", "ring_depth", "util_core0"):
            assert col in ts["columns"]

    def test_obs_off_is_bit_identical(self):
        base = run_single_flow("mflow", "tcp", 65536, **WINDOWS)
        off = run_single_flow("mflow", "tcp", 65536, obs=False, **WINDOWS)
        assert off == base  # dataclass equality covers every field

    def test_obs_on_perturbs_nothing_but_event_count(self):
        base = run_single_flow("mflow", "tcp", 65536, **WINDOWS)
        on = run_single_flow("mflow", "tcp", 65536, obs=True, **WINDOWS)
        assert on.obs is not None and on.events_executed > base.events_executed
        for name in (
            "throughput_gbps", "messages_delivered", "latency",
            "cpu_utilization", "cpu_breakdown", "counters", "drops",
            "ooo_arrivals", "window_ns", "fault_counters",
            "degradation_events",
        ):
            assert getattr(on, name) == getattr(base, name), name

    def test_trace_export_from_real_run(self, tmp_path):
        from repro.workloads.sockperf import build_scenario

        sc = build_scenario("mflow", "tcp", 65536, obs=True)
        sc.run(**WINDOWS)
        trace = to_trace_events(sc.recorder, label="mflow")
        _validate_trace_events(trace)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) > 100
        assert len({e["tid"] for e in slices}) >= 2  # multiple core tracks
        assert sc.intervals.n_intervals >= 4
        n = sc.intervals.write_csv(str(tmp_path / "ts.csv"))
        assert n == sc.intervals.n_intervals

    def test_spec_hash_unchanged_when_obs_absent(self):
        from repro.runner.spec import RunSpec

        plain = RunSpec.make("sockperf", {"system": "mflow", "size": 65536})
        again = RunSpec.make("sockperf", {"system": "mflow", "size": 65536})
        with_obs = RunSpec.make(
            "sockperf",
            {"system": "mflow", "size": 65536, "obs": {"enabled": True}},
        )
        assert plain.key == again.key
        assert with_obs.key != plain.key

    def test_obs_payload_round_trips_records(self, mflow_obs):
        from repro.runner.records import (
            scenario_result_from_dict,
            scenario_result_to_dict,
        )

        data = scenario_result_to_dict(mflow_obs)
        assert "obs" in data
        back = scenario_result_from_dict(data)
        assert back.obs["decomposition"] == mflow_obs.obs["decomposition"]
        plain = run_single_flow("mflow", "tcp", 65536, **WINDOWS)
        assert "obs" not in scenario_result_to_dict(plain)


class TestTraceCli:
    def test_trace_command_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        perfetto = tmp_path / "trace.json"
        csv_path = tmp_path / "ts.csv"
        rc = main([
            "trace", "--system", "mflow", "--proto", "tcp", "--size", "65536",
            "--split-cores", "1", "--warmup-ms", "0.5", "--measure-ms", "2",
            "--perfetto", str(perfetto), "--timeseries", str(csv_path),
            "--decompose",
        ])
        assert rc == 0
        _validate_trace_events(json.loads(perfetto.read_text()))
        header = csv_path.read_text().splitlines()[0].split(",")
        assert "goodput_gbps" in header
        out = capsys.readouterr().out
        assert "latency decomposition" in out
