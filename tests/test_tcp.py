"""Unit tests for the TCP receiver, deliver stage and sender."""

import pytest

from helpers import Harness, TEST_FLOW, make_skb
from repro.netstack.costs import DEFAULT_COSTS
from repro.netstack.packet import Skb, fragment_message
from repro.netstack.protocol.tcp import TcpDeliverStage, TcpReceiverStage, TcpSender
from repro.netstack.stages import CountingSink


def receiver_harness(ack_log=None):
    sink = CountingSink()
    rcv = TcpReceiverStage(
        (lambda flow, seq: ack_log.append(seq)) if ack_log is not None else None
    )
    h = Harness([rcv, sink], mapping={"tcp_rcv": 1, "sink": 1})
    return h, rcv, sink


def seg(start, size=1448, msg_id=0):
    return Skb(fragment_message(TEST_FLOW, msg_id, size, start_seq=start))


class TestTcpReceiver:
    def test_in_order_segments_forwarded(self):
        h, rcv, sink = receiver_harness()
        h.inject(seg(0))
        h.inject(seg(1448, msg_id=1))
        h.run()
        assert len(sink.received) == 2
        assert rcv.flow_state(TEST_FLOW).rcv_nxt == 2896

    def test_out_of_order_held_until_gap_fills(self):
        h, rcv, sink = receiver_harness()
        h.inject(seg(1448, msg_id=1))  # arrives first but out of order
        h.run()
        assert sink.received == []
        h.inject(seg(0))
        h.run()
        assert [s.seq for s in sink.received] == [0, 1448]

    def test_ooo_penalty_charged(self):
        h, rcv, sink = receiver_harness()
        h.inject(seg(1448))
        h.run()
        assert h.cpus[1].busy_ns.get("tcp_ooo", 0) == pytest.approx(
            DEFAULT_COSTS.tcp_ooo_penalty_ns
        )
        assert rcv.total_ooo_events == 1

    def test_duplicate_segment_dropped(self):
        h, rcv, sink = receiver_harness()
        h.inject(seg(0))
        h.run()
        h.inject(seg(0))
        h.run()
        assert len(sink.received) == 1
        assert rcv.flow_state(TEST_FLOW).dup_segments > 0

    def test_cumulative_ack_generated(self):
        acks = []
        h, rcv, sink = receiver_harness(ack_log=acks)
        h.inject(seg(0))
        h.inject(seg(1448, msg_id=1))
        h.run()
        assert acks == [1448, 2896]

    def test_ooo_drain_acks_highest(self):
        acks = []
        h, rcv, sink = receiver_harness(ack_log=acks)
        h.inject(seg(1448, msg_id=1))
        h.run()
        h.inject(seg(0))
        h.run()
        assert acks[-1] == 2896

    def test_flows_tracked_independently(self):
        from repro.netstack.packet import FlowKey

        other = FlowKey(9, 9, "tcp", 1, 1)
        h, rcv, sink = receiver_harness()
        h.inject(seg(0))
        h.inject(Skb(fragment_message(other, 0, 1448, start_seq=0)))
        h.run()
        assert rcv.flow_state(TEST_FLOW).rcv_nxt == 1448
        assert rcv.flow_state(other).rcv_nxt == 1448


class TestTcpDeliver:
    def test_counts_messages_and_latency(self):
        sink = TcpDeliverStage()
        h = Harness([sink], mapping={"tcp_deliver": 0})
        skb = make_skb(size=1000)
        skb.packets[0].send_ts = 0.0
        h.telemetry.start_window()
        h.inject(skb)
        h.run()
        assert h.telemetry.get("tcp_delivered_messages") == 1
        assert h.telemetry.get("tcp_delivered_bytes") == 1000
        assert len(h.telemetry.sample_list("tcp_msg_latency_ns")) == 1

    def test_copy_cost_scales_with_bytes(self):
        sink = TcpDeliverStage()
        h = Harness([sink], mapping={"tcp_deliver": 0})
        h.inject(make_skb(size=10_000))
        h.run()
        expected_min = 10_000 * DEFAULT_COSTS.copy_per_byte_ns
        assert h.cpus[0].busy_ns["tcp_deliver"] > expected_min

    def test_message_callback_invoked(self):
        got = []
        sink = TcpDeliverStage(on_message=lambda flow, pkt: got.append(flow))
        h = Harness([sink], mapping={"tcp_deliver": 0})
        h.inject(make_skb(size=100))
        h.run()
        assert got == [TEST_FLOW]

    def test_coalesced_messages_counted(self):
        sink = TcpDeliverStage()
        h = Harness([sink], mapping={"tcp_deliver": 0})
        skb = make_skb(size=1448)
        skb.packets[-1].messages_completed = 90  # Nagle-coalesced 16 B writes
        h.inject(skb)
        h.run()
        assert h.telemetry.get("tcp_delivered_messages") == 90


class _FakeWire:
    def __init__(self):
        self.sent = []

    def send(self, pkt):
        self.sent.append(pkt)


class TestTcpSender:
    def _make(self, sim, message_size=4096, **kw):
        from repro.cpu.core import Core
        from repro.metrics.telemetry import Telemetry

        wire = _FakeWire()
        sender = TcpSender(
            sim,
            DEFAULT_COSTS,
            TEST_FLOW,
            message_size,
            wire,
            app_core=Core(sim, 0),
            kernel_core=Core(sim, 1),
            telemetry=Telemetry(sim),
            **kw,
        )
        return sender, wire

    def test_sends_until_window_full(self, sim):
        sender, wire = self._make(sim, message_size=65536, window_bytes=2 * 65536)
        sender.start()
        sim.run(until_ns=1e6)
        assert sender.outstanding_bytes == 2 * 65536
        assert len(wire.sent) == 2 * 46  # ceil(65536/1448) = 46 frags each

    def test_ack_opens_window(self, sim):
        sender, wire = self._make(sim, message_size=65536, window_bytes=65536)
        sender.start()
        sim.run(until_ns=1e6)
        before = len(wire.sent)
        sender.on_ack(TEST_FLOW, 65536)
        sim.run(until_ns=2e6)
        assert len(wire.sent) > before

    def test_stale_ack_ignored(self, sim):
        sender, wire = self._make(sim, message_size=1000, window_bytes=10_000)
        sender.start()
        sim.run(until_ns=1e5)
        acked = sender.acked_seq
        sender.on_ack(TEST_FLOW, acked - 100 if acked else 0)
        assert sender.acked_seq == acked

    def test_small_messages_coalesce(self, sim):
        sender, wire = self._make(sim, message_size=16, window_bytes=20_000)
        sender.start()
        sim.run(until_ns=1e6)
        # 90 sixteen-byte messages pack one 1440 B segment
        assert wire.sent[0].payload == 1440
        assert wire.sent[0].messages_completed == 90

    def test_demand_mode_sends_one_message(self, sim):
        sender, wire = self._make(sim, message_size=1000, continuous=False)
        done = []
        sender.send_message(500, on_sent=lambda: done.append(True))
        sim.run(until_ns=1e6)
        assert done == [True]
        assert sum(p.payload for p in wire.sent) == 500
        # no further spontaneous sends
        assert sender.messages_sent == 1

    def test_continuous_start_required(self, sim):
        sender, wire = self._make(sim, continuous=False)
        with pytest.raises(RuntimeError):
            sender.start()

    def test_pacing_spreads_departures(self, sim):
        sender, wire = self._make(sim, message_size=65536, window_bytes=65536)
        sender.start()
        sim.run(until_ns=1e6)
        # fragments must not all leave at the same instant: the pacer
        # spaces them at tcp_pacing_gbps
        ts = sorted(p.send_ts for p in wire.sent)
        assert ts[0] == ts[-1]  # send_ts is stamped at message level
        # (actual spacing is in the wire.send call times, checked via
        # event count: at least one future-scheduled departure happened)
        assert sender._pace_next_ns > 0

    def test_rejects_nonpositive_message(self, sim):
        with pytest.raises(ValueError):
            self._make(sim, message_size=0)
