"""Final coverage batch: small behaviours not exercised elsewhere."""

import pytest

from repro.experiments.base import (
    FULL_MEASURE_NS,
    QUICK_MEASURE_NS,
    breakdown_row,
    windows,
)


class TestExperimentWindows:
    def test_quick_windows_shorter(self):
        assert windows(True)["measure_ns"] == QUICK_MEASURE_NS
        assert windows(False)["measure_ns"] == FULL_MEASURE_NS
        assert windows(True)["measure_ns"] < windows(False)["measure_ns"]

    def test_breakdown_row_format(self):
        row = breakdown_row(3, {"vxlan": 0.4, "irq:pnic": 0.1, "tiny": 0.001})
        assert row.startswith("core3:")
        assert "vxlan_dev=40%" in row
        assert "driver=10%" in row
        assert "tiny" not in row  # below display threshold


class TestPackageApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_subpackage_imports(self):
        import repro.analysis
        import repro.cli
        import repro.core
        import repro.cpu
        import repro.experiments
        import repro.metrics
        import repro.netstack
        import repro.overlay
        import repro.sim
        import repro.steering
        import repro.workloads  # noqa: F401


class TestScenarioRssIndices:
    def test_rss_indices_create_queues(self):
        from repro.overlay.topology import DatapathKind
        from repro.steering.rss import RssPolicy
        from repro.workloads.scenario import Scenario

        sc = Scenario(
            DatapathKind.OVERLAY,
            "tcp",
            lambda c: RssPolicy(c, app_core=0, core_pool=[1, 2, 3]),
            n_receiver_cores=6,
            rss_core_indices=[1, 2, 3],
        )
        assert sc.nic.n_queues == 3


class TestWebServingResultHelpers:
    def test_result_math(self):
        from repro.workloads.webserving import OpStats, WebServingResult

        stats = {
            "browse": OpStats(issued=10, completed=8, success=6,
                              latencies_ns=[1e6, 2e6], delays_ns=[5e5]),
            "login": OpStats(),
        }
        res = WebServingResult("mflow", 10, stats, window_s=2.0)
        assert res.success_ops_per_sec("browse") == 3.0
        assert res.total_success_per_sec() == 3.0
        assert res.mean_response_us("browse") == pytest.approx(1500.0)
        assert res.mean_delay_us("browse") == pytest.approx(500.0)
        assert res.mean_response_us("login") == 0.0


class TestBottleneckLayouts:
    def test_native_stage_list_excludes_overlay(self):
        from repro.analysis.bottleneck import BottleneckModel
        from repro.netstack.costs import DEFAULT_COSTS

        m = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=False)
        names = [n for n, _, _ in m.stage_list()]
        assert "vxlan" not in names and "tcp_rcv" in names

    def test_falcon_requires_overlay(self):
        from repro.analysis.bottleneck import BottleneckModel
        from repro.netstack.costs import DEFAULT_COSTS

        m = BottleneckModel(DEFAULT_COSTS, proto="tcp", overlay=False)
        with pytest.raises(ValueError):
            m.falcon_fun_ceiling()


class TestRpcConnectionLifecycle:
    def test_stop_halts_issuing(self):
        from repro.workloads.memcached import build_memcached

        eng = build_memcached("vanilla", 1, connections_per_client=2)
        conns = list(eng.connections.values())
        eng.start()
        eng.sim.run(until_ns=1e6)
        conns[0].stop()
        done_before = conns[0].stats.completed
        eng.sim.run(until_ns=3e6)
        # a stopped connection completes at most its in-flight request
        assert conns[0].stats.completed <= done_before + 1
        # the other connection keeps going
        assert conns[1].stats.completed > conns[0].stats.completed
